"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` must use the legacy ``setup.py develop`` path; all real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
