"""Component library: the Chapter III chip macros.

Available two ways: as Python builder functions (below), and as textual
SCALD macros in ``scald/ecl10k.scald`` for ``include``-ing from ``.scald``
sources (:func:`scald_library_path`).
"""

from pathlib import Path

from .ecl10k import (
    alu_with_latch,
    and2_chip,
    corr_delay,
    mux2_chip,
    or2_chip,
    ram_16w_10145a,
    register_chip,
)

def scald_library_path() -> str:
    """Absolute path of the textual chip library, for ``include``."""
    return str(Path(__file__).parent / "scald" / "ecl10k.scald")


__all__ = [
    "scald_library_path",
    "alu_with_latch",
    "and2_chip",
    "corr_delay",
    "mux2_chip",
    "or2_chip",
    "ram_16w_10145a",
    "register_chip",
]
