"""The Chapter III component library (Figures 3-5 through 3-9).

Each function plays the role of a SCALD graphics macro: it expands one chip
into Timing Verifier primitives inside a :class:`~repro.netlist.Circuit`.
Timing parameters are the ones printed in the thesis figures (transcribed
from the Fairchild F10145A data sheet and the ECL-10K/100K family).

Macro-internal nets carry zero interconnection delay — they are on-die —
while the macro's pin signals keep whatever wire delay the design assigns.
"""

from __future__ import annotations

from ..core.timeline import ns_to_ps
from ..netlist.circuit import Circuit, Component, Connection, Net


def _internal(circuit: Circuit, name: str, width: int = 1) -> Net:
    """An on-die net: no interconnection delay."""
    net = circuit.net(name, width=width)
    net.wire_delay_ps = (0, 0)
    return net


def ram_16w_10145a(
    circuit: Circuit,
    name: str,
    i,
    a,
    cs,
    we,
    out,
    size: int = 4,
) -> dict[str, Component]:
    """The 16-word by ``size``-bit register file chip (Figure 3-5, F10145A).

    * data out changes 1.5/3.0 ns after the data inputs change and
      3.0/6.0 ns after the address, chip-select or write-enable change;
    * data inputs must be stable 4.5 ns before the falling edge of the
      write-enable pulse and -1.0 ns after it;
    * address lines must be stable 3.5 ns before the rising edge of the
      write-enable pulse, while it is high, and 1.0 ns after its fall;
    * chip select obeys a 3.0/1.0 ns setup/hold against the WE fall;
    * the write-enable pulse must be high for at least 4.0 ns.

    Args:
        circuit: design under construction.
        name: instance name; internal nets are prefixed with it.
        i / a / cs / we / out: the pin signals (nets or names).
        size: data-path width in bits.

    Returns:
        the created components, keyed by role.
    """
    m_addr = _internal(circuit, f"{name}/ADDR CHG", width=size)
    m_data = _internal(circuit, f"{name}/DATA CHG", width=size)
    comps = {
        "addr_chg": circuit.chg(
            m_addr, [a, cs, we], delay=(3.0, 6.0), name=f"{name}/3chg", width=size
        ),
        "data_chg": circuit.chg(
            m_data, [i], delay=(1.5, 3.0), name=f"{name}/chg", width=size
        ),
        "out": circuit.chg(
            out, [m_addr, m_data], delay=(0.0, 0.0), name=f"{name}/out", width=size
        ),
        "data_su": circuit.setup_hold(
            i, Connection(net=circuit._as_net(we), invert=True),
            setup=4.5, hold=-1.0, name=f"{name}/su data", width=size,
        ),
        "addr_su": circuit.setup_rise_hold_fall(
            a, we, setup=3.5, hold=1.0, name=f"{name}/su addr", width=4
        ),
        "cs_su": circuit.setup_hold(
            cs, Connection(net=circuit._as_net(we), invert=True),
            setup=3.0, hold=1.0, name=f"{name}/su cs",
        ),
        "we_mpw": circuit.min_pulse_width(
            we, min_high=4.0, name=f"{name}/mpw we"
        ),
    }
    return comps


def mux2_chip(
    circuit: Circuit,
    name: str,
    out,
    select,
    i0,
    i1,
    width: int = 1,
) -> Component:
    """The 2-input multiplexer chip (Figure 3-6).

    1.2/3.3 ns from any input to the output, plus an additional
    0.3/1.2 ns from the select input.
    """
    return circuit.mux(
        out,
        selects=[select],
        inputs=[i0, i1],
        delay=(1.2, 3.3),
        select_delay=(0.3, 1.2),
        name=name,
        width=width,
    )


def register_chip(
    circuit: Circuit,
    name: str,
    out,
    clock,
    data,
    width: int = 1,
) -> dict[str, Component]:
    """The edge-triggered register chip (Figure 3-7).

    1.5/4.5 ns clock-to-output; the data inputs carry a 2.5 ns setup and
    1.5 ns hold requirement against the clock's rising edge.
    """
    return {
        "reg": circuit.reg(
            out, clock=clock, data=data, delay=(1.5, 4.5), name=name, width=width
        ),
        "su": circuit.setup_hold(
            data, clock, setup=2.5, hold=1.5, name=f"{name}/su", width=width
        ),
    }


def or2_chip(circuit: Circuit, name: str, out, a, b, width: int = 1) -> Component:
    """The 2-input OR gate (Figure 3-8): 1.0/2.9 ns."""
    return circuit.gate("OR", out, [a, b], delay=(1.0, 2.9), name=name, width=width)


def and2_chip(circuit: Circuit, name: str, out, a, b, width: int = 1) -> Component:
    """A 2-input AND gate with the Figure 3-8 family timing (1.0/2.9 ns)."""
    return circuit.gate("AND", out, [a, b], delay=(1.0, 2.9), name=name, width=width)


def alu_with_latch(
    circuit: Circuit,
    name: str,
    out,
    a,
    b,
    carry_in,
    select,
    enable,
    width: int = 4,
) -> dict[str, Component]:
    """The arithmetic/logic chip with output latch (Figure 3-9).

    One of 16 functions of the data inputs is selected by ``select``; the
    Verifier only needs to know *when* the result can change, so the whole
    function network is a CHG gate (the parity-tree/adder modelling trick
    of section 2.4.2).  The latch-enable input closes the output latch; the
    data inputs obey a setup/hold constraint against the close.
    """
    m_fn = _internal(circuit, f"{name}/FN CHG", width=width)
    comps = {
        "fn": circuit.chg(
            m_fn,
            [a, b, carry_in, select],
            delay=(2.5, 7.0),
            name=f"{name}/chg",
            width=width,
        ),
        "latch": circuit.latch(
            out, enable=enable, data=m_fn, delay=(1.0, 3.5),
            name=f"{name}/latch", width=width,
        ),
        "su": circuit.setup_hold(
            m_fn,
            Connection(net=circuit._as_net(enable), invert=True),
            setup=2.0,
            hold=1.0,
            name=f"{name}/su",
            width=width,
        ),
    }
    return comps


def corr_delay(
    circuit: Circuit,
    name: str,
    out,
    input_,
    delay_ns: float,
    width: int = 1,
) -> Component:
    """The ``CORR`` fictitious delay macro (section 4.2.3, Figure 4-2).

    The Verifier calculates in absolute times and ignores the correlation
    between a register's clock and its own output feeding back through a
    multiplexer, producing false hold errors on feedback circuits.  The
    designer suppresses them by inserting this explicitly-named fictitious
    delay — at least as long as the clock skew — into the feedback path.
    """
    return circuit.add(
        name,
        "DELAY",
        {"I": input_, "OUT": out},
        delay=(delay_ns, delay_ns),
        width=width,
    )
