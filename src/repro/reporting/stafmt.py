"""Reporters for the static timing analysis: text and machine JSON.

Renders a :class:`repro.sta.StaAnalysis` the way the lint reporters render
diagnostics — `repro.sta` itself produces plain data and knows nothing
about formatting.  Times print in nanoseconds (the API-boundary unit) but
the JSON carries raw integer picoseconds so tooling never re-parses a
rounded number.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..sta import StaAnalysis


def _ns(ps: int) -> str:
    return f"{ps / 1000:.1f}"


def sta_text(analysis: "StaAnalysis") -> str:
    """Human-readable static analysis report."""
    lines: list[str] = []
    period = analysis.windows.period
    lines.append(
        f"STATIC TIMING ANALYSIS — {analysis.circuit.name} "
        f"(period {_ns(period)} ns)"
    )

    lines.append("")
    lines.append("clock domains:")
    if analysis.domains.roots:
        for root in analysis.domains.roots:
            kind = "precision" if root.precision else "clock"
            lines.append(f"  {root.net}  [{kind} {root.phase}]")
    else:
        lines.append("  (no asserted clocks)")

    storage = analysis.domains.storage
    if storage:
        lines.append("")
        lines.append(f"storage elements ({len(storage)}):")
        for entry in storage:
            flags = [
                name
                for name, on in (
                    ("gated", entry.gated),
                    ("convergent", entry.convergent),
                    ("UNCLOCKED", entry.unclocked),
                )
                if on
            ]
            domain = ", ".join(sorted(entry.roots)) or "-"
            suffix = f"  ({', '.join(flags)})" if flags else ""
            lines.append(
                f"  {entry.component:<20} {entry.prim:<8} "
                f"clock={entry.clock_net}  domain={domain}{suffix}"
            )

    for crossing in analysis.domains.crossings:
        tag = "synchronized" if crossing.synchronized else "NO SYNCHRONIZER"
        lines.append(
            f"  crossing: {', '.join(sorted(crossing.foreign_roots))} -> "
            f"{crossing.clock_net} at {crossing.component} [{tag}]"
        )

    if analysis.windows.feedback:
        lines.append("")
        lines.append("feedback cuts (windows widened to the full period):")
        for cut in analysis.windows.feedback:
            lines.append(f"  {cut.component} ({cut.prim}) -> {cut.net}")

    if analysis.constraints is not None:
        cs = analysis.constraints
        parts = []
        if getattr(cs, "clock_nets", None):
            parts.append(f"{len(set(cs.clock_nets.values()))} clock(s)")
        if getattr(cs, "checker_mods", None):
            parts.append(f"{len(cs.checker_mods)} checker mod(s)")
        if getattr(cs, "input_delays", None):
            parts.append(f"{len(cs.input_delays)} input delay(s)")
        if getattr(cs, "output_delays", None):
            parts.append(f"{len(cs.output_delays)} output delay(s)")
        if getattr(cs, "rs_checks", None):
            parts.append(f"{len(cs.rs_checks)} recovery/removal spec(s)")
        if getattr(cs, "max_borrow", None):
            parts.append(f"{len(cs.max_borrow)} borrow cap(s)")
        lines.append("")
        lines.append(
            f"constraints: {cs.path} ({', '.join(parts) if parts else 'empty'})"
        )
        if cs.errors:
            lines.append(f"  {len(cs.errors)} constraint error(s) — see findings.")

    lines.append("")
    if analysis.slack:
        lines.append("static slack (worst first):")
        for rec in analysis.slack:
            if rec.waived:
                verdict = "waived (false path)"
            elif rec.no_edge:
                verdict = "no clock edge"
            elif rec.overflow:
                verdict = "indeterminate (window overflow)"
            elif rec.slack_ps is None:
                verdict = "indeterminate"
            else:
                verdict = f"{'+' if rec.slack_ps >= 0 else ''}{_ns(rec.slack_ps)} ns"
            tag = "" if rec.kind == "setup-hold" else f" [{rec.kind}]"
            if rec.borrow_ps is not None:
                verdict += f" (borrow {_ns(rec.borrow_ps)} ns)"
            lines.append(
                f"  {rec.component:<20} {rec.signal} vs {rec.clock}:{tag} {verdict}"
            )
    else:
        lines.append("static slack: no checker components.")

    worst = [r.slack_ps for r in analysis.slack if r.slack_ps is not None]
    lines.append("")
    if analysis.ok:
        summary = "statically clean"
        if worst:
            summary += f"; worst slack {_ns(min(worst))} ns"
        lines.append(f"{summary}.")
    else:
        failing = sum(1 for r in analysis.slack if not r.ok)
        # Name the binding check the way scald-tv violations do
        # ("rf/su addr ... on 'ADR'") so the two reports cross-reference.
        bad = [r for r in analysis.slack if not r.ok and r.slack_ps is not None]
        summary = (
            f"{failing} checker(s) with negative static slack; "
            f"worst {_ns(min(worst))} ns"
        )
        if bad:
            rec = min(bad, key=lambda r: r.slack_ps)
            summary += f" at {rec.component} on {rec.signal!r}"
        lines.append(summary + ".")
    return "\n".join(lines)


def fmax_text(res) -> str:
    """Human-readable Fmax report with the binding check and its path.

    ``res`` is a :class:`repro.sta.parametric.FmaxResult`.
    """
    lines: list[str] = []
    if not res.period_limited:
        lines.append(
            "fmax: not period-limited — the design verifies at every "
            "probed clock period."
        )
    elif res.period_ps is None:
        lines.append(
            "fmax: no clean period — the engine reports violations at "
            "every probed period (period-independent failure)."
        )
    else:
        lines.append(
            f"fmax: {res.fmax_mhz:.3f} MHz "
            f"(min period {res.period_ps} ps = {_ns(res.period_ps)} ns) "
            f"[{res.method}]"
        )
        if res.static_period_ps is not None:
            lines.append(
                f"  static root {res.static_period_ps} ps; engine "
                f"confirmed down to {res.period_ps} ps"
            )
    if res.binding is not None:
        rec = res.binding
        tag = "" if rec.kind == "setup-hold" else f" [{rec.kind}]"
        line = f"  binding check: {rec.component} on {rec.signal!r}{tag}"
        if res.slope is not None:
            line += f"  (slack slope {res.slope} ps per ps of period)"
        lines.append(line)
        if res.witness:
            lines.append(f"  critical path (backward from {rec.signal!r}):")
            for hop in res.witness:
                lo, hi = hop.delay
                lines.append(
                    f"    {hop.component:<20} {hop.prim:<8} -> {hop.net}"
                    f"  [{_ns(lo)}..{_ns(hi)} ns]"
                )
        if res.witness_terminal:
            lines.append(f"    <- {res.witness_terminal}")
    lines.append(
        f"  cost: {res.engine_runs} engine run(s), "
        f"{res.parametric_passes} parametric pass(es), "
        f"{res.static_evals} static eval(s)"
    )
    return "\n".join(lines)


def fmax_doc(res) -> dict:
    """An :class:`FmaxResult` as a plain dict for the ``--json`` envelope."""
    doc = {
        "period_limited": res.period_limited,
        "min_period_ps": res.period_ps,
        "fmax_mhz": res.fmax_mhz,
        "method": res.method,
        "static_period_ps": res.static_period_ps,
        "binding": None,
        "witness": [
            {
                "component": hop.component,
                "prim": hop.prim,
                "net": hop.net,
                "delay_ps": list(hop.delay),
            }
            for hop in res.witness
        ],
        "witness_terminal": res.witness_terminal,
        "cost": {
            "engine_runs": res.engine_runs,
            "parametric_passes": res.parametric_passes,
            "static_evals": res.static_evals,
        },
    }
    if res.binding is not None:
        doc["binding"] = {
            "component": res.binding.component,
            "signal": res.binding.signal,
            "clock": res.binding.clock,
            "kind": res.binding.kind,
            "slack_slope": None if res.slope is None else str(res.slope),
        }
    return doc


def sta_doc(analysis: "StaAnalysis") -> dict:
    """The analysis as a plain dict (what :func:`sta_json` serializes)."""
    doc = {
        "circuit": analysis.circuit.name,
        "period_ps": analysis.windows.period,
        "ok": analysis.ok,
        "clocks": [
            {"net": r.net, "phase": r.phase, "precision": r.precision}
            for r in analysis.domains.roots
        ],
        "storage": [
            {
                "component": s.component,
                "prim": s.prim,
                "clock": s.clock_net,
                "domain": sorted(s.roots),
                "gated": s.gated,
                "convergent": s.convergent,
                "unclocked": s.unclocked,
            }
            for s in analysis.domains.storage
        ],
        "crossings": [
            {
                "component": c.component,
                "data_net": c.data_net,
                "clock": c.clock_net,
                "launch": sorted(c.launch_roots),
                "capture": sorted(c.capture_roots),
                "synchronized": c.synchronized,
            }
            for c in analysis.domains.crossings
        ],
        "feedback_cuts": [
            {"component": f.component, "net": f.net, "prim": f.prim}
            for f in analysis.windows.feedback
        ],
        "slack": [
            {
                "component": r.component,
                "signal": r.signal,
                "clock": r.clock,
                "kind": r.kind,
                "setup_ps": r.setup_ps,
                "hold_ps": r.hold_ps,
                "setup_eff_ps": r.setup_eff_ps,
                "hold_eff_ps": r.hold_eff_ps,
                "slack_ps": r.slack_ps,
                "borrow_ps": r.borrow_ps,
                "waived": r.waived,
                "no_edge": r.no_edge,
                "overflow": r.overflow,
            }
            for r in analysis.slack
        ],
    }
    if analysis.constraints is not None:
        cs = analysis.constraints
        doc["constraints"] = {
            "path": cs.path,
            "clocks": sorted(set(cs.clock_nets.values())),
            "checker_mods": len(cs.checker_mods),
            "input_delays": len(cs.input_delays),
            "output_delays": len(cs.output_delays),
            "rs_checks": len(cs.rs_checks),
            "max_borrow_ps": dict(cs.max_borrow),
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "message": f.message,
                    "line": f.line,
                }
                for f in cs.findings
            ],
        }
    return doc


def sta_json(analysis: "StaAnalysis") -> str:
    """The analysis as a JSON document (stable key order, integer ps)."""
    return json.dumps(sta_doc(analysis), indent=2, sort_keys=True)
