"""Text listings in the style of the thesis output figures.

* :func:`timing_summary` — the Figure 3-10 summary listing showing each
  signal's value over the cycle time;
* :func:`violation_listing` — the Figure 3-11 set-up/hold/minimum-pulse-
  width error listing;
* :func:`xref_listing` — the special cross-reference listing of signals
  assumed stable for lack of an assertion (section 2.5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.timeline import format_ns

if TYPE_CHECKING:  # pragma: no cover
    from ..core.verifier import VerificationResult


def timing_summary(result: "VerificationResult", case: int = 0) -> str:
    """Render the signal-value summary listing (Figure 3-10).

    Each line shows a signal name followed by its value trace: the value at
    the start of the cycle, then each change time and the value after it.
    """
    case_result = result.cases[case]
    lines = [
        f"TIMING VERIFIER SUMMARY — {result.circuit_name}"
        + (f" (case {case}: {case_result.assignments})" if case_result.assignments else ""),
        "",
    ]
    width = max((len(n) for n in case_result.waveforms), default=0)
    for name in sorted(case_result.waveforms):
        wf = case_result.waveforms[name]
        lines.append(f"  {name:<{width}}  {wf.describe()}")
    return "\n".join(lines)


def violation_listing(result: "VerificationResult") -> str:
    """Render the error listing (Figure 3-11)."""
    if result.ok:
        return "No setup, hold or minimum pulse width errors detected."
    lines = ["SETUP, HOLD AND MINIMUM PULSE WIDTH ERRORS", ""]
    for violation in result.violations:
        lines.append(violation.message())
        lines.append("")
    return "\n".join(lines).rstrip()


def xref_listing(result: "VerificationResult") -> str:
    """Signals with no assertion and no driver, assumed always stable."""
    if not result.xref_assumed_stable:
        return "All undefined signals carry assertions."
    lines = [
        "UNDEFINED SIGNALS ASSUMED STABLE (assertions needed):",
    ]
    for name in sorted(result.xref_assumed_stable):
        lines.append(f"  {name}")
    return "\n".join(lines)


def phase_table(result: "VerificationResult") -> str:
    """Execution statistics in the shape of Table 3-1's Verifier half."""
    p = result.phases
    rows = [
        ("Reading input files and building data structures", p.build),
        ("Generating cross reference listings", p.cross_reference),
        ("Verifying circuit", p.verify),
        ("Generating timing summary listing", p.summary),
    ]
    lines = ["TIMING VERIFIER EXECUTION STATISTICS", ""]
    for label, seconds in rows:
        lines.append(f"  {label:<52} {seconds * 1000:10.2f} ms")
    lines.append(f"  {'Total':<52} {p.total * 1000:10.2f} ms")
    lines.append("")
    lines.append(
        f"  events processed: {result.stats.events}, "
        f"primitive evaluations: {result.stats.evaluations}"
    )
    s = result.stats
    if s.memo_hits or s.intern_hits or s.prepared_hits:
        lines.append(
            f"  caches: memo {s.memo_hit_rate:.0%}, "
            f"intern {s.intern_hit_rate:.0%}, "
            f"prepared inputs {s.prepared_hit_rate:.0%} hit rate"
        )
    return "\n".join(lines)
