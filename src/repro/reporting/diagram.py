"""ASCII timing diagrams of verified signal waveforms.

The thesis's listings are tabular (Figure 3-10); a drawn waveform is often
faster to read.  :func:`timing_diagram` renders each signal's seven-value
waveform over the cycle as a one-line trace::

    MAIN CLK .P2-3  __________/~~~~~\\__________________________
    BUS IN .S0-6    ==============================xxxxxxxxxxxxx
    STAGE IN        ====xx====================================

Glyphs: ``_`` low, ``~`` high, ``=`` stable (level unknown), ``x`` may be
changing, ``/`` and ``\\`` rise/fall windows, ``?`` undefined.  One column
spans ``period / width`` of time; a column containing any possible change
shows the change, so narrow events never disappear from the picture.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TYPE_CHECKING

from ..core.timeline import format_ns
from ..core.values import Value
from ..core.waveform import Waveform

if TYPE_CHECKING:  # pragma: no cover
    from ..core.verifier import VerificationResult

#: Per-value glyphs, in worst-first order for column conflicts.
_GLYPHS = {
    Value.UNKNOWN: "?",
    Value.CHANGE: "x",
    Value.RISE: "/",
    Value.FALL: "\\",
    Value.STABLE: "=",
    Value.ONE: "~",
    Value.ZERO: "_",
}
#: Priority when several values share one column: show the worst.
_PRIORITY = list(_GLYPHS)


def render_waveform(wf: Waveform, width: int = 60) -> str:
    """One signal's trace, ``width`` characters for one period."""
    if width < 1:
        raise ValueError("diagram width must be positive")
    m = wf.materialized()
    period = m.period
    out = []
    for col in range(width):
        lo = col * period // width
        hi = max((col + 1) * period // width, lo + 1)
        present = m.values_in_window(lo, hi - 1)
        worst = min(present, key=_PRIORITY.index)
        out.append(_GLYPHS[worst])
    return "".join(out)


def timing_diagram(
    result: "VerificationResult",
    signals: Sequence[str] | None = None,
    case: int = 0,
    width: int = 60,
) -> str:
    """Draw the converged waveforms of a verification run.

    Args:
        result: a :class:`VerificationResult`.
        signals: which signals, in display order; all of them when None.
        case: which case-analysis cycle to draw.
        width: columns per clock period.
    """
    waveforms = result.cases[case].waveforms
    names = list(signals) if signals is not None else sorted(waveforms)
    missing = [n for n in names if n not in waveforms]
    if missing:
        raise KeyError(f"no such signal(s): {missing}")
    label_w = max((len(n) for n in names), default=0)
    period_ns = format_ns(result.cases[case].waveforms[names[0]].period) if names else "?"
    header = (
        f"{'':<{label_w}}  0{'·' * (width - len(period_ns) - 1)}{period_ns} ns"
    )
    lines = [header]
    for name in names:
        lines.append(f"{name:<{label_w}}  {render_waveform(waveforms[name], width)}")
    lines.append(
        f"{'':<{label_w}}  (_ low  ~ high  = stable  x changing  / rise"
        f"  \\ fall  ? undefined)"
    )
    return "\n".join(lines)
