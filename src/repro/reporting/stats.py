"""Storage accounting in the shape of Table 3-3.

The thesis breaks the Timing Verifier's working storage into categories:
circuit description (37.8 %, 260 bytes/primitive), signal values (33 152
value lists averaging 2.97 value records, 56 bytes/signal), signal names
(11.6 %), string space (10.6 %), the call-list array mapping signals to the
primitives they feed (6.9 %), and miscellany (0.7 %).  This module measures
our implementation's equivalents with recursive ``sys.getsizeof`` so the
Table 3-3 benchmark can print the same rows.

Objects shared between categories are counted once, in the first category
that reaches them (measured in the paper's order), exactly as a single
allocation would have been owned by one data structure in the PASCAL
implementation.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ..core.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from ..core.verifier import VerificationResult


def deep_size(obj: Any, seen: set[int]) -> int:
    """Recursive ``getsizeof`` that skips already-counted objects."""
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)
    if isinstance(obj, (type, type(deep_size), type(sys))):
        return 0  # classes, functions and modules are code, not data
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_size(key, seen)
            size += deep_size(value, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_size(item, seen)
    elif hasattr(obj, "__dict__"):
        size += deep_size(obj.__dict__, seen)
    if hasattr(obj, "__slots__"):
        for slot in obj.__slots__:  # type: ignore[union-attr]
            if hasattr(obj, slot):
                size += deep_size(getattr(obj, slot), seen)
    return size


@dataclass
class StorageCategory:
    name: str
    bytes: int
    percent: float = 0.0


@dataclass
class StorageReport:
    """The measured equivalent of Table 3-3."""

    categories: list[StorageCategory] = field(default_factory=list)
    total_bytes: int = 0
    primitives: int = 0
    signals: int = 0
    bytes_per_primitive: float = 0.0
    bytes_per_signal_value: float = 0.0
    value_records_per_signal: float = 0.0

    def table(self) -> str:
        lines = [
            "STORAGE REQUIRED (Table 3-3 categories)",
            "",
            f"  {'category':<28} {'bytes':>12} {'percent':>9}",
        ]
        for cat in self.categories:
            lines.append(f"  {cat.name:<28} {cat.bytes:>12,} {cat.percent:>8.1f}%")
        lines.append(f"  {'TOTAL':<28} {self.total_bytes:>12,} {100.0:>8.1f}%")
        lines.append("")
        lines.append(
            f"  {self.bytes_per_primitive:.0f} bytes/primitive circuit "
            f"description ({self.primitives} primitives)"
        )
        lines.append(
            f"  {self.bytes_per_signal_value:.0f} bytes/signal value, "
            f"{self.value_records_per_signal:.2f} value records/signal "
            f"({self.signals} signal value lists)"
        )
        return "\n".join(lines)


def profile_json(result: "VerificationResult") -> dict:
    """The execution profile of one verification run, as plain data.

    Per-phase wall times in the shape of Table 3-1, the event/evaluation
    counters of section 3.3.2, and the effectiveness counters of the
    engine's optimisation layers (levelized scheduling, waveform
    interning, evaluation memoisation).
    """
    s = result.stats
    p = result.phases
    verify_s = p.verify
    out = {
        "circuit": result.circuit_name,
        "phases_seconds": {
            "build": p.build,
            "cross_reference": p.cross_reference,
            "verify": verify_s,
            "summary": p.summary,
            "levelize": s.levelize_seconds,
            "total": p.total,
        },
        "primitives": result.primitive_count,
        "cases": len(result.cases),
        "events": s.events,
        "evaluations": s.evaluations,
        "vector_events": s.vector_events,
        "lane_splits": s.lane_splits,
        "events_per_primitive": result.events_per_primitive,
        "events_per_second": s.events / verify_s if verify_s > 0 else 0.0,
        "max_rank": s.max_rank,
        "caches": _cache_stats(result),
        "incremental": {
            "runs": s.incremental_runs,
            "dirty_primitives": s.dirty_primitives,
            "reused_waveforms": s.reused_waveforms,
        },
        "violations": len(result.violations),
    }
    if result.phases_cpu is not None:
        # Parallel runs: wall times above are max-reduced across workers;
        # this block carries the summed CPU seconds actually spent.
        c = result.phases_cpu
        out["phases_cpu_seconds"] = {
            "build": c.build,
            "cross_reference": c.cross_reference,
            "verify": c.verify,
            "summary": c.summary,
            "total": c.total,
        }
    if result.pool is not None:
        # Pooled runs: the warm worker pool's lifetime and transfer
        # counters (see repro.parallel).
        pl = result.pool
        out["pool"] = {
            "workers": pl.workers,
            "pool_starts": pl.pool_starts,
            "runs": pl.runs,
            "warm_runs": pl.warm_runs,
            "edits_shipped": pl.edits_shipped,
            "waveforms_shipped": pl.waveforms_shipped,
            "waveform_refs": pl.waveform_refs,
            "snapshots_fetched": pl.snapshots_fetched,
            "partitions": pl.partitions,
            "boundary_rounds": pl.boundary_rounds,
        }
    return out


def _cache_disabled(result: "VerificationResult") -> tuple[bool, bool]:
    """(memo+prepared disabled, intern disabled) from the run's config.

    A cache a :class:`VerifyConfig` switched off never counts a hit, and
    reporting that as a 0% hit rate reads as a cache that failed; the
    reporters show ``"disabled"`` instead.  Results from before the config
    was recorded (``result.config is None``) keep the numeric rendering.
    """
    cfg = result.config
    if cfg is None:
        return False, False
    return not cfg.memoize_evaluation, not cfg.intern_waveforms


def _cache_stats(result: "VerificationResult") -> dict[str, object]:
    s = result.stats
    memo_off, intern_off = _cache_disabled(result)
    out: dict[str, object] = {
        "memo_hits": s.memo_hits,
        "memo_misses": s.memo_misses,
        "memo_hit_rate": "disabled" if memo_off else s.memo_hit_rate,
        "intern_hits": s.intern_hits,
        "intern_misses": s.intern_misses,
        "intern_hit_rate": "disabled" if intern_off else s.intern_hit_rate,
        "prepared_hits": s.prepared_hits,
        "prepared_misses": s.prepared_misses,
        "prepared_hit_rate": "disabled" if memo_off else s.prepared_hit_rate,
        "evaluations_saved": s.evaluations_saved,
    }
    return out


def profile_report(result: "VerificationResult") -> str:
    """Human-readable rendering of :func:`profile_json`."""
    data = profile_json(result)
    s = result.stats
    memo_off, intern_off = _cache_disabled(result)
    phase_rows = [
        ("Reading input files and building data structures", "build"),
        ("  of which: computing the levelized schedule", "levelize"),
        ("Generating cross reference listings", "cross_reference"),
        ("Verifying circuit", "verify"),
        ("Generating timing summary listing", "summary"),
    ]
    lines = [f"EXECUTION PROFILE — {data['circuit']}", ""]
    for label, key in phase_rows:
        lines.append(
            f"  {label:<52} {data['phases_seconds'][key] * 1000:10.2f} ms"
        )
    lines.append(f"  {'Total':<52} {data['phases_seconds']['total'] * 1000:10.2f} ms")
    lines += [
        "",
        f"  primitives: {data['primitives']}, cases: {data['cases']}",
        f"  events: {data['events']}, evaluations: {data['evaluations']}, "
        f"events/primitive: {data['events_per_primitive']:.2f} "
        "(thesis: ~2.4)",
        f"  events/second: {data['events_per_second']:,.0f}, "
        f"max schedule rank: {data['max_rank']}",
        f"  word-level: {data['vector_events']} vector events "
        f"(one per word, any width), {data['lane_splits']} per-bit "
        "divergence splits",
        "",
        _cache_line(
            "evaluation memo:", s.memo_hits, s.memo_misses, memo_off,
            s.memo_hit_rate, f" — {s.evaluations_saved} model runs saved",
        ),
        _cache_line(
            "intern table:   ", s.intern_hits, s.intern_misses, intern_off,
            s.intern_hit_rate,
        ),
        _cache_line(
            "prepared inputs:", s.prepared_hits, s.prepared_misses, memo_off,
            s.prepared_hit_rate,
        ),
    ]
    if s.incremental_runs:
        lines += [
            "",
            f"  incremental: {s.incremental_runs} re-verification(s), "
            f"{s.dirty_primitives} primitives in the dirty cone, "
            f"{s.reused_waveforms} stored waveforms reused",
        ]
    if result.pool is not None:
        pl = result.pool
        total_refs = pl.waveforms_shipped + pl.waveform_refs
        lines += [
            "",
            f"  worker pool: {pl.workers} worker(s), "
            f"{pl.pool_starts} start(s), {pl.runs} run(s) "
            f"({pl.warm_runs} warm), {pl.edits_shipped} edit(s) shipped",
            f"  digest transfer: {pl.waveforms_shipped}/{total_refs} "
            f"waveform(s) shipped (rest sent by reference), "
            f"{pl.snapshots_fetched} snapshot(s) fetched",
        ]
        if pl.partitions:
            lines.append(
                f"  partitioned: {pl.partitions} partition(s), "
                f"{pl.boundary_rounds} boundary exchange round(s)"
            )
    return "\n".join(lines)


def _cache_line(
    label: str, hits: int, misses: int, disabled: bool,
    rate: float, extra: str = "",
) -> str:
    if disabled:
        return f"  {label} disabled"
    return f"  {label} {hits}/{hits + misses} hits ({rate:.0%}){extra}"


def measure_storage(engine: Engine) -> StorageReport:
    """Measure a (run) engine's working storage by Table 3-3 category."""
    circuit = engine.circuit
    seen: set[int] = set()

    # Strings first would claim the names out from under the other
    # categories; the paper's order puts the circuit description first.
    components = list(circuit.iter_components())
    circuit_description = 0
    strings: list[str] = []
    for comp in components:
        strings.append(comp.name)
        circuit_description += deep_size(comp.pins, seen)
        circuit_description += deep_size(comp.params, seen)
        circuit_description += sys.getsizeof(comp)

    reps = circuit.representatives()
    signal_values = deep_size(engine.values, seen)

    signal_names = 0
    for net in circuit.nets.values():
        strings.append(net.name)
        strings.append(net.base_name)
        signal_names += sys.getsizeof(net)
        signal_names += deep_size(net.assertion, seen)
    signal_names += sys.getsizeof(circuit.nets)

    string_space = sum(deep_size(s, seen) for s in set(strings))

    call_list = deep_size(engine._loads, seen) + deep_size(engine._drivers, seen)

    misc = (
        deep_size(engine._case_map, seen)
        + deep_size(engine.xref_assumed_stable, seen)
        + deep_size(circuit.cases, seen)
        + deep_size(circuit._alias_parent, seen)
    )

    categories = [
        StorageCategory("circuit description", circuit_description),
        StorageCategory("signal values", signal_values),
        StorageCategory("signal names", signal_names),
        StorageCategory("string space", string_space),
        StorageCategory("call list array", call_list),
        StorageCategory("miscellaneous", misc),
    ]
    total = sum(c.bytes for c in categories)
    for cat in categories:
        cat.percent = 100.0 * cat.bytes / total if total else 0.0

    n_prims = len(components)
    n_signals = len(reps)
    segment_count = sum(len(wf.segments) for wf in engine.values.values())
    return StorageReport(
        categories=categories,
        total_bytes=total,
        primitives=n_prims,
        signals=n_signals,
        bytes_per_primitive=circuit_description / n_prims if n_prims else 0.0,
        bytes_per_signal_value=signal_values / n_signals if n_signals else 0.0,
        value_records_per_signal=segment_count / n_signals if n_signals else 0.0,
    )
