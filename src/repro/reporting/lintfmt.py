"""Reporters for lint results: compiler-style text and machine JSON.

Kept in ``repro.reporting`` beside the thesis listings so every
human-facing output format lives in one package; ``repro.lint`` produces
plain :class:`~repro.lint.Diagnostic` data and knows nothing about
rendering.
"""

from __future__ import annotations

import json

from ..lint.runner import LintResult


def lint_text(result: LintResult) -> str:
    """Compiler-style report: one ``file:line: severity[rule]: ...`` line each.

    Ends with a one-line summary in the style of the thesis's error
    listing trailer.
    """
    lines = [str(d) for d in result.diagnostics]
    errors = len(result.errors)
    warnings = len(result.warnings)
    infos = len(result.diagnostics) - errors - warnings
    if not result.diagnostics:
        lines.append("lint clean: no findings.")
    else:
        lines.append(
            f"{errors} error(s), {warnings} warning(s), {infos} note(s)."
        )
    return "\n".join(lines)


def lint_doc(result: LintResult) -> dict:
    """The result as a plain dict (what :func:`lint_json` serializes)."""
    errors = len(result.errors)
    warnings = len(result.warnings)
    return {
        "files": list(result.files),
        "diagnostics": [d.to_dict() for d in result.diagnostics],
        "summary": {
            "errors": errors,
            "warnings": warnings,
            "infos": len(result.diagnostics) - errors - warnings,
            "total": len(result.diagnostics),
            "suppressed": result.suppressed,
        },
    }


def lint_json(result: LintResult) -> str:
    """The result as a JSON document (stable key order, for tooling)."""
    return json.dumps(lint_doc(result), indent=2, sort_keys=True)
