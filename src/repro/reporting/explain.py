"""Critical-path explanation: *why* a signal settles when it does.

The thesis's error listing (Figure 3-11) shows the offending waveforms; a
designer then traced the contributing path by hand through the prints.
This module automates the trace: starting from a checker's data input, it
walks driver-by-driver toward the assertion or clock edge that launched the
latest-settling contribution, attributing each hop's wire and element
delay — the ancestor of the modern STA path report.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import VerifyConfig
from ..core.timeline import format_ns
from ..core.values import CHANGING_VALUES
from ..core.verifier import VerificationResult
from ..core.violations import Violation
from ..netlist.circuit import Circuit, Component, Connection, Net
from ..core.waveform import Waveform


@dataclass(frozen=True)
class PathHop:
    """One element of a settle-time explanation, input-side first."""

    net: str
    settle_ps: int
    via: str  # how the next hop is reached ("CHG 1.5/3.0 + wire 0.0/2.0")

    def __str__(self) -> str:
        via = f"  --{self.via}-->" if self.via else ""
        return f"{self.net} settles {format_ns(self.settle_ps)} ns{via}"


def _settle_ps(wf: Waveform, period: int) -> int | None:
    """The latest time the signal may still be changing, unwrapped so a
    changing region crossing time zero reports into the next cycle."""
    m = wf.materialized()
    runs = [
        (start, end)
        for start, end, vals, _b, _a in m._circular_runs(
            lambda v: v in CHANGING_VALUES
        )
    ]
    if not runs:
        return None
    return max(end for _s, end in runs)


class SettleExplainer:
    """Traces the critical contribution to each net's settle time."""

    def __init__(
        self,
        circuit: Circuit,
        waveforms: dict[str, Waveform],
        config: VerifyConfig | None = None,
    ) -> None:
        self.circuit = circuit
        self.waveforms = waveforms
        self.config = config or VerifyConfig()
        self._drivers: dict[Net, tuple[Component, str]] = {}
        for comp in circuit.iter_components():
            for pin, conn in comp.output_pins():
                self._drivers[circuit.find(conn.net)] = (comp, pin)

    def _wire(self, conn: Connection) -> tuple[int, int]:
        if conn.wire_delay_ps is not None:
            return conn.wire_delay_ps
        rep = self.circuit.find(conn.net)
        if rep.wire_delay_ps is not None:
            return rep.wire_delay_ps
        return self.config.default_wire_delay_ps

    def _wf(self, rep: Net) -> Waveform | None:
        return self.waveforms.get(rep.name)

    def explain(self, net_name: str, max_hops: int = 32) -> list[PathHop]:
        """The chain of contributions ending at ``net_name``'s settle time.

        Returned source-first: the first hop is the asserted input or
        storage element that launched the critical path.
        """
        net = self.circuit.nets.get(net_name)
        if net is None:
            raise KeyError(f"no signal named {net_name!r}")
        period = self.circuit.period_ps
        hops: list[PathHop] = []
        rep = self.circuit.find(net)
        seen: set[Net] = set()
        for _ in range(max_hops):
            wf = self._wf(rep)
            if wf is None:
                break
            settle = _settle_ps(wf, period)
            if settle is None:
                hops.append(PathHop(rep.name, 0, "never changes"))
                break
            driver = self._drivers.get(rep)
            if driver is None or rep in seen:
                kind = "assertion" if rep.assertion else "input"
                hops.append(PathHop(rep.name, settle, kind))
                break
            seen.add(rep)
            comp, _pin = driver
            culprit, via = self._critical_input(comp, settle, period)
            hops.append(PathHop(rep.name, settle, via))
            if culprit is None:
                break
            rep = culprit
        return list(reversed(hops))

    def _critical_input(
        self, comp: Component, out_settle: int, period: int
    ) -> tuple[Net | None, str]:
        """The input whose settle best accounts for the output's settle."""
        prim = comp.prim.name
        dmax = comp.delay_ps()[1]
        if prim in ("REG", "REG_RS"):
            clock = self.circuit.find(comp.pins["CLOCK"].net)
            return clock, f"{prim} {comp.name!r} clocked (+{format_ns(dmax)} ns)"
        best: tuple[tuple[int, int], Net, str] | None = None
        for pin, conn in comp.input_pins():
            rep = self.circuit.find(conn.net)
            wf = self._wf(rep)
            if wf is None:
                continue
            settle = _settle_ps(wf, period)
            if settle is None:
                continue
            wmax = self._wire(conn)[1]
            extra = dmax
            if prim.startswith("MUX") and pin.startswith("S"):
                extra += comp.params.get("select_delay", (0, 0))[1]
            contribution = settle + wmax + extra
            # Circular slack: how close this contribution lands to the
            # output settle, modulo the period.
            gap = (out_settle - contribution) % period
            gap = min(gap, period - gap)
            key = (gap, -settle)
            if best is None or key < best[0]:
                via = (
                    f"{prim} {comp.name!r} "
                    f"+wire {format_ns(wmax)} +{format_ns(extra)} ns"
                )
                best = (key, rep, via)
        if best is None:
            return None, f"{prim} {comp.name!r}"
        return best[1], best[2]


def explain_violation(
    circuit: Circuit,
    result: VerificationResult,
    violation: Violation,
    config: VerifyConfig | None = None,
) -> str:
    """Render a settle-time trace for a violation's data signal."""
    waveforms = result.cases[violation.case_index].waveforms
    explainer = SettleExplainer(circuit, waveforms, config)
    base = violation.signal
    # The violation names the net as connected (possibly '-' prefixed).
    name = base[1:] if base.startswith("-") else base
    try:
        hops = explainer.explain(name)
    except KeyError:
        return f"(no trace available for {violation.signal!r})"
    lines = [f"critical contribution to {violation.signal!r}:"]
    for hop in hops:
        lines.append(f"  {hop}")
    lines.append(f"  => {violation.headline()}")
    return "\n".join(lines)
