"""Output listings, statistics tables, and path explanations."""

from .diagram import render_waveform, timing_diagram
from .explain import PathHop, SettleExplainer, explain_violation
from .lintfmt import lint_json, lint_text
from .listing import phase_table, timing_summary, violation_listing, xref_listing
from .stafmt import sta_json, sta_text
from .stats import StorageReport, measure_storage

__all__ = [
    "lint_json",
    "lint_text",
    "sta_json",
    "sta_text",
    "render_waveform",
    "timing_diagram",
    "PathHop",
    "SettleExplainer",
    "explain_violation",
    "phase_table",
    "timing_summary",
    "violation_listing",
    "xref_listing",
    "StorageReport",
    "measure_storage",
]
