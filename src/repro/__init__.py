"""repro — the SCALD Timing Verifier, reproduced.

A Python reproduction of Thomas M. McWilliams, *Verification of Timing
Constraints on Large Digital Systems* (Stanford / LLNL, 1980; DAC 1980): a
symbolic, value-independent timing verifier for synchronous sequential
circuits, together with the substrates it rests on (a SCALD-style HDL and
macro expander, a component library, and the two baseline approaches the
thesis compares against).

Quickstart::

    from repro import Circuit, TimingVerifier

    c = Circuit("demo", period_ns=50.0, clock_unit_ns=6.25)
    c.reg("Q", clock="CLK .P2-3", data="D .S0-6", delay=(1.5, 4.5), width=8)
    c.setup_hold("D .S0-6", "CLK .P2-3", setup=2.5, hold=1.5)
    result = TimingVerifier(c).verify()
    print(result.error_listing())
"""

from .core import (
    EXACT,
    CheckReport,
    Engine,
    OscillationError,
    Timebase,
    TimingVerifier,
    Value,
    VerificationResult,
    VerifyConfig,
    Violation,
    ViolationKind,
    Waveform,
    verify,
)
from .hdl import Assertion, AssertionKind, parse_signal_name
from .incremental import (
    AssertionEdit,
    ConstraintsEdit,
    ParamEdit,
    ReconnectEdit,
    WireDelayEdit,
)
from .netlist import (
    Circuit,
    Component,
    Connection,
    InvalidCircuitError,
    Net,
    NetlistError,
)
from .session import IncrementalResult, Session

__version__ = "1.0.0"

__all__ = [
    "EXACT",
    "CheckReport",
    "Engine",
    "OscillationError",
    "Timebase",
    "TimingVerifier",
    "Value",
    "VerificationResult",
    "VerifyConfig",
    "Violation",
    "ViolationKind",
    "Waveform",
    "verify",
    "Assertion",
    "AssertionKind",
    "parse_signal_name",
    "AssertionEdit",
    "ConstraintsEdit",
    "ParamEdit",
    "ReconnectEdit",
    "WireDelayEdit",
    "IncrementalResult",
    "Session",
    "Circuit",
    "Component",
    "Connection",
    "InvalidCircuitError",
    "Net",
    "NetlistError",
    "__version__",
]
