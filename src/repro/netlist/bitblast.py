"""Bit-blasting: expand vector primitives into per-bit scalar primitives.

This is the representation the thesis says would have taken 53 833 instead
of 8 282 primitives for the S-1 design (Table 3-2): every width-*w*
primitive becomes *w* width-1 primitives over per-bit nets named
``"NAME [i]"``, with scalar nets (clocks, selects, controls) shared by all
bit slices.

The transform is the word-level engine's *differential oracle*: the
per-bit circuit carries no vector symmetry at all, so verifying it with
the ordinary scalar engine gives an independent per-bit answer that the
word-level path must reproduce exactly (see ``repro.wordcheck``).  It
doubles as the ``--bit-blast`` CLI mode and the ablation benchmark's
"what if we had no vectors" arm.
"""

from __future__ import annotations

from .circuit import Circuit, Component, Connection, Net, parse_lane_ref


def _bit_net(target: Circuit, source_net: Net, bit: int, width: int) -> Net:
    """The per-bit clone of a (possibly vector) net.

    Scalar nets (clocks, selects, controls) are shared by every bit slice;
    vector nets get one clone per bit, keeping the original's assertion and
    wire delay.  The bit suffix is attached outside the assertion-bearing
    name, so the assertion object is copied explicitly rather than
    re-parsed.
    """
    if source_net.width == 1:
        clone = target.nets.get(source_net.name)
        if clone is None:
            clone = Net(
                name=source_net.name,
                width=1,
                base_name=source_net.base_name,
                assertion=source_net.assertion,
                wire_delay_ps=source_net.wire_delay_ps,
            )
            target.nets[clone.name] = clone
        return clone
    index = bit % source_net.width
    name = f"{source_net.name} [{index}]"
    clone = target.nets.get(name)
    if clone is None:
        clone = Net(
            name=name,
            width=1,
            base_name=f"{source_net.base_name} [{index}]",
            assertion=source_net.assertion,
            wire_delay_ps=source_net.wire_delay_ps,
        )
        target.nets[name] = clone
    return clone


def blast_width(circuit: Circuit, comp: Component) -> int:
    """How many scalar clones bit-blasting makes of ``comp``.

    Normally ``comp.width``.  A narrow driver on a wider output net is
    cloned out to the net's full width: the vector engine broadcasts
    ``lane i <- output[i % comp.width]`` across the whole word, so the
    per-bit circuit needs a driver copy for every lane it reaches.
    """
    width = comp.width
    for _pin, conn in comp.output_pins():
        width = max(width, circuit.find(conn.net).width)
    return width


def bit_blast(circuit: Circuit) -> Circuit:
    """Expand every vector primitive into per-bit scalar primitives.

    The result is semantically the design the thesis says would have taken
    53 833 primitives: same timing behaviour per bit, no vector symmetry.
    """
    blasted = Circuit(
        f"{circuit.name}-bitblasted",
        period_ns=circuit.timebase.period_ns,
        clock_unit_ns=circuit.timebase.clock_unit_ns,
    )
    for comp in circuit.iter_components():
        width = comp.width
        clones = blast_width(circuit, comp)
        out_pins = {pin for pin, _conn in comp.output_pins()}
        for bit in range(clones):
            pins: dict[str, Connection] = {}
            for pin, conn in comp.pins.items():
                # Broadcast clones past ``width`` replicate clone
                # ``bit % width``'s inputs while driving output lane
                # ``bit`` — exactly ``lane_out[lane % n]`` in the engine.
                src = bit if pin in out_pins else bit % width
                net = _bit_net(blasted, circuit.find(conn.net), src, width)
                pins[pin] = Connection(
                    net=net,
                    invert=conn.invert,
                    directives=conn.directives,
                    wire_delay_ps=conn.wire_delay_ps,
                )
            name = comp.name if clones == 1 else f"{comp.name} [{bit}]"
            params = dict(comp.params)
            params["width"] = 1
            blasted.components[name] = Component(
                name=name, prim=comp.prim, pins=pins, params=params
            )
    for case in circuit.cases:
        # Two passes so a per-lane key ("NAME [3]") always overrides a
        # whole-net key ("NAME") regardless of dict order — the same
        # precedence the word-level engine gives lane cases.
        mapped: dict[str, int] = {}
        lane_keys: dict[str, int] = {}
        for name, value in case.items():
            source = circuit.nets.get(name)
            if source is not None and source.width > 1:
                for bit in range(source.width):
                    mapped[f"{name} [{bit}]"] = value
                continue
            if source is None and parse_lane_ref(circuit, name) is not None:
                lane_keys[name] = value
                continue
            mapped[name] = value
        mapped.update(lane_keys)
        blasted.cases.append(mapped)
    return blasted
