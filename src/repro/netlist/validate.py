"""Structural validation of a circuit before verification.

The Macro Expander performed these checks while expanding the design
(section 3.3.1 — "checks the design for syntax errors"); we run them on the
flat circuit so that hand-built circuits get the same protection.
"""

from __future__ import annotations

from dataclasses import dataclass

from .circuit import Circuit, Component, Net


@dataclass(frozen=True)
class ValidationIssue:
    """One structural problem found in a circuit."""

    severity: str  # "error" or "warning"
    message: str
    component: str | None = None
    net: str | None = None

    def __str__(self) -> str:
        where = f" [{self.component or self.net}]" if (self.component or self.net) else ""
        return f"{self.severity.upper()}{where}: {self.message}"


class InvalidCircuitError(ValueError):
    """Raised by :func:`check` when a circuit has structural errors."""

    def __init__(self, issues: list[ValidationIssue]) -> None:
        self.issues = issues
        super().__init__(
            "; ".join(str(i) for i in issues if i.severity == "error")
        )


def validate(circuit: Circuit) -> list[ValidationIssue]:
    """Collect structural issues without raising.

    Errors: missing required input pins, unconnected outputs on non-checker
    primitives, more than one driver on a net.  Warnings: driven nets that
    also carry a clock/stable assertion (the assertion will be *checked*
    against the computed value rather than drive it — section 2.5.2), and
    case signals that are never referenced.
    """
    issues: list[ValidationIssue] = []
    driver_count: dict[Net, list[str]] = {}

    for comp in circuit.iter_components():
        connected_inputs = {pin for pin, _ in comp.input_pins()}
        for pin in comp.prim.inputs:
            if pin not in connected_inputs:
                issues.append(
                    ValidationIssue(
                        "error",
                        f"required input pin {pin!r} is not connected",
                        component=comp.name,
                    )
                )
        if comp.prim.variadic_input and not connected_inputs:
            issues.append(
                ValidationIssue(
                    "error", "gate has no inputs connected", component=comp.name
                )
            )
        for pin in comp.prim.outputs:
            if pin not in comp.pins:
                issues.append(
                    ValidationIssue(
                        "error",
                        f"output pin {pin!r} is not connected",
                        component=comp.name,
                    )
                )
        for pin, conn in comp.output_pins():
            rep = circuit.find(conn.net)
            driver_count.setdefault(rep, []).append(f"{comp.name}.{pin}")
            if conn.invert:
                issues.append(
                    ValidationIssue(
                        "error",
                        f"output pin {pin!r} may not be inverted at the net",
                        component=comp.name,
                    )
                )
            if conn.directives:
                issues.append(
                    ValidationIssue(
                        "error",
                        f"evaluation directives belong on inputs, not output {pin!r}",
                        component=comp.name,
                    )
                )

    for rep, drivers in driver_count.items():
        if len(drivers) > 1:
            issues.append(
                ValidationIssue(
                    "error",
                    f"net has {len(drivers)} drivers ({', '.join(drivers)}); "
                    "wired logic must be modelled with an explicit gate",
                    net=rep.name,
                )
            )
        if rep.assertion is not None and rep.assertion.kind.is_clock:
            issues.append(
                ValidationIssue(
                    "warning",
                    "clock-asserted signal is also driven by logic; the "
                    "assertion value wins and the driver is ignored",
                    net=rep.name,
                )
            )

    referenced = set()
    for comp in circuit.iter_components():
        for _pin, conn in list(comp.input_pins()) + list(comp.output_pins()):
            referenced.add(circuit.find(conn.net))
    for case in circuit.cases:
        for name in case:
            net = circuit.nets.get(name)
            if net is not None and circuit.find(net) not in referenced:
                issues.append(
                    ValidationIssue(
                        "warning",
                        "case-analysis signal is not referenced by any primitive",
                        net=name,
                    )
                )
    return issues


def check(circuit: Circuit) -> list[ValidationIssue]:
    """Validate and raise :class:`InvalidCircuitError` on any error.

    Returns the warnings (if any) when the circuit is structurally sound.
    """
    issues = validate(circuit)
    errors = [i for i in issues if i.severity == "error"]
    if errors:
        raise InvalidCircuitError(issues)
    return [i for i in issues if i.severity == "warning"]
