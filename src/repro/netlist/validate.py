"""Structural validation of a circuit before verification.

The Macro Expander performed these checks while expanding the design
(section 3.3.1 — "checks the design for syntax errors"); we run them on the
flat circuit so that hand-built circuits get the same protection.

The checks themselves live in the lint rule registry
(``repro.lint.rules_circuit``, the rules marked ``structural``) so that
``scald-lint`` and the verifier share a single diagnostics pipeline; this
module keeps the legacy :class:`ValidationIssue` API and maps the registry's
diagnostics onto it.  The structural rule set is served with overrides
disabled — nothing the engine would flag at runtime can be suppressed or
downgraded from here.
"""

from __future__ import annotations

from dataclasses import dataclass

from .circuit import Circuit


@dataclass(frozen=True)
class ValidationIssue:
    """One structural problem found in a circuit."""

    severity: str  # "error" or "warning"
    message: str
    component: str | None = None
    net: str | None = None

    def __str__(self) -> str:
        where = f" [{self.component or self.net}]" if (self.component or self.net) else ""
        return f"{self.severity.upper()}{where}: {self.message}"


class InvalidCircuitError(ValueError):
    """Raised by :func:`check` when a circuit has structural errors."""

    def __init__(self, issues: list[ValidationIssue]) -> None:
        self.issues = issues
        super().__init__(
            "; ".join(str(i) for i in issues if i.severity == "error")
        )


def validate(circuit: Circuit) -> list[ValidationIssue]:
    """Collect structural issues without raising.

    Errors: missing required input pins, unconnected outputs, inverted or
    directive-carrying output connections, more than one driver on a net.
    Warnings: driven nets that also carry a clock assertion (the assertion
    wins — section 2.5.2), and case signals that are never referenced.
    """
    # Imported lazily: repro.netlist's __init__ imports this module, and
    # the lint package imports repro.netlist.circuit.
    from ..lint.registry import LintConfig
    from ..lint.runner import lint_circuit

    result = lint_circuit(circuit, LintConfig(structural_only=True))
    return [
        ValidationIssue(
            severity=d.severity,
            message=d.message,
            component=d.component,
            net=d.net,
        )
        for d in result.diagnostics
    ]


def check(circuit: Circuit) -> list[ValidationIssue]:
    """Validate and raise :class:`InvalidCircuitError` on any error.

    Returns the warnings (if any) when the circuit is structurally sound.
    """
    issues = validate(circuit)
    errors = [i for i in issues if i.severity == "error"]
    if errors:
        raise InvalidCircuitError(issues)
    return [i for i in issues if i.severity == "warning"]
