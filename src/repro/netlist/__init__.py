"""Circuit substrate: primitive registry, netlist graph, validation."""

from .circuit import Circuit, Component, Connection, Net, NetlistError
from .primitives import PRIMITIVES, PrimitiveType, lookup
from .validate import InvalidCircuitError, ValidationIssue, check, validate

__all__ = [
    "Circuit",
    "Component",
    "Connection",
    "Net",
    "NetlistError",
    "PRIMITIVES",
    "PrimitiveType",
    "lookup",
    "InvalidCircuitError",
    "ValidationIssue",
    "check",
    "validate",
]
