"""Circuit substrate: primitive registry, netlist graph, validation."""

from .bitblast import bit_blast
from .circuit import Circuit, Component, Connection, Net, NetlistError, parse_lane_ref
from .primitives import PRIMITIVES, PrimitiveType, lookup
from .validate import InvalidCircuitError, ValidationIssue, check, validate

__all__ = [
    "Circuit",
    "Component",
    "Connection",
    "Net",
    "NetlistError",
    "bit_blast",
    "parse_lane_ref",
    "PRIMITIVES",
    "PrimitiveType",
    "lookup",
    "InvalidCircuitError",
    "ValidationIssue",
    "check",
    "validate",
]
