"""Circuit graph: nets, components, and the design container.

This is the data structure the Macro Expander emits and the Timing Verifier
consumes — the "circuit description" that accounted for 37.8 % of the
thesis implementation's storage (Table 3-3).  A :class:`Circuit` is a flat
collection of primitive :class:`Component` instances connected by
:class:`Net` objects; synonyms between signal names (created by macro
parameter binding) are kept in a union-find and resolved the way Pass 1 of
the Macro Expander resolves them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..core.timeline import Timebase, ns_to_ps
from ..hdl.assertions import Assertion, parse_signal_name
from .primitives import PrimitiveType, lookup

#: Letters accepted in an evaluation-directive string (section 2.6).
DIRECTIVE_LETTERS = frozenset("EWZAH")


class NetlistError(ValueError):
    """Raised for structural errors while building a circuit."""


#: A per-lane signal reference: ``"NAME [i]"`` names bit ``i`` of the
#: vector net ``NAME`` (the same suffix the bit-blast transform uses for
#: its per-bit net clones).
_LANE_REF_RE = re.compile(r"\A(?P<base>.+) \[(?P<lane>\d+)\]\Z")


def parse_lane_ref(circuit: "Circuit", name: str) -> "tuple[Net, int] | None":
    """Resolve ``"NAME [i]"`` to ``(net, i)`` when it names a vector lane.

    Returns None unless the suffix parses, the base net already exists,
    and the lane index is inside the net's declared width.  A name that is
    itself a registered net (a bit-blasted circuit's per-bit clone) is
    *not* a lane reference — the whole-net meaning wins.
    """
    if name in circuit.nets:
        return None
    m = _LANE_REF_RE.match(name)
    if m is None:
        return None
    base = circuit.nets.get(m.group("base"))
    if base is None:
        return None
    lane = int(m.group("lane"))
    rep = circuit.find(base)
    if lane >= rep.width:
        return None
    return rep, lane


@dataclass(eq=False)  # identity equality/hashing, at C speed
class Net:
    """One signal in the design.

    The full ``name`` may embed a timing assertion (section 2.5); the
    parsed assertion and the assertion-free ``base_name`` are stored
    alongside.  ``wire_delay_ps`` overrides the verifier's default
    interconnection delay for this signal (section 2.5.3 — the thesis's
    example sets the register-file address lines to 0.0/6.0 ns).
    """

    name: str
    width: int = 1
    base_name: str = ""
    assertion: Assertion | None = None
    wire_delay_ps: tuple[int, int] | None = None
    is_case_signal: bool = False
    #: ``(source_file, line)`` of the statement that first referenced the
    #: net, when it came from a ``.scald`` source; None for API-built nets.
    origin: tuple[str, int] | None = None

    def __post_init__(self) -> None:
        if not self.base_name:
            base, assertion = parse_signal_name(self.name)
            self.base_name = base
            if self.assertion is None:
                self.assertion = assertion
        if self.width < 1:
            raise NetlistError(f"net {self.name!r} has width {self.width}")

    def __repr__(self) -> str:
        return f"<Net {self.name!r} w={self.width}>"


@dataclass(frozen=True)
class Connection:
    """A net attached to a component pin.

    Attributes:
        net: the attached signal.
        invert: use the complement of the signal (the leading ``-`` of
            ``- WE`` in Figure 3-5).
        directives: evaluation-directive string applied *at this input*
            (the ``&H`` of Figure 2-5); one letter per level of gating.
        wire_delay_ps: per-connection interconnection delay override.
    """

    net: Net
    invert: bool = False
    directives: str = ""
    wire_delay_ps: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        bad = set(self.directives.upper()) - DIRECTIVE_LETTERS
        if bad:
            raise NetlistError(
                f"unknown evaluation directive letters {sorted(bad)} on "
                f"net {self.net.name!r} (allowed: E W Z A H)"
            )
        object.__setattr__(self, "directives", self.directives.upper())


@dataclass
class Component:
    """One primitive instance."""

    name: str
    prim: PrimitiveType
    pins: dict[str, Connection] = field(default_factory=dict)
    params: dict[str, object] = field(default_factory=dict)
    #: ``(source_file, line)`` of the ``prim`` statement this instance was
    #: expanded from, when known; None for API-built components.
    origin: tuple[str, int] | None = None

    def input_pins(self) -> list[tuple[str, Connection]]:
        """Connected input pins, fixed pins first then variadic in order."""
        out = []
        for pin in self.prim.inputs:
            if pin in self.pins:
                out.append((pin, self.pins[pin]))
        if self.prim.variadic_input:
            i = 1
            prefix = self.prim.variadic_input
            while f"{prefix}{i}" in self.pins:
                out.append((f"{prefix}{i}", self.pins[f"{prefix}{i}"]))
                i += 1
        return out

    def output_pins(self) -> list[tuple[str, Connection]]:
        return [(p, self.pins[p]) for p in self.prim.outputs if p in self.pins]

    @property
    def width(self) -> int:
        return int(self.params.get("width", 1))

    def delay_ps(self, param: str = "delay") -> tuple[int, int]:
        return self.params.get(param, (0, 0))  # type: ignore[return-value]

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"<{self.prim.name} {self.name!r}>"


def normalize_param(prim: PrimitiveType, spec, value: object) -> object:
    """Normalize one parameter value against its spec; convert ns to ps.

    Shared between construction-time :func:`_normalize_params` and the
    incremental edit API (:class:`repro.incremental.ParamEdit`), so an
    edited parameter lands in the component in exactly the form the
    builder would have produced.
    """
    if value is None:
        return None
    if spec.kind == "delay":
        if isinstance(value, (int, float)):
            value = (value, value)  # a fixed delay
        dmin, dmax = value  # type: ignore[misc]
        lo, hi = ns_to_ps(float(dmin)), ns_to_ps(float(dmax))
        if lo < 0 or hi < lo:
            raise NetlistError(
                f"{prim.name}.{spec.name}: bad delay range {value!r}"
            )
        return (lo, hi)
    if spec.kind == "time":
        # Hold times may legitimately be negative (Figure 3-5 checks a
        # hold of -1.0 ns on the register-file data inputs).
        return ns_to_ps(float(value))  # type: ignore[arg-type]
    if spec.kind == "int":
        return int(value)  # type: ignore[arg-type]
    # pragma: no cover - registry bug
    raise AssertionError(f"unknown param kind {spec.kind}")


def _normalize_params(prim: PrimitiveType, raw: dict[str, object]) -> dict[str, object]:
    """Validate parameters against the primitive's spec; convert ns to ps."""
    specs = {p.name: p for p in prim.params}
    unknown = set(raw) - set(specs)
    if unknown:
        raise NetlistError(
            f"{prim.name} does not accept parameter(s) {sorted(unknown)}"
        )
    out: dict[str, object] = {}
    for spec in prim.params:
        if spec.name in raw:
            value = raw[spec.name]
        elif spec.required:
            raise NetlistError(f"{prim.name} requires parameter {spec.name!r}")
        else:
            value = spec.default
        out[spec.name] = normalize_param(prim, spec, value)
    return out


NetLike = "Net | str"  # forward-reference alias used in annotations only


class Circuit:
    """A flat design ready for timing verification.

    Nets are created on first reference by name; names carry assertions.
    The convenience builders (:meth:`gate`, :meth:`reg`, ...) cover the
    primitive vocabulary of section 3.1.

    A net name passed as a string may carry a leading ``-`` to denote the
    complement of the signal at that connection, and a trailing
    ``&<letters>`` evaluation-directive annotation, e.g. ``"CLK .P2-3 &H"``
    — matching the drawings in Figures 2-5 and 3-5.
    """

    def __init__(
        self,
        name: str,
        period_ns: float,
        clock_unit_ns: float | None = None,
    ) -> None:
        self.name = name
        self.timebase = Timebase.from_ns(period_ns, clock_unit_ns)
        self.nets: dict[str, Net] = {}
        self.components: dict[str, Component] = {}
        self.cases: list[dict[str, int]] = []
        self._alias_parent: dict[Net, Net] = {}

    def __getstate__(self) -> dict:
        """Pickle hook: flatten the union-find first.

        ``find`` compresses paths lazily, so the alias table's internal
        shape depends on query history.  Compressing every chain before
        pickling makes the serialized form canonical — workers unpickling
        the same circuit see the same representative for every net (the
        pickle memo preserves the ``Net`` identity topology, which is what
        ``eq=False`` hashing keys on).
        """
        for net in list(self._alias_parent):
            self.find(net)
        return self.__dict__

    # ------------------------------------------------------------------
    # nets and aliases
    # ------------------------------------------------------------------

    @property
    def period_ps(self) -> int:
        return self.timebase.period_ps

    def net(self, name: str, width: int = 1) -> Net:
        """Get or create the net called ``name``.

        Re-referencing an existing net with a larger width widens it (macro
        expansion discovers vector widths incrementally).
        """
        existing = self.nets.get(name)
        if existing is not None:
            if width > existing.width:
                existing.width = width
            return existing
        net = Net(name=name, width=width)
        self.nets[name] = net
        return net

    def alias(self, a: NetLike, b: NetLike) -> None:
        """Declare two names to be the same signal (Pass-1 synonyms)."""
        na, nb = self._as_net(a), self._as_net(b)
        ra, rb = self.find(na), self.find(nb)
        if ra is rb:
            return
        # Keep the asserted (or first-created) net as representative so
        # assertions survive resolution.
        if rb.assertion is not None and ra.assertion is None:
            ra, rb = rb, ra
        self._alias_parent[rb] = ra
        if rb.width > ra.width:
            ra.width = rb.width

    def find(self, net: Net) -> Net:
        """The representative net of an alias class (path-compressed)."""
        root = net
        while root in self._alias_parent:
            root = self._alias_parent[root]
        while net in self._alias_parent:
            self._alias_parent[net], net = root, self._alias_parent[net]
        return root

    def representatives(self) -> list[Net]:
        """All distinct signals after synonym resolution."""
        seen: dict[Net, None] = {}
        for net in self.nets.values():
            seen.setdefault(self.find(net), None)
        return list(seen)

    def _as_net(self, ref: NetLike, width: int = 1) -> Net:
        if isinstance(ref, Net):
            return ref
        return self.net(ref, width=width)

    def _as_connection(self, ref, width: int = 1) -> Connection:
        """Coerce a net/str/Connection into a Connection.

        String form: ``[-]NAME[ &DIRECTIVES]``.
        """
        if isinstance(ref, Connection):
            return ref
        if isinstance(ref, Net):
            return Connection(net=ref)
        if not isinstance(ref, str):
            raise NetlistError(f"cannot connect {ref!r}")
        text = ref.strip()
        invert = False
        if text.startswith("-"):
            invert = True
            text = text[1:].strip()
        directives = ""
        if "&" in text:
            text, _, directives = text.rpartition("&")
            text = text.strip()
            directives = directives.strip()
        return Connection(
            net=self._as_net(text, width=width), invert=invert, directives=directives
        )

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------

    def add(
        self,
        name: str,
        prim_name: str,
        pins: dict[str, object],
        origin: tuple[str, int] | None = None,
        **params: object,
    ) -> Component:
        """Add a primitive instance with explicit pin connections."""
        if name in self.components:
            raise NetlistError(f"duplicate component name {name!r}")
        prim = lookup(prim_name)
        norm = _normalize_params(prim, params)
        width = int(norm.get("width") or 1)
        comp = Component(name=name, prim=prim, params=norm, origin=origin)
        valid = set(prim.all_fixed_pins())
        for pin, ref in pins.items():
            if pin not in valid and not (
                prim.variadic_input
                and pin.startswith(prim.variadic_input)
                and pin[len(prim.variadic_input):].isdigit()
            ):
                raise NetlistError(f"{prim.name} has no pin {pin!r}")
            comp.pins[pin] = self._as_connection(ref, width=width)
        self.components[name] = comp
        return comp

    def _auto_name(self, prefix: str) -> str:
        i = len(self.components) + 1
        while f"{prefix}{i}" in self.components:
            i += 1
        return f"{prefix}{i}"

    def gate(
        self,
        prim_name: str,
        output: NetLike,
        inputs: Sequence[object],
        delay: tuple[float, float] = (0.0, 0.0),
        name: str | None = None,
        width: int = 1,
        rise_delay: tuple[float, float] | None = None,
        fall_delay: tuple[float, float] | None = None,
    ) -> Component:
        """Add a gate/CHG with variadic inputs ``I1..In``.

        ``rise_delay``/``fall_delay`` give per-edge delay ranges for
        asymmetric (nMOS-style) technologies (section 4.2.2); either
        defaults to the symmetric ``delay`` when only one is given.
        """
        prim = lookup(prim_name)
        if prim.variadic_input is None and prim.name not in ("NOT", "BUF", "DELAY"):
            raise NetlistError(f"{prim.name} is not a gate")
        pins: dict[str, object] = {}
        if prim.variadic_input:
            if len(inputs) < prim.min_variadic:
                raise NetlistError(f"{prim.name} needs at least one input")
            for i, ref in enumerate(inputs, start=1):
                pins[f"{prim.variadic_input}{i}"] = ref
        else:
            if len(inputs) != 1:
                raise NetlistError(f"{prim.name} takes exactly one input")
            pins["I"] = inputs[0]
        pins["OUT"] = output
        params: dict[str, object] = {"delay": delay, "width": width}
        if rise_delay is not None:
            params["rise_delay"] = rise_delay
        if fall_delay is not None:
            params["fall_delay"] = fall_delay
        return self.add(
            name or self._auto_name(prim.name.lower()),
            prim.name,
            pins,
            **params,
        )

    def chg(self, output, inputs, delay=(0.0, 0.0), name=None, width=1) -> Component:
        """The CHANGE function (section 2.4.2)."""
        return self.gate("CHG", output, inputs, delay=delay, name=name, width=width)

    def buf(self, output, input_, delay=(0.0, 0.0), name=None, width=1) -> Component:
        """A buffer / explicit delay element."""
        return self.gate("BUF", output, [input_], delay=delay, name=name, width=width)

    def mux(
        self,
        output,
        selects: Sequence[object],
        inputs: Sequence[object],
        delay=(0.0, 0.0),
        select_delay=(0.0, 0.0),
        name=None,
        width=1,
    ) -> Component:
        """An N-way multiplexer (Figure 3-6's ``2 MUX``)."""
        n = len(inputs)
        if n not in (2, 4, 8):
            raise NetlistError(f"mux must have 2, 4 or 8 inputs, got {n}")
        if len(selects) != max(1, n.bit_length() - 1):
            raise NetlistError(
                f"mux with {n} inputs needs {max(1, n.bit_length() - 1)} selects"
            )
        pins: dict[str, object] = {"OUT": output}
        for i, s in enumerate(selects):
            pins[f"S{i}"] = s
        for i, d in enumerate(inputs):
            pins[f"I{i}"] = d
        return self.add(
            name or self._auto_name(f"mux{n}_"),
            f"MUX{n}",
            pins,
            delay=delay,
            select_delay=select_delay,
            width=width,
        )

    def reg(
        self,
        output,
        clock,
        data,
        delay=(0.0, 0.0),
        set_=None,
        reset=None,
        name=None,
        width=1,
    ) -> Component:
        """An edge-triggered register (Figure 2-1)."""
        pins: dict[str, object] = {"OUT": output, "CLOCK": clock, "DATA": data}
        prim = "REG"
        if set_ is not None or reset is not None:
            prim = "REG_RS"
            pins["SET"] = set_ if set_ is not None else "GND"
            pins["RESET"] = reset if reset is not None else "GND"
        return self.add(
            name or self._auto_name("reg"), prim, pins, delay=delay, width=width
        )

    def latch(
        self,
        output,
        enable,
        data,
        delay=(0.0, 0.0),
        set_=None,
        reset=None,
        name=None,
        width=1,
    ) -> Component:
        """A transparent latch (Figure 2-2)."""
        pins: dict[str, object] = {"OUT": output, "ENABLE": enable, "DATA": data}
        prim = "LATCH"
        if set_ is not None or reset is not None:
            prim = "LATCH_RS"
            pins["SET"] = set_ if set_ is not None else "GND"
            pins["RESET"] = reset if reset is not None else "GND"
        return self.add(
            name or self._auto_name("latch"), prim, pins, delay=delay, width=width
        )

    def setup_hold(
        self, input_, clock, setup: float, hold: float, name=None, width=1
    ) -> Component:
        """A SETUP HOLD CHK primitive (Figure 2-3, upper)."""
        return self.add(
            name or self._auto_name("shchk"),
            "SETUP_HOLD_CHK",
            {"I": input_, "CK": clock},
            setup=setup,
            hold=hold,
            width=width,
        )

    def setup_rise_hold_fall(
        self, input_, clock, setup: float, hold: float, name=None, width=1
    ) -> Component:
        """A SETUP RISE HOLD FALL CHK primitive (Figure 2-3, lower)."""
        return self.add(
            name or self._auto_name("srhfchk"),
            "SETUP_RISE_HOLD_FALL_CHK",
            {"I": input_, "CK": clock},
            setup=setup,
            hold=hold,
            width=width,
        )

    def min_pulse_width(
        self,
        input_,
        min_high: float | None = None,
        min_low: float | None = None,
        name=None,
        width=1,
    ) -> Component:
        """A MIN PULSE WIDTH checker (Figure 2-4)."""
        if min_high is None and min_low is None:
            raise NetlistError("min_pulse_width needs min_high and/or min_low")
        return self.add(
            name or self._auto_name("mpwchk"),
            "MIN_PULSE_WIDTH",
            {"I": input_},
            min_high=min_high,
            min_low=min_low,
            width=width,
        )

    # ------------------------------------------------------------------
    # case analysis (section 2.7)
    # ------------------------------------------------------------------

    def add_case(self, **assignments: int) -> None:
        """Add one case: keyword form, net names with ``_`` for spaces not
        supported — prefer :meth:`add_case_by_name` for real names."""
        self.add_case_by_name({k: v for k, v in assignments.items()})

    def add_case_by_name(self, assignments: dict[str, int]) -> None:
        """Add one simulated case (section 2.7.1).

        Each entry maps a signal name to 0 or 1; during that case the
        signal's STABLE values are replaced by the given constant.  A key
        of the form ``"NAME [i]"`` where ``NAME`` is an existing vector
        net addresses bit ``i`` alone — the word-level engine diverges
        just that lane, and a lane key always overrides a whole-net key
        for the same net.  (A registered net whose *name* carries the
        suffix — a bit-blasted clone — keeps its whole-net meaning.)
        """
        case: dict[str, int] = {}
        for name, value in assignments.items():
            if value not in (0, 1):
                raise NetlistError(f"case value for {name!r} must be 0 or 1")
            lane_ref = parse_lane_ref(self, name)
            if lane_ref is not None:
                lane_ref[0].is_case_signal = True
            else:
                net = self.net(name)
                net.is_case_signal = True
            case[name] = value
        self.cases.append(case)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def drivers_of(self, net: Net) -> list[tuple[Component, str]]:
        rep = self.find(net)
        out = []
        for comp in self.components.values():
            for pin, conn in comp.output_pins():
                if self.find(conn.net) is rep:
                    out.append((comp, pin))
        return out

    def loads_of(self, net: Net) -> list[tuple[Component, str]]:
        rep = self.find(net)
        out = []
        for comp in self.components.values():
            for pin, conn in comp.input_pins():
                if self.find(conn.net) is rep:
                    out.append((comp, pin))
        return out

    def iter_components(self) -> Iterator[Component]:
        return iter(self.components.values())

    def stats(self) -> dict[str, object]:
        """Primitive statistics in the shape of Table 3-2."""
        by_type: dict[str, int] = {}
        total_width = 0
        for comp in self.components.values():
            by_type[comp.prim.display] = by_type.get(comp.prim.display, 0) + 1
            total_width += comp.width
        n = len(self.components)
        return {
            "primitive_count": n,
            "primitive_types": len(by_type),
            "by_type": dict(sorted(by_type.items(), key=lambda kv: -kv[1])),
            "mean_width": (total_width / n) if n else 0.0,
            "bit_blasted_count": total_width,
            "net_count": len(self.representatives()),
        }

    def __repr__(self) -> str:
        return (
            f"<Circuit {self.name!r}: {len(self.components)} primitives, "
            f"{len(self.nets)} nets, period {self.timebase.period_ns} ns>"
        )
