"""The primitive vocabulary of the Timing Verifier (sections 2.4 and 3.1).

Circuits are described in terms of a fixed set of built-in primitives —
gates, the CHANGE function, multiplexers, registers, latches, and the three
constraint checkers — and all more complex components (register files, ALUs,
RAMs) are *macros* expanded into these primitives by the SCALD Macro
Expander.  Each primitive represents an arbitrarily wide data path, which is
why the thesis needed only 8 282 primitives (average width 6.5 bits) instead
of 53 833 for the 6 357-chip S-1 example (Table 3-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter of a primitive.

    ``kind`` is ``"delay"`` for a ``(min, max)`` nanosecond pair, ``"time"``
    for a single nanosecond value, and ``"int"`` for counts.
    """

    name: str
    kind: str
    required: bool = True
    default: object = None


@dataclass(frozen=True)
class PrimitiveType:
    """Static description of one primitive type.

    Attributes:
        name: canonical identifier (e.g. ``REG_RS``).
        display: the name as printed in the thesis (e.g. ``REG RS``).
        inputs: fixed input pin names, in order.
        outputs: output pin names (checkers have none).
        variadic_input: prefix for an unbounded input list (``I`` gives
            pins ``I1, I2, ...``), or None.
        params: accepted parameters.
        family: ``and``/``or``/``xor``/``none`` — determines the *enabling*
            level assumed for the other inputs under the ``&A``/``&H``
            evaluation directives (1 for AND-type gates, 0 for OR-type).
        inverting: output is complemented (NAND/NOR/XNOR/NOT).
        is_checker: evaluated after the fixed point to report violations
            rather than to drive an output (section 2.9).
        min_variadic: minimum number of variadic inputs.
    """

    name: str
    display: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ("OUT",)
    variadic_input: str | None = None
    params: tuple[ParamSpec, ...] = ()
    family: str = "none"
    inverting: bool = False
    is_checker: bool = False
    min_variadic: int = 1

    def all_fixed_pins(self) -> tuple[str, ...]:
        return self.inputs + self.outputs


_DELAY = ParamSpec("delay", "delay", required=False, default=(0.0, 0.0))
_WIDTH = ParamSpec("width", "int", required=False, default=1)
#: Per-edge delay ranges for asymmetric technologies (section 4.2.2);
#: when given they replace the symmetric ``delay``.
_RISE_DELAY = ParamSpec("rise_delay", "delay", required=False, default=None)
_FALL_DELAY = ParamSpec("fall_delay", "delay", required=False, default=None)
_GATE_PARAMS = (_DELAY, _WIDTH, _RISE_DELAY, _FALL_DELAY)


def _gate(name: str, display: str, family: str, inverting: bool) -> PrimitiveType:
    return PrimitiveType(
        name=name,
        display=display,
        variadic_input="I",
        params=_GATE_PARAMS,
        family=family,
        inverting=inverting,
    )


def _mux(n: int) -> PrimitiveType:
    selects = tuple(f"S{i}" for i in range(max(1, n.bit_length() - 1)))
    data = tuple(f"I{i}" for i in range(n))
    return PrimitiveType(
        name=f"MUX{n}",
        display=f"{n} MUX",
        inputs=selects + data,
        params=(
            _DELAY,
            _WIDTH,
            ParamSpec("select_delay", "delay", required=False, default=(0.0, 0.0)),
        ),
    )


PRIMITIVES: dict[str, PrimitiveType] = {}


def _register(prim: PrimitiveType) -> PrimitiveType:
    PRIMITIVES[prim.name] = prim
    return prim


# -- combinational gates (section 2.4.2) -----------------------------------
AND = _register(_gate("AND", "AND", "and", False))
NAND = _register(_gate("NAND", "NAND", "and", True))
OR = _register(_gate("OR", "OR", "or", False))
NOR = _register(_gate("NOR", "NOR", "or", True))
XOR = _register(_gate("XOR", "XOR", "xor", False))
XNOR = _register(_gate("XNOR", "XNOR", "xor", True))
CHG = _register(
    PrimitiveType(
        name="CHG",
        display="CHG",
        variadic_input="I",
        params=_GATE_PARAMS,
    )
)
NOT = _register(
    PrimitiveType(
        name="NOT", display="NOT", inputs=("I",), params=_GATE_PARAMS,
        inverting=True,
    )
)
BUF = _register(
    PrimitiveType(name="BUF", display="BUF", inputs=("I",), params=_GATE_PARAMS)
)
#: Pure delay element; also the substrate of the ``CORR`` fictitious delay
#: macro used to suppress correlation false errors (section 4.2.3).
DELAY = _register(
    PrimitiveType(name="DELAY", display="DELAY", inputs=("I",), params=_GATE_PARAMS)
)

# -- multiplexers (Figure 3-6, Table 3-2's "2 MUX" / "8 MUX") ---------------
MUX2 = _register(_mux(2))
MUX4 = _register(_mux(4))
MUX8 = _register(_mux(8))

# -- storage elements (section 2.4.3, Figures 2-1 and 2-2) ------------------
REG = _register(
    PrimitiveType(
        name="REG",
        display="REG",
        inputs=("CLOCK", "DATA"),
        params=(_DELAY, _WIDTH),
    )
)
REG_RS = _register(
    PrimitiveType(
        name="REG_RS",
        display="REG RS",
        inputs=("CLOCK", "DATA", "SET", "RESET"),
        params=(_DELAY, _WIDTH),
    )
)
LATCH = _register(
    PrimitiveType(
        name="LATCH",
        display="LATCH",
        inputs=("ENABLE", "DATA"),
        params=(_DELAY, _WIDTH),
    )
)
LATCH_RS = _register(
    PrimitiveType(
        name="LATCH_RS",
        display="LATCH RS",
        inputs=("ENABLE", "DATA", "SET", "RESET"),
        params=(_DELAY, _WIDTH),
    )
)

# -- constraint checkers (sections 2.4.4 and 2.4.5, Figures 2-3 and 2-4) ----
SETUP_HOLD_CHK = _register(
    PrimitiveType(
        name="SETUP_HOLD_CHK",
        display="SETUP HOLD CHK",
        inputs=("I", "CK"),
        outputs=(),
        params=(
            ParamSpec("setup", "time"),
            ParamSpec("hold", "time"),
            _WIDTH,
        ),
        is_checker=True,
    )
)
SETUP_RISE_HOLD_FALL_CHK = _register(
    PrimitiveType(
        name="SETUP_RISE_HOLD_FALL_CHK",
        display="SETUP RISE HOLD FALL CHK",
        inputs=("I", "CK"),
        outputs=(),
        params=(
            ParamSpec("setup", "time"),
            ParamSpec("hold", "time"),
            _WIDTH,
        ),
        is_checker=True,
    )
)
MIN_PULSE_WIDTH = _register(
    PrimitiveType(
        name="MIN_PULSE_WIDTH",
        display="MIN PULSE WIDTH",
        inputs=("I",),
        outputs=(),
        params=(
            ParamSpec("min_high", "time", required=False, default=None),
            ParamSpec("min_low", "time", required=False, default=None),
            _WIDTH,
        ),
        is_checker=True,
    )
)

#: Accepted spellings: canonical names, the thesis's display names, and a
#: few drawing-style aliases such as ``2 MUX``.
ALIASES: dict[str, str] = {}
for _prim in list(PRIMITIVES.values()):
    ALIASES[_prim.name.upper()] = _prim.name
    ALIASES[_prim.display.upper()] = _prim.name
ALIASES.update({"2 OR": "OR", "2 AND": "AND", "2 MUX": "MUX2", "4 MUX": "MUX4",
                "8 MUX": "MUX8", "INV": "NOT", "BUFFER": "BUF"})


def lookup(name: str) -> PrimitiveType:
    """Find a primitive type by any accepted spelling.

    Raises ``KeyError`` with the full vocabulary on an unknown name.
    """
    key = name.strip().upper().replace("-", "_")
    canonical = ALIASES.get(key) or ALIASES.get(key.replace("_", " "))
    if canonical is None:
        known = ", ".join(sorted(PRIMITIVES))
        raise KeyError(f"unknown primitive {name!r}; known primitives: {known}")
    return PRIMITIVES[canonical]
