"""Word-level vs bit-blasted differential comparison.

The word-level engine reports a uniform vector once, under its vector
names; the bit-blasted oracle reports every bit separately, under the
``"NAME [i]"`` clone names.  This module canonicalizes both reports to the
same per-bit form so equality can be asserted byte-for-byte:

* an unsuffixed record from a width-``N`` checker expands to ``N`` lane
  records (what the blasted twin would have emitted);
* an already lane-suffixed record (the word engine's diverged path, or any
  blasted record) passes through;
* every signal name is normalized to its representative net's name, so an
  alias used at a pin compares equal to the clone named after the rep.

``tools/check.sh`` and ``tests/test_wordlevel.py`` gate on
:func:`assert_word_equivalent`.
"""

from __future__ import annotations

from dataclasses import replace

from .constraints.resolve import strip_lane_suffix
from .core.verifier import VerificationResult
from .core.violations import Violation
from .netlist.bitblast import blast_width
from .netlist.circuit import Circuit, parse_lane_ref


def _rep_width(circuit: Circuit, name: str) -> int:
    net = circuit.nets.get(name)
    if net is None:
        return 1
    return circuit.find(net).width


def _normalize_name(circuit: Circuit, name: str | None) -> str | None:
    """Alias -> representative name, preserving lane suffix and '-' prefix."""
    if name is None:
        return None
    invert = name.startswith("-")
    bare = name[1:] if invert else name
    base = strip_lane_suffix(bare)
    suffix = bare[len(base):]
    net = circuit.nets.get(base)
    if net is not None:
        base = circuit.find(net).name
    return ("-" if invert else "") + base + suffix


def _suffixed(circuit: Circuit, name: str, lane: int) -> str:
    """Lane-qualify ``name`` when its net is a vector (modulo the width)."""
    invert = name.startswith("-")
    bare = name[1:] if invert else name
    width = _rep_width(circuit, bare)
    if width == 1:
        return _normalize_name(circuit, name)
    return _normalize_name(circuit, f"{'-' if invert else ''}{bare} [{lane % width}]")


def _is_lane_suffixed(circuit: Circuit, name: str) -> bool:
    bare = name[1:] if name.startswith("-") else name
    if strip_lane_suffix(bare) == bare:
        return False
    # A name that is itself a registered net (a blasted clone) still counts
    # as suffixed for comparison purposes, so check the textual form only.
    return True


def _expand_one(circuit: Circuit, v: Violation) -> list[Violation]:
    """One record -> its canonical per-bit records."""
    # Already per-lane (word diverged path, blasted run, or a suffixed
    # component clone): normalize names only.
    if (
        _is_lane_suffixed(circuit, v.component)
        or _is_lane_suffixed(circuit, v.signal)
        or (v.clock is not None and _is_lane_suffixed(circuit, v.clock))
    ):
        return [
            replace(
                v,
                component=_normalize_name(circuit, v.component),
                signal=_normalize_name(circuit, v.signal),
                clock=_normalize_name(circuit, v.clock),
            )
        ]
    comp = circuit.components.get(v.component)
    if comp is not None:
        width = blast_width(circuit, comp)
        comp_vector = width > 1
    else:
        # "assertion", "sdc@NET", or other synthetic components: the record
        # covers every lane of the signal's net.
        bare = v.signal[1:] if v.signal.startswith("-") else v.signal
        width = _rep_width(circuit, bare)
        comp_vector = False
    out: list[Violation] = []
    for lane in range(width):
        out.append(
            replace(
                v,
                component=f"{v.component} [{lane}]" if comp_vector else v.component,
                signal=_suffixed(circuit, v.signal, lane),
                clock=None
                if v.clock is None
                else _suffixed(circuit, v.clock, lane),
            )
        )
    return out


def per_bit_violation_lines(
    result: VerificationResult, circuit: Circuit
) -> list[str]:
    """Canonical sorted per-bit headline of every violation.

    ``circuit`` must be the *word-level* (unblasted) circuit — widths and
    representative names are resolved against it for both runs, which is
    valid because the blasted twin's names embed the word circuit's rep
    names by construction.
    """
    lines: list[str] = []
    for v in result.violations:
        lines.extend(str(x) for x in _expand_one(circuit, v))
    return sorted(lines)


def per_bit_xref(result: VerificationResult, circuit: Circuit) -> list[str]:
    """The assumed-stable cross-reference, expanded to per-bit names."""
    out: list[str] = []
    for name in result.xref_assumed_stable:
        base = strip_lane_suffix(name)
        if base != name and parse_lane_ref(circuit, name) is None:
            # A blasted clone name: keep as-is (it already names one bit).
            out.append(_normalize_name(circuit, name))
            continue
        if base != name:
            out.append(_normalize_name(circuit, name))
            continue
        width = _rep_width(circuit, name)
        if width == 1:
            out.append(_normalize_name(circuit, name))
        else:
            rep = _normalize_name(circuit, name)
            out.extend(f"{rep} [{i}]" for i in range(width))
    return sorted(out)


def assert_word_equivalent(
    word_result: VerificationResult,
    blast_result: VerificationResult,
    circuit: Circuit,
) -> None:
    """Byte-identical violation output between the two modes, or raise.

    Compares the canonical per-bit expansion of every violation headline,
    the assumed-stable cross-reference, and the overall verdict.
    ``circuit`` is the word-level circuit both runs were derived from.
    """
    word_lines = per_bit_violation_lines(word_result, circuit)
    blast_lines = per_bit_violation_lines(blast_result, circuit)
    if word_lines != blast_lines:
        extra_w = [l for l in word_lines if l not in blast_lines]
        extra_b = [l for l in blast_lines if l not in word_lines]
        raise AssertionError(
            "word-level and bit-blasted violation reports differ\n"
            f"  only word-level ({len(extra_w)}): {extra_w[:5]}\n"
            f"  only bit-blasted ({len(extra_b)}): {extra_b[:5]}"
        )
    word_xref = per_bit_xref(word_result, circuit)
    blast_xref = per_bit_xref(blast_result, circuit)
    if word_xref != blast_xref:
        raise AssertionError(
            "assumed-stable cross-references differ\n"
            f"  word-level: {word_xref}\n"
            f"  bit-blasted: {blast_xref}"
        )
    if word_result.ok != blast_result.ok:  # pragma: no cover - implied above
        raise AssertionError(
            f"verdicts differ: word ok={word_result.ok}, "
            f"blast ok={blast_result.ok}"
        )
