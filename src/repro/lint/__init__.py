"""Static design-rule analysis for SCALD designs (``scald-lint``).

A rule registry drives checks over two surfaces: the parsed ``.scald``
AST (with ``file:line`` spans) and the expanded primitive netlist.  The
rules are grounded in the failure modes the thesis describes — gated
clocks without ``&A`` (Figure 1-5), directive strings shorter than the
gate depth (section 2.6), combinational loops (section 2.9), case
analysis on never-stable signals (section 2.7) — plus the structural
checks the engine requires, absorbed from ``repro.netlist.validate``.

Quick use::

    from repro.lint import lint_path
    result = lint_path("examples/designs/shifter.scald")
    for d in result.diagnostics:
        print(d)

Suppress a finding in source with a comment pragma on (or just above)
the offending line::

    -- lint: disable=unasserted-input
"""

from .diagnostics import SEVERITIES, Diagnostic
from .registry import LintConfig, Rule, all_rules, get_rule, rule
from .runner import (
    CircuitIndex,
    LintContext,
    LintResult,
    lint_circuit,
    lint_path,
    lint_source,
    run_rules,
)

__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "LintConfig",
    "Rule",
    "all_rules",
    "get_rule",
    "rule",
    "CircuitIndex",
    "LintContext",
    "LintResult",
    "lint_circuit",
    "lint_path",
    "lint_source",
    "run_rules",
]
