"""The lint runner: parse, expand, run every enabled rule, filter pragmas.

``lint_path``/``lint_source`` drive the full pipeline over a ``.scald``
file: the source surface always runs; the circuit surface runs when the
file is a design (has top-level statements) and macro expansion succeeds.
Parse and expansion failures are not exceptions here — they become
diagnostics under the pipeline pseudo-rules ``syntax-error`` and
``expand-error`` so a lint run always produces a report.

``lint_circuit`` runs the circuit surface alone over a hand-built
:class:`~repro.netlist.Circuit`; ``netlist.validate`` uses it (with
``structural_only=True``) to serve its legacy API through the registry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Iterable

from ..hdl.parser import Design, ScaldSyntaxError, parse
from ..netlist.circuit import Circuit, Component, Connection, Net
from .diagnostics import Diagnostic
from .registry import LintConfig, Rule, all_rules

#: ``-- lint: disable=rule-a,rule-b`` inside a comment.  The pragma applies
#: to its own line and the following line (so it can sit above a statement).
#: ``#`` comments (``.sdc`` files) and the ``scald:`` keyword are accepted
#: too, ids may be dotted (``sdc.unresolved-pin``), and a trailing ``.*``
#: suppresses a whole family (``sdc.*``) — including rule ids registered
#: after the pragma was written.
_PRAGMA_RE = re.compile(
    r"(?:--|#).*?(?:lint|scald):\s*disable=([A-Za-z0-9_.*\-, ]+)"
)

_LINE_RE = re.compile(r"line (\d+)")


class CircuitIndex:
    """Driver/load maps keyed by representative net, built once per run."""

    def __init__(self, circuit: Circuit) -> None:
        self.drivers: dict[Net, list[tuple[Component, str, Connection]]] = {}
        self.loads: dict[Net, list[tuple[Component, str, Connection]]] = {}
        for comp in circuit.iter_components():
            for pin, conn in comp.output_pins():
                rep = circuit.find(conn.net)
                self.drivers.setdefault(rep, []).append((comp, pin, conn))
            for pin, conn in comp.input_pins():
                rep = circuit.find(conn.net)
                self.loads.setdefault(rep, []).append((comp, pin, conn))


@dataclass
class LintContext:
    """Everything a rule may look at.

    ``design`` is ``None`` when linting a hand-built circuit; ``circuit``
    is ``None`` when expansion failed or the file is a pure macro library.
    A rule only runs when its declared surface is present.
    """

    design: Design | None = None
    circuit: Circuit | None = None
    #: Resolved SDC :class:`~repro.constraints.ConstraintSet` when the run
    #: was given one (``--sdc``); the ``sdc.*`` rule family needs it.
    sdc: object | None = None
    _index: CircuitIndex | None = field(default=None, repr=False)
    _sta: object = field(default=False, repr=False)

    @property
    def index(self) -> CircuitIndex:
        if self._index is None:
            if self.circuit is None:
                raise RuntimeError("no circuit surface in this lint context")
            self._index = CircuitIndex(self.circuit)
        return self._index

    @property
    def sta(self):
        """The static timing analysis (``repro.sta``), computed on demand.

        ``None`` when the circuit is too malformed to analyze — those
        circuits already carry structural errors from the basic rules, so
        the ``sta.*`` family silently stands down rather than crashing the
        whole lint run.  (``False`` is the not-yet-computed sentinel.)
        """
        if self._sta is False:
            if self.circuit is None:
                raise RuntimeError("no circuit surface in this lint context")
            from ..sta import analyze

            try:
                self._sta = analyze(self.circuit)
            except Exception:
                self._sta = None
        return self._sta


@dataclass(frozen=True)
class LintResult:
    """The outcome of one lint run."""

    diagnostics: tuple[Diagnostic, ...]
    files: tuple[str, ...] = ()
    suppressed: int = 0  #: findings hidden by ``lint: disable`` pragmas

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 on errors (``strict`` promotes warnings)."""
        if self.errors or (strict and self.warnings):
            return 1
        return 0


def run_rules(ctx: LintContext, config: LintConfig | None = None) -> list[Diagnostic]:
    """Run every enabled rule whose surface is present; stamp and sort."""
    config = config or LintConfig()
    found: list[Diagnostic] = []
    for r in all_rules():
        if config.structural_only and not r.structural:
            continue
        if not config.enabled(r.id):
            continue
        if r.surface == "source" and ctx.design is None:
            continue
        if r.surface == "circuit" and ctx.circuit is None:
            continue
        if r.surface == "sdc" and ctx.sdc is None:
            continue
        severity = config.severity_of(r)
        for d in r.check(ctx):
            found.append(replace(d, rule=r.id, severity=severity))
    found.sort(
        key=lambda d: (d.file, d.line, d.rule, d.component or "", d.net or "")
    )
    return found


def lint_circuit(
    circuit: Circuit, config: LintConfig | None = None
) -> LintResult:
    """Run the circuit-surface rules over an already-built circuit."""
    ctx = LintContext(circuit=circuit)
    return LintResult(diagnostics=tuple(run_rules(ctx, config)))


def lint_source(
    source: str,
    filename: str = "",
    config: LintConfig | None = None,
    sdc_path: str | None = None,
) -> LintResult:
    """Lint a ``.scald`` source string (plus anything it includes).

    With ``sdc_path`` the constraint file is parsed and resolved against
    the expanded circuit and the ``sdc.*`` rule family runs over its
    findings (an unreadable file raises ``OSError`` — the callers' usage
    error path).  Suppression pragmas inside the ``.sdc`` file itself are
    honoured the same way as in ``.scald`` sources.
    """
    try:
        design = parse(source, filename)
    except ScaldSyntaxError as exc:
        # The exception text leads with its own "file:line:" — drop it, the
        # diagnostic's location field already carries the span.
        message = str(exc)
        prefix = f"{filename or '<input>'}:{exc.line}: "
        if message.startswith(prefix):
            message = message[len(prefix):]
        d = Diagnostic(
            rule="syntax-error",
            severity="error",
            message=message,
            file=filename,
            line=exc.line,
        )
        return LintResult(diagnostics=(d,), files=(filename,) if filename else ())

    ctx = LintContext(design=design)
    pipeline: list[Diagnostic] = []
    if design.top:
        # Only a design (not a pure macro library) has a circuit surface.
        from ..hdl.expander import MacroExpander

        try:
            ctx.circuit = MacroExpander(design).expand()
        except ValueError as exc:
            m = _LINE_RE.search(str(exc))
            pipeline.append(
                Diagnostic(
                    rule="expand-error",
                    severity="error",
                    message=str(exc),
                    file=filename,
                    line=int(m.group(1)) if m else 0,
                )
            )

    if sdc_path is not None and ctx.circuit is not None:
        from ..constraints import load_constraints

        ctx.sdc = load_constraints(sdc_path, ctx.circuit)

    found = pipeline + run_rules(ctx, config)
    files = tuple(design.files_read) or ((filename,) if filename else ())
    if sdc_path is not None and ctx.sdc is not None:
        files = files + (sdc_path,)
    suppressed = _collect_suppressions(source, filename, design.files_read)
    if sdc_path is not None and ctx.sdc is not None:
        try:
            with open(sdc_path, "r", encoding="utf-8") as fh:
                suppressed[sdc_path] = _scan_pragmas(fh.read())
        except OSError:
            pass
    kept = [d for d in found if not _is_suppressed(d, suppressed)]
    return LintResult(
        diagnostics=tuple(kept),
        files=files,
        suppressed=len(found) - len(kept),
    )


def lint_path(
    path: str,
    config: LintConfig | None = None,
    sdc_path: str | None = None,
) -> LintResult:
    """Lint a ``.scald`` file on disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(
            fh.read(), filename=path, config=config, sdc_path=sdc_path
        )


# ---------------------------------------------------------------------------
# suppression pragmas
# ---------------------------------------------------------------------------


def _scan_pragmas(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids disabled there (own line + next line)."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _PRAGMA_RE.search(line)
        if not m:
            continue
        ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
        out.setdefault(lineno, set()).update(ids)
        out.setdefault(lineno + 1, set()).update(ids)
    return {line: frozenset(ids) for line, ids in out.items()}


def _collect_suppressions(
    source: str, filename: str, files_read: list[str]
) -> dict[str, dict[int, frozenset[str]]]:
    by_file: dict[str, dict[int, frozenset[str]]] = {}
    if filename:
        by_file[filename] = _scan_pragmas(source)
    for path in files_read:
        if path in by_file:
            continue
        try:
            with open(path, "r", encoding="utf-8") as fh:
                by_file[path] = _scan_pragmas(fh.read())
        except OSError:
            continue
    return by_file


def _is_suppressed(
    d: Diagnostic, by_file: dict[str, dict[int, frozenset[str]]]
) -> bool:
    if not d.file or not d.line:
        return False
    ids = by_file.get(d.file, {}).get(d.line)
    if not ids:
        return False
    if d.rule in ids or "all" in ids:
        return True
    # Family wildcard: ``sdc.*`` suppresses every rule under that prefix.
    return any(i.endswith(".*") and d.rule.startswith(i[:-1]) for i in ids)
