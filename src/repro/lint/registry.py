"""The lint rule registry.

Every design rule is a plain function registered with the :func:`rule`
decorator.  A rule declares the *surface* it analyses — the parsed
``.scald`` AST (``source``) or the expanded :class:`~repro.netlist.Circuit`
(``circuit``) — a default severity, and whether it is *structural*.

Structural rules are the checks absorbed from the old
``repro.netlist.validate`` module: the conditions the evaluation engine
relies on to run at all.  They are served through this registry so there is
a single diagnostics pipeline, and ``netlist.validate`` re-exposes exactly
that subset.  The soundness rule of the project applies here: lint may
*add* findings the engine would miss, but the shipped registry never
suppresses or downgrades a condition the engine would flag at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from .diagnostics import SEVERITIES, Diagnostic

if TYPE_CHECKING:  # pragma: no cover
    from .runner import LintContext

#: Analysis surfaces a rule may declare.
SURFACE_SOURCE = "source"
SURFACE_CIRCUIT = "circuit"
SURFACE_SDC = "sdc"

CheckFn = Callable[["LintContext"], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered design rule."""

    id: str
    surface: str
    severity: str
    structural: bool
    doc: str
    check: CheckFn


_REGISTRY: dict[str, Rule] = {}


def rule(
    rule_id: str,
    *,
    surface: str,
    severity: str,
    structural: bool = False,
) -> Callable[[CheckFn], CheckFn]:
    """Register a check function under ``rule_id``.

    The first line of the function's docstring becomes the rule's one-line
    catalogue description (``scald-lint --list-rules``).
    """
    if surface not in (SURFACE_SOURCE, SURFACE_CIRCUIT, SURFACE_SDC):
        raise ValueError(f"unknown lint surface {surface!r}")
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def decorator(fn: CheckFn) -> CheckFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        doc = (fn.__doc__ or "").strip().splitlines()
        _REGISTRY[rule_id] = Rule(
            id=rule_id,
            surface=surface,
            severity=severity,
            structural=structural,
            doc=doc[0] if doc else "",
            check=fn,
        )
        return fn

    return decorator


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (rule modules loaded on demand)."""
    _load_rule_modules()
    return sorted(_REGISTRY.values(), key=lambda r: r.id)


def get_rule(rule_id: str) -> Rule:
    _load_rule_modules()
    return _REGISTRY[rule_id]


def _load_rule_modules() -> None:
    """Import the built-in rule modules exactly once."""
    from . import rules_circuit, rules_sdc, rules_source, rules_sta  # noqa: F401


@dataclass
class LintConfig:
    """Per-run rule configuration.

    ``disabled`` rules never run; ``selected`` (when not ``None``)
    restricts the run to exactly the named rules — the positive mirror of
    ``disabled``, and ``disabled`` still wins on overlap; ``severities``
    overrides the default severity per rule id; ``structural_only``
    restricts the run to the rules absorbed from ``netlist.validate``
    (that module's compatibility path — overrides are deliberately ignored
    there so the engine's structural error set can never be downgraded).
    """

    disabled: frozenset[str] = frozenset()
    severities: dict[str, str] = field(default_factory=dict)
    structural_only: bool = False
    selected: frozenset[str] | None = None

    def enabled(self, rule_id: str) -> bool:
        if self.selected is not None and rule_id not in self.selected:
            return False
        return rule_id not in self.disabled

    def severity_of(self, r: Rule) -> str:
        if self.structural_only:
            return r.severity
        return self.severities.get(r.id, r.severity)
