"""Circuit-surface lint rules: checks over the expanded primitive netlist.

Two families live here.  The *structural* rules (marked
``structural=True``) are the checks absorbed from the old
``repro.netlist.validate`` module — the conditions the evaluation engine
needs to run at all; ``netlist.validate`` serves exactly this subset
through the registry, so there is a single diagnostics pipeline.  The
remaining rules predict, before any fixed-point iteration, the structural
pathologies the thesis's Verifier only discovers at runtime: oscillating
combinational loops (section 2.9), gated clocks without the ``&A``
stability directive (Figure 1-5), evaluation-directive strings shorter
than the gate depth that consumes them (sections 2.6/2.8), and friends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from ..core.models import GATE_FUNCTIONS
from ..hdl.assertions import AssertionKind
from ..netlist.circuit import Circuit, Component, Connection, Net
from .diagnostics import Diagnostic, diag
from .registry import rule

if TYPE_CHECKING:  # pragma: no cover
    from .runner import CircuitIndex, LintContext

#: Net names treated as supply rails (mirrors the engine's table).
_SUPPLY_NAMES = frozenset({"GND", "VSS", "VCC", "VDD"})

#: Primitives that cut a feedback path: every loop must contain a clocked
#: element (section 1.2.2), and these are the clocked elements.
_SEQUENTIAL = frozenset({"REG", "REG_RS", "LATCH", "LATCH_RS"})

#: Directive letters that trigger the stability check (section 2.6).
_STABILITY = frozenset("AH")


def _is_combinational(comp: Component) -> bool:
    return not comp.prim.is_checker and comp.prim.name not in _SEQUENTIAL


def _is_gate(comp: Component) -> bool:
    """True for the primitives that consume evaluation-directive letters."""
    return comp.prim.name in GATE_FUNCTIONS


# ---------------------------------------------------------------------------
# structural rules (absorbed from netlist/validate.py)
# ---------------------------------------------------------------------------


@rule("missing-input", surface="circuit", severity="error", structural=True)
def check_missing_input(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A required input pin is not connected on a non-checker primitive."""
    for comp in ctx.circuit.iter_components():
        if comp.prim.is_checker:
            continue  # checker-unconnected reports these
        connected = {pin for pin, _conn in comp.input_pins()}
        for pin in comp.prim.inputs:
            if pin not in connected:
                yield diag(
                    f"required input pin {pin!r} is not connected",
                    component=comp.name,
                    origin=comp.origin,
                )


@rule("checker-unconnected", surface="circuit", severity="error", structural=True)
def check_checker_unconnected(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A constraint checker is missing its clock or data connection.

    An unconnected ``SETUP HOLD CHK`` or ``MIN PULSE WIDTH`` silently
    guards nothing — the worst kind of checker.
    """
    for comp in ctx.circuit.iter_components():
        if not comp.prim.is_checker:
            continue
        connected = {pin for pin, _conn in comp.input_pins()}
        for pin in comp.prim.inputs:
            if pin not in connected:
                yield diag(
                    f"checker {comp.prim.display} input pin {pin!r} is not "
                    "connected; the constraint guards nothing",
                    component=comp.name,
                    origin=comp.origin,
                )


@rule("no-inputs", surface="circuit", severity="error", structural=True)
def check_no_inputs(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A variadic gate has no inputs connected at all."""
    for comp in ctx.circuit.iter_components():
        if comp.prim.variadic_input and not comp.input_pins():
            yield diag(
                "gate has no inputs connected",
                component=comp.name,
                origin=comp.origin,
            )


@rule("unconnected-output", surface="circuit", severity="error", structural=True)
def check_unconnected_output(ctx: "LintContext") -> Iterable[Diagnostic]:
    """An output pin of a non-checker primitive is not connected."""
    for comp in ctx.circuit.iter_components():
        for pin in comp.prim.outputs:
            if pin not in comp.pins:
                yield diag(
                    f"output pin {pin!r} is not connected",
                    component=comp.name,
                    origin=comp.origin,
                )


@rule("inverted-output", surface="circuit", severity="error", structural=True)
def check_inverted_output(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A component output is connected through a complement marker."""
    for comp in ctx.circuit.iter_components():
        for pin, conn in comp.output_pins():
            if conn.invert:
                yield diag(
                    f"output pin {pin!r} may not be inverted at the net",
                    component=comp.name,
                    origin=comp.origin,
                )


@rule("output-directives", surface="circuit", severity="error", structural=True)
def check_output_directives(ctx: "LintContext") -> Iterable[Diagnostic]:
    """An evaluation-directive string is written on an output connection."""
    for comp in ctx.circuit.iter_components():
        for pin, conn in comp.output_pins():
            if conn.directives:
                yield diag(
                    f"evaluation directives belong on inputs, not output {pin!r}",
                    component=comp.name,
                    origin=comp.origin,
                )


@rule("multiple-drivers", surface="circuit", severity="error", structural=True)
def check_multiple_drivers(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A net (after synonym resolution) is driven by more than one output."""
    for rep, drivers in ctx.index.drivers.items():
        if len(drivers) > 1:
            names = ", ".join(f"{comp.name}.{pin}" for comp, pin, _conn in drivers)
            yield diag(
                f"net has {len(drivers)} drivers ({names}); wired logic must "
                "be modelled with an explicit gate",
                net=rep.name,
                origin=rep.origin,
            )


@rule("driven-clock", surface="circuit", severity="warning", structural=True)
def check_driven_clock(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A clock-asserted signal is also driven by logic (assertion wins)."""
    for rep, drivers in ctx.index.drivers.items():
        if drivers and rep.assertion is not None and rep.assertion.kind.is_clock:
            yield diag(
                "clock-asserted signal is also driven by logic; the "
                "assertion value wins and the driver is ignored",
                net=rep.name,
                origin=rep.origin,
            )


@rule("unused-case-signal", surface="circuit", severity="warning", structural=True)
def check_unused_case_signal(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A case-analysis assignment names a signal no primitive reads."""
    circuit = ctx.circuit
    referenced = set(ctx.index.drivers) | set(ctx.index.loads)
    seen: set[str] = set()
    for case in circuit.cases:
        for name in case:
            net = circuit.nets.get(name)
            if net is None or name in seen:
                continue
            if circuit.find(net) not in referenced:
                seen.add(name)
                yield diag(
                    "case-analysis signal is not referenced by any primitive",
                    net=name,
                    origin=net.origin,
                )


# ---------------------------------------------------------------------------
# static predictions of runtime pathologies
# ---------------------------------------------------------------------------


def _strongly_connected(
    nodes: list[Component], succ: dict[Component, list[Component]]
) -> Iterator[list[Component]]:
    """Iterative Tarjan SCC over the combinational component graph."""
    index: dict[Component, int] = {}
    low: dict[Component, int] = {}
    on_stack: set[Component] = set()
    stack: list[Component] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        work: list[tuple[Component, Iterator[Component]]] = []
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(succ.get(root, ()))))
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(succ.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: list[Component] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member is node:
                        break
                yield scc


@rule("combinational-loop", surface="circuit", severity="error")
def check_combinational_loop(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A feedback path contains no register or latch (section 2.9).

    Statically predicts the fixed point's ``OscillationError``: synchronous
    sequential systems must contain a clocked element in every feedback
    path (section 1.2.2).  Reported per loop, not per member.
    """
    circuit, index = ctx.circuit, ctx.index
    nodes = [c for c in circuit.iter_components() if _is_combinational(c)]
    succ: dict[Component, list[Component]] = {}
    for comp in nodes:
        outs: list[Component] = []
        for _pin, conn in comp.output_pins():
            for load, _p, _c in index.loads.get(circuit.find(conn.net), ()):
                if _is_combinational(load):
                    outs.append(load)
        succ[comp] = outs
    for scc in _strongly_connected(nodes, succ):
        if len(scc) == 1 and scc[0] not in succ.get(scc[0], ()):
            continue  # trivial SCC, no self-loop
        members = [c.name for c in reversed(scc)]
        shown = " -> ".join(members[:8]) + (" -> ..." if len(members) > 8 else "")
        first = min(scc, key=lambda c: c.name)
        yield diag(
            f"combinational loop with no registered cut: {shown} "
            "(the fixed point will oscillate, section 2.9)",
            component=first.name,
            origin=first.origin,
        )


def _effective_letter(
    circuit: Circuit,
    index: "CircuitIndex",
    conn: Connection,
    max_hops: int = 32,
) -> str:
    """The directive letter the engine would apply at this gate input.

    Mirrors ``Engine._directive_letter`` statically: a string written at
    the connection supplies its first letter; otherwise a string written
    upstream rides the waveform, one letter consumed per gate level, and
    we walk the single-driver chain back to find it.  Returns ``""`` when
    no letter (or no statically determinable letter) reaches the input.
    """
    if conn.directives:
        return conn.directives[0]
    net = circuit.find(conn.net)
    for hops in range(1, max_hops + 1):
        drivers = index.drivers.get(net, [])
        if len(drivers) != 1:
            return ""
        driver, _pin, _conn = drivers[0]
        if not _is_gate(driver):
            return ""  # eval strings do not ride through storage elements
        strings = [c.directives for _p, c in driver.input_pins() if c.directives]
        if strings:
            for s in strings:
                if len(s) > hops:
                    return s[hops]
            return ""
        inputs = driver.input_pins()
        if len(inputs) != 1:
            return ""  # several undirected inputs: source is ambiguous
        net = circuit.find(inputs[0][1].net)
    return ""


def _trace_clock(
    circuit: Circuit,
    index: "CircuitIndex",
    conn: Connection,
    max_hops: int = 32,
) -> Net | None:
    """The clock-asserted net transitively feeding this input, if any.

    The engine works on waveforms, so a clock arriving through a buffer or
    inverter chain is still a clock at the gating gate; this walks back
    through single-input gate stages to find the asserted source.
    """
    net = circuit.find(conn.net)
    for _hop in range(max_hops + 1):
        if net.assertion is not None and net.assertion.kind.is_clock:
            return net
        drivers = index.drivers.get(net, [])
        if len(drivers) != 1:
            return None
        driver, _pin, _conn = drivers[0]
        if not _is_gate(driver):
            return None
        inputs = driver.input_pins()
        if len(inputs) != 1:
            return None  # re-converging logic: not pure clock distribution
        net = circuit.find(inputs[0][1].net)
    return None


@rule("gated-clock", surface="circuit", severity="error")
def check_gated_clock(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A clock is gated by logic without the ``&A``/``&H`` stability directive.

    The Figure 1-5 hazard: without the directive the Verifier folds the
    gating logic's worst case into the clock, and — worse — never checks
    that the gating inputs are stable while the clock pulse passes, so a
    glitching enable goes unreported.
    """
    circuit, index = ctx.circuit, ctx.index
    for comp in circuit.iter_components():
        if comp.prim.family not in ("and", "or"):
            continue
        inputs = comp.input_pins()
        if len(inputs) < 2:
            continue
        for _pin, conn in inputs:
            clock = _trace_clock(circuit, index, conn)
            if clock is None:
                continue
            if _effective_letter(circuit, index, conn) not in _STABILITY:
                yield diag(
                    f"clock {clock.name!r} is gated by {comp.prim.display} logic "
                    "without an &A/&H stability directive (the Figure 1-5 "
                    "hazard: gating inputs are never checked for stability)",
                    component=comp.name,
                    net=clock.name,
                    origin=comp.origin,
                )


@rule("short-directive", surface="circuit", severity="warning")
def check_short_directive(ctx: "LintContext") -> Iterable[Diagnostic]:
    """An evaluation-directive string is shorter than the gate depth it rides.

    Each level of gating consumes one letter (section 2.6); when the string
    runs out, deeper gates silently fall back to worst-case evaluation and
    the precision the designer asked for never reaches them (section 2.8).
    """
    circuit, index = ctx.circuit, ctx.index
    memo: dict[Component, int] = {}

    def downstream_depth(comp: Component, active: set[Component]) -> int:
        """Gate levels below ``comp`` that would each consume a letter."""
        if comp in memo:
            return memo[comp]
        if comp in active:
            return 0  # cycle: combinational-loop reports it separately
        active.add(comp)
        depth = 0
        for _pin, conn in comp.output_pins():
            for load, _p, _c in index.loads.get(circuit.find(conn.net), ()):
                if _is_gate(load):
                    depth = max(depth, 1 + downstream_depth(load, active))
        active.discard(comp)
        memo[comp] = depth
        return depth

    for comp in circuit.iter_components():
        if not _is_gate(comp):
            continue
        for pin, conn in comp.input_pins():
            if not conn.directives:
                continue
            need = 1 + downstream_depth(comp, set())
            if len(conn.directives) < need:
                yield diag(
                    f"directive string '&{conn.directives}' on {pin} covers "
                    f"{len(conn.directives)} level(s) of gating but the path "
                    f"through {comp.name} runs {need} levels deep; deeper "
                    "gates fall back to worst-case evaluation (section 2.6)",
                    component=comp.name,
                    net=conn.net.name,
                    origin=comp.origin,
                )


@rule("case-on-clock", surface="circuit", severity="warning")
def check_case_on_clock(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A case assignment targets a signal that can never be STABLE.

    Case analysis replaces a signal's STABLE values with the case constant
    (section 2.7); a clock-asserted signal is pinned to 0/1 edges and never
    takes the value STABLE, so the assignment silently does nothing.
    """
    circuit = ctx.circuit
    seen: set[str] = set()
    for case in circuit.cases:
        for name in case:
            if name in seen:
                continue
            net = circuit.nets.get(name)
            if net is None:
                continue
            rep = circuit.find(net)
            if rep.assertion is not None and rep.assertion.kind.is_clock:
                seen.add(name)
                yield diag(
                    f"case assignment to {name!r} can never apply: the signal "
                    "carries a clock assertion and is never STABLE "
                    "(section 2.7 maps STABLE to the case constant)",
                    net=name,
                    origin=rep.origin,
                )


@rule("unasserted-input", surface="circuit", severity="warning")
def check_unasserted_input(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A primary input carries no assertion (assumed stable, section 2.5).

    The verifier takes such signals to be always stable — optimistic for an
    input that in reality transitions — and lists them in the special
    cross-reference.  Lint surfaces the same list before the run.
    """
    circuit, index = ctx.circuit, ctx.index
    case_reps = {
        circuit.find(circuit.nets[name])
        for case in circuit.cases
        for name in case
        if name in circuit.nets
    }
    for rep in circuit.representatives():
        if rep in index.drivers or rep.assertion is not None:
            continue
        if rep in case_reps or rep.is_case_signal:
            continue  # case analysis supplies the value deliberately
        if rep.base_name.upper() in _SUPPLY_NAMES:
            continue
        if rep not in index.loads:
            continue
        yield diag(
            f"input {rep.name!r} has no assertion; the verifier will assume "
            "it is always stable and list it in the cross-reference "
            "(section 2.5)",
            net=rep.name,
            origin=rep.origin,
        )


@rule("conflicting-assertions", surface="circuit", severity="error")
def check_conflicting_assertions(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A synonym chain aliases signals carrying different assertions.

    Synonym resolution keeps one representative assertion (Pass 1); when
    two aliased names assert different timing, the loser is silently
    discarded — a possible signal change becomes invisible, violating the
    worst-case soundness rule.
    """
    circuit = ctx.circuit
    classes: dict[Net, list[Net]] = {}
    for net in circuit.nets.values():
        classes.setdefault(circuit.find(net), []).append(net)
    for rep, members in classes.items():
        by_text: dict[str, Net] = {}
        for net in members:
            if net.assertion is not None:
                by_text.setdefault(net.assertion.text, net)
        if len(by_text) > 1:
            names = ", ".join(sorted(n.name for n in by_text.values()))
            yield diag(
                f"synonym chain aliases conflicting assertions ({names}); "
                f"only {rep.name!r}'s assertion is honoured and the others "
                "are silently discarded",
                net=rep.name,
                origin=rep.origin,
            )


@rule("assertion-mismatch", surface="circuit", severity="warning")
def check_assertion_mismatch(ctx: "LintContext") -> Iterable[Diagnostic]:
    """One base name is used with two different assertions.

    The assertion is part of the signal name (section 2.5), so
    ``"CLK .P2-3"`` and ``"CLK .P4-5"`` are *distinct, unconnected* signals
    — almost always a typo rather than intent.
    """
    circuit = ctx.circuit
    by_base: dict[str, dict[str, Net]] = {}
    for net in circuit.nets.values():
        if net.assertion is not None:
            by_base.setdefault(net.base_name, {}).setdefault(
                net.assertion.text, net
            )
    for base, group in by_base.items():
        if len(group) < 2:
            continue
        nets = list(group.values())
        if len({circuit.find(n) for n in nets}) == 1:
            continue  # aliased together: conflicting-assertions reports it
        names = ", ".join(sorted(n.name for n in nets))
        first = min(nets, key=lambda n: n.name)
        yield diag(
            f"base name {base!r} is used with {len(group)} different "
            f"assertions ({names}); these are distinct, unconnected signals "
            "because the assertion is part of the name (section 2.5)",
            net=first.name,
            origin=first.origin,
        )


@rule("skewed-pulse-check", surface="circuit", severity="warning")
def check_skewed_pulse_check(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A pulse-width check watches a non-precision clock (false-error risk).

    The ±5 ns default skew of a ``.C`` assertion folds into every pulse the
    ``MIN PULSE WIDTH`` checker sees, shortening it from both ends — the
    always-fold false-error mechanism of section 2.8.  Trim the clock
    (``.P``) or state an explicit skew.
    """
    circuit = ctx.circuit
    for comp in circuit.iter_components():
        if comp.prim.name != "MIN_PULSE_WIDTH":
            continue
        conn = comp.pins.get("I")
        if conn is None:
            continue
        rep = circuit.find(conn.net)
        a = rep.assertion
        if a is None or a.kind is not AssertionKind.CLOCK or a.skew_ns is not None:
            continue
        yield diag(
            f"minimum-pulse-width check on {rep.name!r}, a non-precision "
            "(.C) clock: the default ±5 ns skew folds into every pulse and "
            "can produce false errors (section 2.8); use a .P assertion or "
            "an explicit skew",
            component=comp.name,
            net=rep.name,
            origin=comp.origin,
        )


@rule("dead-net", surface="circuit", severity="info")
def check_dead_net(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A driven net is never read by any primitive (dead after Pass 2).

    Informational: top-level outputs legitimately have no on-chip loads,
    but inside a large expanded design a dead net usually marks a macro
    wired to the wrong signal.
    """
    circuit, index = ctx.circuit, ctx.index
    case_reps = {
        circuit.find(circuit.nets[name])
        for case in circuit.cases
        for name in case
        if name in circuit.nets
    }
    for rep in circuit.representatives():
        if rep not in index.drivers or rep in index.loads:
            continue
        if rep.assertion is not None or rep in case_reps:
            continue  # assertion checks / case analysis still read it
        yield diag(
            "net is driven but never read (dead after Pass 2)",
            net=rep.name,
            origin=rep.origin,
        )
