"""Circuit-surface lint rules fed by the static timing analysis.

These rules consume :mod:`repro.sta` — the dataflow windows, clock-domain
inference and static slack — instead of looking at the netlist directly.
They run on the same circuit surface as the structural rules but share one
lazily-computed :class:`~repro.sta.StaAnalysis` through ``ctx.sta``; on a
circuit too malformed to analyze the family stands down (the structural
rules already carry the errors).

Severity policy: negative static slack is an *error* (a conservative bound
says the guard can be violated); domain findings are *warnings* (hazards
the event-driven verifier cannot articulate — it would only report the
downstream setup failure); feedback widening is *info* (the analysis
telling you where its answer went vacuous, not a design defect).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .diagnostics import Diagnostic, diag
from .registry import rule

if TYPE_CHECKING:  # pragma: no cover
    from .runner import LintContext


@rule("sta.negative-slack", surface="circuit", severity="error")
def check_negative_slack(ctx: "LintContext") -> Iterable[Diagnostic]:
    """Static setup/hold slack at a checker is negative."""
    sta = ctx.sta
    if sta is None:
        return
    for rec in sta.slack:
        if rec.slack_ps is None or rec.slack_ps >= 0:
            continue
        yield diag(
            f"static arrival windows of '{rec.signal}' reach "
            f"{-rec.slack_ps} ps into the setup/hold guard of clock "
            f"'{rec.clock}' (setup {rec.setup_ps} ps, hold {rec.hold_ps} ps)",
            component=rec.component,
            net=rec.signal,
            origin=rec.origin,
        )


@rule("sta.clock-domain-crossing", surface="circuit", severity="warning")
def check_clock_domain_crossing(ctx: "LintContext") -> Iterable[Diagnostic]:
    """Data crosses between clock domains without a synchronizer."""
    sta = ctx.sta
    if sta is None:
        return
    for crossing in sta.domains.crossings:
        if crossing.synchronized:
            continue
        foreign = ", ".join(sorted(crossing.foreign_roots))
        yield diag(
            f"data on '{crossing.data_net}' launched by clock(s) {foreign} "
            f"is captured by '{crossing.clock_net}' storage with no "
            "synchronizer stage",
            component=crossing.component,
            net=crossing.data_net,
            origin=crossing.origin,
        )


@rule("sta.unclocked-storage", surface="circuit", severity="warning")
def check_unclocked_storage(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A register or latch whose clock never changes."""
    sta = ctx.sta
    if sta is None:
        return
    for entry in sta.domains.storage:
        if not entry.unclocked:
            continue
        yield diag(
            f"{entry.prim} clock '{entry.clock_net}' traces to no asserted "
            "clock and its static change windows are empty — the element "
            "can never capture",
            component=entry.component,
            net=entry.clock_net,
            origin=entry.origin,
        )


@rule("sta.fmax", surface="circuit", severity="warning")
def check_fmax_binding_path(ctx: "LintContext") -> Iterable[Diagnostic]:
    """The check that limits Fmax sits on an unconstrained or CDC path.

    Solves the static closed form for the fastest clock period
    (:mod:`repro.sta.parametric`) and traces the binding check's critical
    path backward.  A path that ends on no assertion at all, or that dies
    at a feedback cut, means the reported Fmax rests on a vacuous or
    missing constraint; a binding check that is also a clock-domain
    crossing means "speeding up the clock" is gated by an asynchronous
    hand-off, not a timing path.
    """
    sta = ctx.sta
    if sta is None:
        return
    from ..sta.parametric import solve_static_fmax, trace_witness

    try:
        static = solve_static_fmax(ctx.circuit, constraints=ctx.sdc)
    except Exception:
        return
    if not static.period_limited or static.period_ps is None:
        return
    rec = static.binding
    if rec is None:
        return
    terminal = ""
    try:
        _, terminal = trace_witness(
            ctx.circuit, None, ctx.sdc, static.period_ps, rec
        )
    except Exception:
        pass
    if terminal in ("unconstrained", "feedback-cut"):
        why = (
            "ends on a signal with no assertion"
            if terminal == "unconstrained"
            else "dies at a combinational feedback cut (vacuous windows)"
        )
        yield diag(
            f"the Fmax-binding check (min period {static.period_ps} ps, "
            f"data '{rec.signal}') sits on a critical path that {why} — "
            "the static Fmax bound rests on a missing constraint",
            component=rec.component,
            net=rec.signal,
            origin=rec.origin,
        )
    # The binding record names the checker; a crossing names the capture
    # storage element — they meet on the guarded data net.
    crossing = next(
        (
            c
            for c in sta.domains.crossings
            if not c.synchronized
            and (c.data_net == rec.signal or c.component == rec.component)
        ),
        None,
    )
    if crossing is not None:
        foreign = ", ".join(sorted(crossing.foreign_roots))
        yield diag(
            f"the Fmax-binding check (min period {static.period_ps} ps) "
            f"guards a clock-domain crossing from {foreign} — the period "
            "bound is limited by an asynchronous hand-off, not a timing "
            "path",
            component=rec.component,
            net=rec.signal,
            origin=rec.origin,
        )


@rule("sta.window-overflow", surface="circuit", severity="info")
def check_window_overflow(ctx: "LintContext") -> Iterable[Diagnostic]:
    """Feedback widened a net's arrival window to the whole period."""
    sta = ctx.sta
    if sta is None:
        return
    for cut in sta.windows.feedback:
        yield diag(
            f"combinational feedback through {cut.prim} widened "
            f"'{cut.net}' to the full period; static slack bounds "
            "downstream of this cut are vacuous",
            component=cut.component,
            net=cut.net,
            origin=cut.origin,
        )
