"""Diagnostic records produced by the static design-rule analyzer.

A :class:`Diagnostic` is one finding of one rule: a severity, a message,
and — whenever the offending construct came from a ``.scald`` source — the
``file:line`` span recorded by the parser and threaded through macro
expansion.  Diagnostics are plain data so the text and JSON reporters in
``repro.reporting`` can render them without knowing anything about rules.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Severity levels, most severe first.  ``error`` means the construct will
#: break (or silently corrupt) a verification run; ``warning`` marks a
#: latent hazard the runtime engine cannot see; ``info`` is advisory.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule.

    Attributes:
        rule: the registry identifier of the rule that fired (or the
            pipeline pseudo-rules ``syntax-error`` / ``expand-error``).
        severity: ``error``, ``warning`` or ``info``.
        message: human-readable description of the problem.
        file: source file the construct came from, or ``""`` for circuits
            built directly through the Python API.
        line: 1-based source line, or 0 when unknown.
        component: offending component instance name, if any.
        net: offending signal name, if any.
    """

    rule: str
    severity: str
    message: str
    file: str = ""
    line: int = 0
    component: str | None = None
    net: str | None = None

    def location(self) -> str:
        """``file:line`` when both are known, else ``file``, else ``""``."""
        if self.file and self.line:
            return f"{self.file}:{self.line}"
        return self.file

    def __str__(self) -> str:
        loc = self.location()
        subject = self.component or self.net
        return (
            (f"{loc}: " if loc else "")
            + f"{self.severity}[{self.rule}]: {self.message}"
            + (f" [{subject}]" if subject else "")
        )

    def to_dict(self) -> dict[str, object]:
        """A JSON-serializable view (used by the JSON reporter)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "component": self.component,
            "net": self.net,
        }


def diag(
    message: str,
    *,
    file: str = "",
    line: int = 0,
    component: str | None = None,
    net: str | None = None,
    origin: tuple[str, int] | None = None,
) -> Diagnostic:
    """Build a diagnostic *finding* inside a rule body.

    Rule functions leave ``rule`` and ``severity`` blank; the runner stamps
    them from the registry entry (honouring per-rule severity overrides) so
    rule code cannot drift out of sync with its registration.  ``origin``
    is the ``(file, line)`` provenance tuple carried by components and nets.
    """
    if origin is not None:
        file, line = file or origin[0], line or origin[1]
    return Diagnostic(
        rule="", severity="", message=message,
        file=file, line=line, component=component, net=net,
    )
