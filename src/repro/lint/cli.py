"""Command-line entry point: ``scald-lint design.scald [...]``.

Static design-rule analysis without running the verifier.  Exit status: 0
when no errors were found (``--strict`` also counts warnings), 1 when the
design has findings, 2 on usage errors.  Parse and expansion failures are
reported as diagnostics, not tracebacks.

With ``--json`` (or ``--format json``) stdout carries *only* JSON — one
object for a single design, an array for several — and every
human-readable line moves to stderr (the ``scald-sta --json`` envelope).
``--sdc FILE`` resolves an SDC-subset constraint file against each design
and runs the ``sdc.*`` rule family over its findings.
"""

from __future__ import annotations

import argparse
import sys

from .registry import LintConfig, all_rules
from .runner import LintResult, lint_path


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scald-lint",
        description="static design-rule analysis for SCALD sources",
    )
    parser.add_argument(
        "designs", nargs="*", metavar="DESIGN",
        help="one or more .scald source files",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="shorthand for --format json; stdout stays pure JSON",
    )
    parser.add_argument(
        "--sdc", metavar="FILE", default=None,
        help="resolve an SDC-subset constraint file against each design "
        "and lint it (the sdc.* rule family)",
    )
    parser.add_argument(
        "--disable", metavar="RULE[,RULE]", action="append", default=[],
        help="disable the named rules for this run",
    )
    parser.add_argument(
        "--select", metavar="RULE[,RULE]", action="append", default=[],
        help="run only the named rules (--disable still wins on overlap)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings too, not just errors",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _rule_catalogue() -> str:
    rows = []
    for r in all_rules():
        marker = "*" if r.structural else " "
        rows.append(f"{r.id:24s} {r.severity:8s} {r.surface:8s}{marker} {r.doc}")
    rows.append("")
    rows.append("(* = structural rule, also enforced by the verifier at run time)")
    return "\n".join(rows)


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.list_rules:
        print(_rule_catalogue())
        return 0
    if not args.designs:
        print("scald-lint: no design files given", file=sys.stderr)
        return 2

    def _split(chunks: list[str]) -> frozenset[str]:
        return frozenset(
            name.strip()
            for chunk in chunks
            for name in chunk.split(",")
            if name.strip()
        )

    disabled = _split(args.disable)
    selected = _split(args.select) if args.select else None
    known = {r.id for r in all_rules()}
    unknown = (disabled | (selected or frozenset())) - known
    if unknown:
        print(
            f"scald-lint: unknown rule(s): {', '.join(sorted(unknown))} "
            "(see --list-rules)",
            file=sys.stderr,
        )
        return 2
    config = LintConfig(disabled=disabled, selected=selected)

    from ..reporting.lintfmt import lint_doc, lint_text

    if args.json:
        args.format = "json"
    json_mode = args.format == "json"

    status = 0
    docs = []
    for path in args.designs:
        try:
            result = lint_path(path, config, sdc_path=args.sdc)
        except OSError as exc:
            print(f"scald-lint: {exc}", file=sys.stderr)
            return 2
        if json_mode:
            docs.append(lint_doc(result))
            print(lint_text(result), file=sys.stderr)
        else:
            if len(args.designs) > 1:
                print(f"== {path} ==")
            print(lint_text(result))
        status = max(status, result.exit_code(strict=args.strict))
    if json_mode:
        import json

        payload = docs[0] if len(docs) == 1 else docs
        print(json.dumps(payload, indent=2, sort_keys=True))
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
