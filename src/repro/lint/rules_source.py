"""Source-surface lint rules: checks over the parsed ``.scald`` AST.

These run before macro expansion, so they can report problems with exact
``file:line`` spans even when expansion itself would fail — the same
pre-evaluation discipline the thesis's Macro Expander applied when it
"checks the design for syntax errors" (section 3.3.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from ..hdl.expr import ExpressionError, evaluate_int
from ..hdl.parser import Design, PrimStmt, UseStmt
from ..netlist.primitives import lookup
from .diagnostics import Diagnostic, diag
from .registry import rule

if TYPE_CHECKING:  # pragma: no cover
    from .runner import LintContext


def _iter_stmts(design: Design) -> Iterator[PrimStmt | UseStmt]:
    """Every prim/use statement: top level first, then macro bodies."""
    yield from design.top
    for macro in design.macros.values():
        yield from macro.body


@rule("unknown-primitive", surface="source", severity="error")
def check_unknown_primitive(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A ``prim`` statement names a primitive outside the fixed vocabulary."""
    for stmt in _iter_stmts(ctx.design):
        if not isinstance(stmt, PrimStmt):
            continue
        try:
            lookup(stmt.prim)
        except KeyError:
            yield diag(
                f"unknown primitive {stmt.prim!r}",
                file=stmt.source_file,
                line=stmt.line,
                component=stmt.inst,
            )


@rule("unknown-macro", surface="source", severity="error")
def check_unknown_macro(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A ``use`` statement calls a macro that is never defined."""
    for stmt in _iter_stmts(ctx.design):
        if isinstance(stmt, UseStmt) and stmt.macro not in ctx.design.macros:
            yield diag(
                f"no macro named {stmt.macro!r}",
                file=stmt.source_file,
                line=stmt.line,
                component=stmt.inst,
            )


@rule("macro-width-mismatch", surface="source", severity="error")
def check_macro_width_mismatch(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A vector bound across a macro boundary differs from the declared width.

    Only bindings whose widths are statically computable are checked (a
    subscript written in terms of an enclosing macro's size parameter is
    left to expansion); what *is* reported carries the use site's span,
    which expansion-time errors cannot provide.
    """
    for stmt in _iter_stmts(ctx.design):
        if not isinstance(stmt, UseStmt):
            continue
        macro = ctx.design.macros.get(stmt.macro)
        if macro is None:
            continue  # unknown-macro reports this
        try:
            params = {
                name: evaluate_int(text, {}) for name, text in stmt.params
            }
        except ExpressionError:
            continue  # size parameter not a literal at this level
        declared: dict[str, int | None] = {}
        for pname, sub in macro.pin_decls:
            if sub is None:
                declared[pname] = 1
                continue
            try:
                lo = evaluate_int(sub[0], params)
                hi = evaluate_int(sub[1], params)
                declared[pname] = abs(hi - lo) + 1
            except ExpressionError:
                declared[pname] = None
        for formal, actual in stmt.bindings:
            want = declared.get(formal)
            if want is None or actual.subscript is None:
                continue
            try:
                lo = evaluate_int(actual.subscript[0], {})
                hi = evaluate_int(actual.subscript[1], {})
            except ExpressionError:
                continue
            got = abs(hi - lo) + 1
            if got != want:
                yield diag(
                    f"{formal!r} of macro {stmt.macro!r} is {want} bits wide "
                    f"but is bound to {got} bits",
                    file=stmt.source_file,
                    line=stmt.line,
                    component=stmt.inst,
                    net=actual.name,
                )


@rule("unused-macro", surface="source", severity="info")
def check_unused_macro(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A macro is defined but never called (dead after Pass 2).

    Informational only: a pure library file (no top-level statements, like
    ``library/scald/ecl10k.scald``) legitimately defines macros for other
    designs to ``include``.
    """
    if not ctx.design.top:
        return  # library file: every macro is an export, not dead code
    used = {
        stmt.macro for stmt in _iter_stmts(ctx.design) if isinstance(stmt, UseStmt)
    }
    # Macros pulled in from an ``include``d library are a palette, not dead
    # code: only macros defined alongside the design's own statements count.
    own_files = {stmt.source_file for stmt in ctx.design.top}
    for macro in ctx.design.macros.values():
        if macro.source_file not in own_files:
            continue
        if macro.name not in used:
            yield diag(
                f"macro {macro.name!r} is defined but never used",
                file=macro.source_file,
                line=macro.line,
            )
