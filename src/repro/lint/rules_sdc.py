"""Lint rules over a resolved SDC constraint file (the ``sdc`` surface).

The constraint front-end (:mod:`repro.constraints`) is total: parsing and
resolution never raise on bad input, they accumulate findings with file and
line provenance.  These rules lift those findings into the one diagnostics
pipeline so ``scald-lint design.scald --sdc design.sdc`` reports constraint
problems exactly like design problems — same formatting, same ``--strict``
behaviour, same suppression pragmas (``# scald: disable=sdc.unresolved-pin``
works inside the ``.sdc`` file itself).

The family only runs when the lint context carries a resolved
:class:`~repro.constraints.ConstraintSet` (``ctx.sdc``); without ``--sdc``
every rule here stands down.

Severity policy mirrors the resolver's: findings that mean a constraint was
*dropped or malformed* (bad syntax, a pattern matching nothing, an
uncertainty wider than the period) are errors — a silently ignored
constraint is an unsound verification run; advisory findings (unknown
commands skipped, period disagreement resolved in the design's favour,
conflicting specs resolved by documented precedence) are warnings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .diagnostics import Diagnostic, diag
from .registry import rule

if TYPE_CHECKING:  # pragma: no cover
    from .runner import LintContext


def _reemit(ctx: "LintContext", rule_id: str) -> Iterable[Diagnostic]:
    """Re-emit the constraint findings recorded under ``rule_id``."""
    for f in ctx.sdc.findings:
        if f.rule != rule_id:
            continue
        yield diag(
            f.message,
            file=f.file,
            line=f.line,
            component=f.component,
            net=f.net,
        )


@rule("sdc.syntax-error", surface="sdc", severity="error")
def check_syntax_error(ctx: "LintContext") -> Iterable[Diagnostic]:
    """An SDC command is malformed (bad flag, value, or argument count)."""
    return _reemit(ctx, "sdc.syntax-error")


@rule("sdc.unknown-command", surface="sdc", severity="warning")
def check_unknown_command(ctx: "LintContext") -> Iterable[Diagnostic]:
    """An SDC command outside the supported subset was skipped."""
    return _reemit(ctx, "sdc.unknown-command")


@rule("sdc.unresolved-pin", surface="sdc", severity="error")
def check_unresolved_pin(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A constraint target pattern matches nothing in the design."""
    return _reemit(ctx, "sdc.unresolved-pin")


@rule("sdc.period-mismatch", surface="sdc", severity="warning")
def check_period_mismatch(ctx: "LintContext") -> Iterable[Diagnostic]:
    """``create_clock -period`` disagrees with the design's period."""
    return _reemit(ctx, "sdc.period-mismatch")


@rule("sdc.not-a-clock", surface="sdc", severity="warning")
def check_not_a_clock(ctx: "LintContext") -> Iterable[Diagnostic]:
    """A clock constraint targets a net with no clock assertion."""
    return _reemit(ctx, "sdc.not-a-clock")


@rule("sdc.conflicting-path", surface="sdc", severity="warning")
def check_conflicting_path(ctx: "LintContext") -> Iterable[Diagnostic]:
    """Two path constraints overlap; documented precedence resolved it."""
    return _reemit(ctx, "sdc.conflicting-path")


@rule("sdc.uncertainty-exceeds-period", surface="sdc", severity="error")
def check_uncertainty_exceeds_period(
    ctx: "LintContext",
) -> Iterable[Diagnostic]:
    """A clock uncertainty is as wide as the whole period."""
    return _reemit(ctx, "sdc.uncertainty-exceeds-period")


@rule("sdc.unconstrained-clock-root", surface="sdc", severity="warning")
def check_unconstrained_clock_root(
    ctx: "LintContext",
) -> Iterable[Diagnostic]:
    """An asserted clock root has no ``create_clock`` covering it."""
    sta = ctx.sta
    if sta is None:
        return
    constrained = {net.upper() for net in ctx.sdc.clock_nets.values()}
    constrained.update(name.upper() for name in ctx.sdc.clock_nets)
    for root in sta.domains.roots:
        if root.net.upper() in constrained:
            continue
        # Anchored at line 1 of the .sdc file: the finding is about what
        # the file is missing, and the anchor keeps it reachable by a
        # header suppression pragma.
        yield diag(
            f"clock root '{root.net}' is asserted in the design but has "
            f"no create_clock in {ctx.sdc.path}; its checkers run with "
            "unconstrained (thesis-default) guards",
            file=ctx.sdc.path,
            line=1,
            net=root.net,
        )
