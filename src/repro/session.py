"""Long-lived verification sessions with incremental re-verify.

The thesis's usage model is a designer iterating edit → verify → edit on
one large design; the engine, however, historically rebuilt every run
from scratch — intern table, memo caches, levelized ranks and stored
waveforms all died with the call.  A :class:`Session` owns that run-scoped
state explicitly and keeps it alive across runs:

* one expanded :class:`~repro.netlist.Circuit` (edited in place through
  the typed :mod:`repro.incremental` API),
* one persistent :class:`~repro.core.engine.Engine` holding the stored
  waveforms, the evaluation/prepared/checker memos and the levelized
  schedule,
* one session-owned :class:`~repro.core.waveform.InternTable`, so
  cross-run hash-consing is deterministic instead of riding on the
  garbage collector's treatment of a process-global weak table.

:meth:`Session.verify` is a full run (and :class:`TimingVerifier` is now
a thin wrapper that makes a one-shot session); :meth:`Session.reverify`
re-enters the fixed point from the converged state, seeding the worklist
from the edits' dirty cone and reusing every unchanged stored waveform —
with the static windows pass (~15x cheaper, ``BENCH_sta.json``) as an
optional instant pre-screen before the engine renders the authoritative
verdict.  Byte-identity with a from-scratch run is the correctness gate
(:func:`repro.incremental.assert_incremental_equivalent`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .core.config import VerifyConfig
from .core.engine import Engine
from .core.verifier import (
    CaseResult,
    PhaseTimes,
    VerificationResult,
)
from .core.violations import CheckReport
from .core.waveform import InternTable
from .incremental import ConstraintsEdit, Edit, PendingDirty
from .netlist.circuit import Circuit
from .netlist.validate import check as check_structure

__all__ = ["IncrementalResult", "Prescreen", "Session"]


@dataclass
class Prescreen:
    """The STA pre-screen's instant verdict, ahead of engine authority.

    ``ok`` is advisory (static analysis is conservative: positive static
    slack implies an engine-clean check, not the reverse); the engine
    result carried alongside is always the authority.  A check whose
    static window overflowed the period (or whose clock has no static
    edge) yields no slack claim at all; any such ``indeterminate`` check
    forces ``ok=False`` — declaring "clean" on no evidence would be the
    optimism the value algebra forbids.
    """

    ok: bool
    worst_slack_ps: int | None
    cdc_errors: int
    indeterminate: int
    seconds: float


@dataclass
class IncrementalResult:
    """One re-verification: the authoritative result plus reuse metadata."""

    result: VerificationResult
    #: False when the session fell back to a full run (first verification,
    #: or a re-verify requested with no prior converged state).
    incremental: bool
    prescreen: Prescreen | None = None

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def violations(self):
        return self.result.violations

    @property
    def stats(self):
        return self.result.stats


class Session:
    """One designer's edit-verify loop over one expanded circuit.

    Usage::

        session = Session.from_file("design.scald")
        first = session.verify()
        session.edit(WireDelayEdit("RF ADRS", (0.0, 6.0)))
        second = session.reverify()          # dirty cone only
        assert second.result.ok

    The session is not thread-safe; ``scald-serve`` wraps each one in a
    lock.
    """

    def __init__(
        self,
        circuit: Circuit,
        config: VerifyConfig | None = None,
        constraints=None,
        jobs: int = 1,
    ) -> None:
        self.circuit = circuit
        self.config = config or VerifyConfig()
        self.constraints = constraints
        self.intern_table = InternTable()
        self._engine: Engine | None = None
        self._dirty = PendingDirty()
        self._converged = False
        self._warnings: list | None = None
        #: Total verification runs (full + incremental) this session served.
        self.runs = 0
        #: Requested parallelism.  With ``jobs > 1`` the session owns a
        #: persistent :class:`repro.parallel.WorkerPool`: workers are
        #: forked lazily on the first pooled run and reused across
        #: verify/reverify calls, with edits and waveform digests (not
        #: circuits and snapshots) crossing the pipes.
        self.jobs = max(1, int(jobs or 1))
        self._pool = None
        if self.jobs > 1:
            from .parallel import WorkerPool

            self._pool = WorkerPool(self, self.jobs)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_file(
        cls,
        path: str,
        config: VerifyConfig | None = None,
        sdc: str | None = None,
        jobs: int = 1,
    ) -> "Session":
        """Expand a ``.scald`` source file into a fresh session."""
        from .hdl.expander import MacroExpander

        circuit = MacroExpander.from_file(path).expand()
        constraints = None
        if sdc is not None:
            from .constraints import load_constraints

            constraints = load_constraints(sdc, circuit)
        return cls(circuit, config, constraints=constraints, jobs=jobs)

    @classmethod
    def from_source(
        cls,
        source: str,
        config: VerifyConfig | None = None,
        sdc_source: str | None = None,
        name: str = "<session>",
        jobs: int = 1,
    ) -> "Session":
        """Expand ``.scald`` source text into a fresh session."""
        from .hdl.expander import MacroExpander

        circuit = MacroExpander.from_source(source, filename=name).expand()
        constraints = None
        if sdc_source is not None:
            from .constraints import parse_sdc, resolve

            commands, findings = parse_sdc(sdc_source, filename="<sdc>")
            constraints = resolve(
                commands, circuit, filename="<sdc>", parse_findings=findings
            )
        return cls(circuit, config, constraints=constraints, jobs=jobs)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def engine(self) -> Engine:
        """The persistent engine, built on first use."""
        if self._engine is None:
            self._engine = Engine(
                self.circuit,
                self.config,
                constraints=self.constraints,
                intern_table=self.intern_table,
            )
        return self._engine

    def edit(self, *edits: Edit) -> "Session":
        """Apply typed edits to the circuit, accumulating their dirt.

        Edits take effect immediately (``sta()``/``fmax()`` see them at
        once); the engine state is reconciled lazily by the next
        :meth:`reverify` or :meth:`verify`.  Returns the session for
        chaining.
        """
        for e in edits:
            if isinstance(e, ConstraintsEdit):
                self.constraints = e.load(self.circuit)
                if self._engine is not None:
                    self._engine.set_constraints(self.constraints)
            else:
                e.apply(self.circuit, self._dirty)
        if self._pool is not None:
            # Workers reconcile lazily too: the typed edits travel over
            # the pipes at the next pooled run (a ConstraintsEdit
            # re-resolves against the worker's own circuit copy).
            self._pool.queue_edits(edits)
        return self

    def close(self) -> None:
        """Release the worker pool, if any; the session stays usable.

        Outstanding lazy snapshots are materialized first, so results
        already returned remain complete.  A later pooled run restarts
        the pool transparently.
        """
        if self._pool is not None:
            self._pool.close()

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def verify(self) -> VerificationResult:
        """A full verification: serial, or over the warm worker pool.

        With ``jobs > 1`` the work is sharded over the session's
        persistent pool — by case block when there are several cases, by
        circuit partition when there is one — and the merged result is
        byte-identical to the serial run (unique fixed point; see
        ``repro.parallel``).  Small single-case circuits fall back to the
        serial path.
        """
        if self._pool is not None:
            return self._verify_pooled()
        return self._verify_serial()

    def _verify_serial(self) -> VerificationResult:
        """A full from-scratch verification on the persistent engine."""
        phases = PhaseTimes()

        t0 = time.perf_counter()
        warnings = check_structure(self.circuit)
        self._warnings = warnings
        engine = self.engine
        if self._dirty.topology:
            engine.rebuild_topology()
        self._dirty.clear()
        cases = self.circuit.cases or [{}]
        engine.initialize(cases[0])
        phases.build = time.perf_counter() - t0

        # Cross-reference generation: in the thesis this lists where every
        # signal is used; the part that matters to verification is the list
        # of signals assumed stable for lack of an assertion (section 2.5).
        t0 = time.perf_counter()
        xref = list(engine.xref_assumed_stable)
        phases.cross_reference = time.perf_counter() - t0

        t0 = time.perf_counter()
        report = CheckReport()
        case_results: list[CaseResult] = []
        for index, case in enumerate(cases):
            if index > 0:
                engine.apply_case(case)
            events = engine.run()
            report.extend(engine.check(case_index=index))
            case_results.append(
                CaseResult(
                    index=index,
                    assignments=dict(case),
                    waveforms=engine.snapshot(),
                    events=events,
                )
            )
        phases.verify = time.perf_counter() - t0

        result = self._package(report, case_results, xref, warnings, phases)
        self._converged = True
        self.runs += 1
        return result

    def reverify(self, prescreen: bool = True) -> IncrementalResult:
        """Re-verify after edits, re-entering the fixed point incrementally.

        Reuses every stored waveform outside the edits' dirty cone; the
        worklist starts from the directly dirtied primitives and event
        propagation walks the rest.  With ``prescreen=True`` the static
        windows pass runs first and its verdict is attached to the result
        (the engine remains the authority either way).  Falls back to a
        full :meth:`verify` when the session has no converged state yet.
        """
        if self.runs == 0 or (self._pool is None and not self._converged):
            return IncrementalResult(result=self.verify(), incremental=False)

        pre = self._run_prescreen() if prescreen else None

        if self._pool is not None and self._pool_viable():
            # Warm pooled re-verify: the shipped edits reconcile on each
            # worker's engine through the same incremental path serial
            # uses, so the reused pool is the incremental run.
            return IncrementalResult(
                result=self._verify_pooled(), incremental=True, prescreen=pre
            )
        if not self._converged:
            # Pool present but the design is too small to shard, and the
            # parent engine never converged: a full serial run.
            return IncrementalResult(
                result=self._verify_serial(), incremental=False, prescreen=pre
            )

        phases = PhaseTimes()
        t0 = time.perf_counter()
        # Structural validation inspects only pins/connections and
        # assertions; delay and parameter edits cannot change its verdict,
        # so the cached warnings stand unless an edit said otherwise.
        if (
            self._warnings is None
            or self._dirty.topology
            or self._dirty.structure
        ):
            self._warnings = check_structure(self.circuit)
        warnings = self._warnings
        engine = self.engine
        if self._dirty.topology:
            engine.rebuild_topology()
        engine.forget_connections(self._dirty.stale_connections)
        dirty_comps = list(self._dirty.components.values())
        self._dirty.clear()
        cases = self.circuit.cases or [{}]
        engine.incremental_begin(cases[0], dirty_comps)
        phases.build = time.perf_counter() - t0

        t0 = time.perf_counter()
        xref = list(engine.xref_assumed_stable)
        phases.cross_reference = time.perf_counter() - t0

        t0 = time.perf_counter()
        report = CheckReport()
        case_results: list[CaseResult] = []
        for index, case in enumerate(cases):
            if index > 0:
                engine.apply_case(case)
            events = engine.run()
            report.extend(engine.check(case_index=index))
            case_results.append(
                CaseResult(
                    index=index,
                    assignments=dict(case),
                    waveforms=engine.snapshot(),
                    events=events,
                )
            )
        phases.verify = time.perf_counter() - t0

        result = self._package(report, case_results, xref, warnings, phases)
        self.runs += 1
        return IncrementalResult(result=result, incremental=True, prescreen=pre)

    def _run_prescreen(self) -> Prescreen:
        """The static windows pass as an instant advisory verdict."""
        t0 = time.perf_counter()
        from .sta import analyze

        analysis = analyze(
            self.circuit, self.config, constraints=self.constraints
        )
        worst = min(
            (r.slack_ps for r in analysis.slack if r.slack_ps is not None),
            default=None,
        )
        indeterminate = sum(
            1 for r in analysis.slack if r.slack_ps is None and not r.waived
        )
        return Prescreen(
            ok=analysis.ok and not analysis.cdc_errors and not indeterminate,
            worst_slack_ps=worst,
            cdc_errors=len(analysis.cdc_errors),
            indeterminate=indeterminate,
            seconds=time.perf_counter() - t0,
        )

    def _package(
        self,
        report,
        case_results,
        xref,
        warnings,
        phases,
        stats=None,
        phases_cpu=None,
        pool=None,
    ):
        result = VerificationResult(
            circuit_name=self.circuit.name,
            report=report,
            cases=case_results,
            stats=stats if stats is not None else self._engine.stats,
            phases=phases,
            xref_assumed_stable=xref,
            structure_warnings=warnings,
            primitive_count=sum(
                1
                for c in self.circuit.iter_components()
                if not c.prim.is_checker
            ),
            config=self.config,
            phases_cpu=phases_cpu,
        )
        t0, c0 = time.perf_counter(), time.process_time()
        result.summary_listing()
        phases.summary = time.perf_counter() - t0
        if phases_cpu is not None:
            phases_cpu.summary = time.process_time() - c0
        if pool is not None:
            # Copied *after* the summary listing so a lazily fetched
            # case-0 snapshot shows up in the counters.
            result.pool = pool.stats.copy()
        return result

    # ------------------------------------------------------------------
    # pooled verification (repro.parallel)
    # ------------------------------------------------------------------

    def _structure_warnings(self) -> list:
        """Cached structural validation (same policy as serial reverify)."""
        if (
            self._warnings is None
            or self._dirty.topology
            or self._dirty.structure
        ):
            self._warnings = check_structure(self.circuit)
        return self._warnings

    def _pool_viable(self) -> bool:
        """Can the pool shard this run (several cases, or a splittable
        circuit)?  When not, the serial paths are the honest answer."""
        from .parallel import case_blocks, plan_partition

        cases = self.circuit.cases or [{}]
        if len(case_blocks(len(cases), self.jobs)) > 1:
            return True
        engine = self.engine
        if self._dirty.topology:
            engine.rebuild_topology()
        return plan_partition(self.circuit, engine, self.jobs) is not None

    def _verify_pooled(self) -> VerificationResult:
        from .parallel import case_blocks, plan_partition

        cases = self.circuit.cases or [{}]
        blocks = case_blocks(len(cases), self.jobs)
        if len(blocks) > 1:
            return self._pooled_blocks(cases, blocks)
        # One case: shard the circuit itself along rank boundaries.  The
        # planner needs current topology; leave the dirty flag for the
        # serial fallback (rebuilding twice is sound and cheap).
        engine = self.engine
        if self._dirty.topology:
            engine.rebuild_topology()
        plan = plan_partition(self.circuit, engine, self.jobs)
        if plan is None:
            return self._verify_serial()
        return self._pooled_partition(cases[0], plan)

    def _pooled_blocks(self, cases, blocks) -> VerificationResult:
        """Contiguous case blocks, one per warm worker (§2.7 case axis)."""
        from .core.engine import EngineStats
        from .parallel import LazySnapshot

        pool = self._pool
        phases, cpu = PhaseTimes(), PhaseTimes()
        t0, c0 = time.perf_counter(), time.process_time()
        warnings = self._structure_warnings()
        parent_build_wall = time.perf_counter() - t0
        parent_build_cpu = time.process_time() - c0

        parts = pool.run_blocks(cases, blocks)
        parts.sort(key=lambda p: p.start)

        phases.build = parent_build_wall + max(p.build_wall for p in parts)
        cpu.build = parent_build_cpu + sum(p.build_cpu for p in parts)
        phases.verify = max(p.verify_wall for p in parts)
        cpu.verify = sum(p.verify_cpu for p in parts)
        # The cross-reference is a property of initialization, not of any
        # case, so every worker computed the same list; take block 0's.
        xref = parts[0].xref_assumed_stable

        report = CheckReport()
        case_results: list[CaseResult] = []
        for k, part in enumerate(parts):
            for i, per_case in enumerate(part.violations):
                report.extend(per_case)
                index = part.start + i
                snap = LazySnapshot(
                    lambda k=k, index=index: pool.fetch_case(k, index)
                )
                pool.watch(snap)
                case_results.append(
                    CaseResult(
                        index=index,
                        assignments=part.assignments[i],
                        waveforms=snap,
                        events=part.events[i],
                    )
                )

        result = self._package(
            report,
            case_results,
            xref,
            warnings,
            phases,
            stats=EngineStats.merged(p.stats for p in parts),
            phases_cpu=cpu,
            pool=pool,
        )
        self.runs += 1
        return result

    def _pooled_partition(self, case, plan) -> VerificationResult:
        """One case sharded across the circuit's rank-group partitions.

        Workers converge their partitions exchanging boundary waveforms;
        the parent then *adopts* the union of the converged values — a
        fixed point of the whole circuit, hence (uniqueness) the serial
        fixed point — and runs the checking pass itself, so violations
        and listings are byte-identical to serial by construction.  The
        parent engine ends up converged, exactly as after a serial run.
        """
        from .core.engine import EngineStats

        pool = self._pool
        phases, cpu = PhaseTimes(), PhaseTimes()
        t0, c0 = time.perf_counter(), time.process_time()
        warnings = self._structure_warnings()
        engine = self.engine
        self._dirty.clear()  # workers reconcile their own copies
        engine.set_scope(None)
        engine.initialize(case)
        parent_build_wall = time.perf_counter() - t0
        parent_build_cpu = time.process_time() - c0

        t0 = time.perf_counter()
        xref = list(engine.xref_assumed_stable)
        phases.cross_reference = time.perf_counter() - t0

        finals = pool.run_partition(case, plan)

        t0, c0 = time.perf_counter(), time.process_time()
        for fin in finals:
            engine.adopt_values(fin.values)
            engine._gating.update(fin.gating)
        # The adopted union is the fixed point: re-evaluating any queued
        # component would store the value it already has, so the worklist
        # seeded by initialize/adoption is vacuous — drop it.
        engine._queue.clear()
        engine._heap.clear()
        engine._queued.clear()
        report = CheckReport()
        report.extend(engine.check(case_index=0))
        stats = EngineStats.merged(f.stats for f in finals)
        stats.events_by_case = [stats.events]
        engine.stats = stats
        case_results = [
            CaseResult(
                index=0,
                assignments=dict(case),
                waveforms=engine.snapshot(),
                events=stats.events,
            )
        ]
        adopt_wall = time.perf_counter() - t0
        adopt_cpu = time.process_time() - c0

        phases.build = parent_build_wall + max(f.build_wall for f in finals)
        cpu.build = parent_build_cpu + sum(f.build_cpu for f in finals)
        phases.verify = max(f.verify_wall for f in finals) + adopt_wall
        cpu.verify = sum(f.verify_cpu for f in finals) + adopt_cpu

        result = self._package(
            report,
            case_results,
            xref,
            warnings,
            phases,
            stats=stats,
            phases_cpu=cpu,
            pool=pool,
        )
        self._converged = True
        self.runs += 1
        return result

    # ------------------------------------------------------------------
    # static analyses over the session's (edited) circuit
    # ------------------------------------------------------------------

    def sta(self):
        """Static windows/domains/slack over the current circuit state."""
        from .sta import analyze

        return analyze(self.circuit, self.config, constraints=self.constraints)

    def fmax(self):
        """Analytic Fmax (period-affine windows) for the current state."""
        from .sta.parametric import solve_fmax

        return solve_fmax(
            self.circuit, self.config, constraints=self.constraints
        )
