"""Section-by-section verification (section 2.5.2).

One of the principal features of the approach: a large design is verified
by *modules*, each a logical section with user-specified assertions on every
interface signal.  "If no section of a design being verified has a timing
error and if all of the interface signals of all such sections have
consistent assertions on them, then the entire design must be free of
timing errors."  This is what let the S-1 team verify a design too large
for memory, and let each designer verify their section independently.

Assertions live inside signal names, so consistency means: every section
that references a given base signal name must spell the same assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .core.config import VerifyConfig
from .core.verifier import TimingVerifier, VerificationResult
from .netlist.circuit import Circuit


@dataclass(frozen=True)
class InterfaceIssue:
    """Inconsistent assertions on one interface signal."""

    base_name: str
    spellings: tuple[tuple[str, str], ...]  # (section, full signal name)

    def __str__(self) -> str:
        variants = ", ".join(f"{sec}: {name!r}" for sec, name in self.spellings)
        return (
            f"interface signal {self.base_name!r} has inconsistent "
            f"assertions across sections ({variants})"
        )


@dataclass
class ModularResult:
    """The outcome of verifying a design in sections."""

    sections: dict[str, VerificationResult] = field(default_factory=dict)
    interface_issues: list[InterfaceIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the *entire design* is known free of timing errors."""
        return not self.interface_issues and all(
            r.ok for r in self.sections.values()
        )

    @property
    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.sections.values())

    def report(self) -> str:
        lines = ["MODULAR VERIFICATION REPORT", ""]
        for name, result in self.sections.items():
            status = "clean" if result.ok else f"{len(result.violations)} violations"
            lines.append(f"  section {name}: {status}")
        if self.interface_issues:
            lines.append("")
            lines.append("  interface assertion inconsistencies:")
            for issue in self.interface_issues:
                lines.append(f"    {issue}")
        lines.append("")
        lines.append(
            "  whole design verified free of timing errors"
            if self.ok
            else "  whole design NOT verified"
        )
        return "\n".join(lines)


def check_interfaces(sections: dict[str, Circuit]) -> list[InterfaceIssue]:
    """Verify assertion consistency across sections, by base signal name.

    Only signals appearing in more than one section are interface signals;
    each must carry the same assertion text everywhere it appears.
    """
    spellings: dict[str, dict[str, set[str]]] = {}
    for section_name, circuit in sections.items():
        for net in circuit.nets.values():
            spellings.setdefault(net.base_name, {}).setdefault(
                net.name, set()
            ).add(section_name)
    issues: list[InterfaceIssue] = []
    for base, by_fullname in spellings.items():
        if len(by_fullname) <= 1:
            continue
        sections_seen = set().union(*by_fullname.values())
        if len(sections_seen) <= 1:
            continue  # an intra-section naming quirk, not an interface issue
        flat = tuple(
            sorted(
                (section, full)
                for full, secs in by_fullname.items()
                for section in secs
            )
        )
        issues.append(InterfaceIssue(base_name=base, spellings=flat))
    return issues


def verify_sections(
    sections: dict[str, Circuit],
    config: VerifyConfig | None = None,
    jobs: int = 1,
    constraints=None,
) -> ModularResult:
    """Verify each section independently and check interface consistency.

    ``constraints`` is either a mapping from section name to that
    section's resolved constraint set, or a single set applied to every
    section.  With ``jobs > 1`` the sections — independent circuits by
    construction — are verified one-per-worker in parallel processes; the
    merged result is identical to the serial one (see ``repro.parallel``),
    constraints included.
    """
    if jobs > 1:
        from .parallel import verify_sections_parallel

        return verify_sections_parallel(
            sections, config, jobs=jobs, constraints=constraints
        )
    result = ModularResult()
    for name, circuit in sections.items():
        section_constraints = (
            constraints.get(name)
            if isinstance(constraints, dict)
            else constraints
        )
        result.sections[name] = TimingVerifier(
            circuit, config, constraints=section_constraints
        ).verify()
    result.interface_issues = check_interfaces(sections)
    return result
