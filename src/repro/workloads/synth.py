"""Synthetic S-1-scale designs for the Chapter III execution statistics.

The thesis measured the Macro Expander and Timing Verifier on a major
portion of the S-1 Mark IIA: 6 357 MSI ECL-10K/100K chips expanding to
8 282 primitives of 22 types (1.3 primitives per chip, mean vector width
6.5 bits), roughly 97 709 two-input-gate equivalents and 1 803 136 memory
bits (Tables 3-1 and 3-2).  That design is not available, so this module
generates *deterministic* pipelined designs from the same chip vocabulary,
calibrated to the same shape: the chip-type mix is tuned so that primitives
per chip and mean width land near the published figures, and the result is
emitted as SCALD text so the measured pipeline — read, expand (two passes),
verify — exercises exactly the phases of Table 3-1.

The generated designs verify cleanly: register-to-register timing is chosen
so every setup/hold and pulse-width constraint is met, as the (debugged)
S-1 design's would be.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hdl.expander import ExpanderStats, MacroExpander
from ..netlist.circuit import Circuit

#: SCALD text of the chip library used by the generator — the Chapter III
#: components plus the small-gate family.  One ``use`` of a macro is one
#: *chip*; the macro bodies determine the primitive count per chip.
LIBRARY = """
macro "REG 100141" (SIZE);
  param "I"<0:SIZE-1>, "CK", "Q"<0:SIZE-1>;
  prim REG r (CLOCK="CK"/P, DATA="I"/P<0:SIZE-1>, OUT="Q"/P<0:SIZE-1>)
       delay=1.5:4.5 width=SIZE;
  prim "SETUP HOLD CHK" su (I="I"/P, CK="CK"/P) setup=2.5 hold=1.5 width=SIZE;
endmacro;

macro "REG RS 100141" (SIZE);
  param "I"<0:SIZE-1>, "CK", "RST", "Q"<0:SIZE-1>;
  prim "REG RS" r (CLOCK="CK"/P, DATA="I"/P<0:SIZE-1>, SET="ZERO"/M,
       RESET="RST"/P, OUT="Q"/P<0:SIZE-1>) delay=1.5:4.5 width=SIZE;
  prim "SETUP HOLD CHK" su (I="I"/P, CK="CK"/P) setup=2.5 hold=1.5 width=SIZE;
endmacro;

macro "LATCH 100130" (SIZE);
  param "I"<0:SIZE-1>, "EN", "Q"<0:SIZE-1>;
  prim LATCH l (ENABLE="EN"/P, DATA="I"/P<0:SIZE-1>, OUT="Q"/P<0:SIZE-1>)
       delay=1.0:3.5 width=SIZE;
  prim "SETUP HOLD CHK" su (I="I"/P, CK=-"EN"/P) setup=2.0 hold=1.0 width=SIZE;
endmacro;

macro "16W RAM 10145A" (SIZE);
  param "I"<0:SIZE-1>, "A"<0:3>, "CS", "WE", "O"<0:SIZE-1>;
  prim CHG dchg (I1="I"/P<0:SIZE-1>, OUT="DCHG"/M<0:SIZE-1>)
       delay=1.5:3.0 width=SIZE;
  prim CHG achg (I1="A"/P<0:3>, I2="CS"/P, I3="WE"/P, OUT="ACHG"/M<0:SIZE-1>)
       delay=3.0:6.0 width=SIZE;
  prim CHG outc (I1="DCHG"/M<0:SIZE-1>, I2="ACHG"/M<0:SIZE-1>,
       OUT="O"/P<0:SIZE-1>) width=SIZE;
  prim "SETUP HOLD CHK" dsu (I="I"/P, CK=-"WE"/P) setup=4.5 hold=-1.0 width=SIZE;
  prim "SETUP RISE HOLD FALL CHK" asu (I="A"/P, CK="WE"/P) setup=3.5 hold=1.0;
  prim "MIN PULSE WIDTH" mpw (I="WE"/P) min_high=4.0;
endmacro;

macro "MUX2 10158" (SIZE);
  param "S", "A"<0:SIZE-1>, "B"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim MUX2 m (S0="S"/P, I0="A"/P<0:SIZE-1>, I1="B"/P<0:SIZE-1>,
       OUT="Q"/P<0:SIZE-1>) delay=1.2:3.3 select_delay=0.3:1.2 width=SIZE;
endmacro;

macro "ALU 10181" (SIZE);
  param "A"<0:SIZE-1>, "B"<0:SIZE-1>, "S"<0:3>, "EN", "F"<0:SIZE-1>;
  prim CHG fn (I1="A"/P<0:SIZE-1>, I2="B"/P<0:SIZE-1>, I3="S"/P<0:3>,
       OUT="FN"/M<0:SIZE-1>) delay=2.5:7.0 width=SIZE;
  prim LATCH l (ENABLE="EN"/P, DATA="FN"/M<0:SIZE-1>, OUT="F"/P<0:SIZE-1>)
       delay=1.0:3.5 width=SIZE;
  prim "SETUP HOLD CHK" su (I="FN"/M, CK=-"EN"/P) setup=2.0 hold=1.0 width=SIZE;
endmacro;

macro "OR2 10101" (SIZE);
  param "A"<0:SIZE-1>, "B"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim OR g (I1="A"/P, I2="B"/P, OUT="Q"/P<0:SIZE-1>) delay=1.0:2.9 width=SIZE;
endmacro;

macro "AND2 10104" (SIZE);
  param "A"<0:SIZE-1>, "B"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim AND g (I1="A"/P, I2="B"/P, OUT="Q"/P<0:SIZE-1>) delay=1.0:2.9 width=SIZE;
endmacro;

macro "XOR2 10107" (SIZE);
  param "A"<0:SIZE-1>, "B"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim XOR g (I1="A"/P, I2="B"/P, OUT="Q"/P<0:SIZE-1>) delay=1.1:3.1 width=SIZE;
endmacro;

macro "NOR2 10102" (SIZE);
  param "A"<0:SIZE-1>, "B"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim NOR g (I1="A"/P, I2="B"/P, OUT="Q"/P<0:SIZE-1>) delay=1.0:2.9 width=SIZE;
endmacro;

macro "NAND2 10106" (SIZE);
  param "A"<0:SIZE-1>, "B"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim NAND g (I1="A"/P, I2="B"/P, OUT="Q"/P<0:SIZE-1>) delay=1.0:2.9 width=SIZE;
endmacro;

macro "XNOR2 10113" (SIZE);
  param "A"<0:SIZE-1>, "B"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim XNOR g (I1="A"/P, I2="B"/P, OUT="Q"/P<0:SIZE-1>) delay=1.1:3.1 width=SIZE;
endmacro;

macro "MUX4 10174" (SIZE);
  param "S0", "S1", "A"<0:SIZE-1>, "B"<0:SIZE-1>, "C"<0:SIZE-1>,
        "D"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim MUX4 m (S0="S0"/P, S1="S1"/P, I0="A"/P<0:SIZE-1>, I1="B"/P<0:SIZE-1>,
       I2="C"/P<0:SIZE-1>, I3="D"/P<0:SIZE-1>, OUT="Q"/P<0:SIZE-1>)
       delay=1.5:3.9 select_delay=0.3:1.4 width=SIZE;
endmacro;

macro "MUX8 10164" (SIZE);
  param "S0", "S1", "S2", "A"<0:SIZE-1>, "B"<0:SIZE-1>, "C"<0:SIZE-1>,
        "D"<0:SIZE-1>, "E"<0:SIZE-1>, "F"<0:SIZE-1>, "G"<0:SIZE-1>,
        "H"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim MUX8 m (S0="S0"/P, S1="S1"/P, S2="S2"/P, I0="A"/P<0:SIZE-1>,
       I1="B"/P<0:SIZE-1>, I2="C"/P<0:SIZE-1>, I3="D"/P<0:SIZE-1>,
       I4="E"/P<0:SIZE-1>, I5="F"/P<0:SIZE-1>, I6="G"/P<0:SIZE-1>,
       I7="H"/P<0:SIZE-1>, OUT="Q"/P<0:SIZE-1>)
       delay=1.8:4.2 select_delay=0.3:1.5 width=SIZE;
endmacro;

macro "INV 10195" (SIZE);
  param "A"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim NOT g (I="A"/P, OUT="Q"/P<0:SIZE-1>) delay=0.9:2.5 width=SIZE;
endmacro;

macro "PARITY 10160" (SIZE);
  param "A"<0:SIZE-1>, "Q";
  prim CHG g (I1="A"/P<0:SIZE-1>, OUT="Q"/P) delay=2.0:5.5 width=1;
endmacro;

macro "ADDER 10180" (SIZE);
  param "A"<0:SIZE-1>, "B"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim CHG g (I1="A"/P, I2="B"/P, OUT="Q"/P<0:SIZE-1>) delay=2.2:6.5 width=SIZE;
endmacro;

macro "CLOCK GATE" ();
  param "CK", "EN", "Q";
  prim AND g (I1="CK"/P&H, I2="EN"/P, OUT="Q"/P) delay=1.0:2.9 width=1;
  prim "MIN PULSE WIDTH" mpw (I="Q"/P) min_high=4.0;
endmacro;

-- The fictitious correlation delay of section 4.2.3: inserted in front of
-- register data inputs fed by other registers of the same clock, at least
-- as long as the clock skew, to suppress correlation false errors.
macro "CORR" (SIZE);
  param "A"<0:SIZE-1>, "Q"<0:SIZE-1>;
  prim DELAY d (I="A"/P, OUT="Q"/P<0:SIZE-1>) delay=2.5:2.5 width=SIZE;
endmacro;

-- A counter chip: register with feedback through an increment network.
-- The CORR delay in the feedback path is the section 4.2.3 idiom for
-- exactly this structure ("counters, shift registers, and other circuits
-- in which there is feedback from the output of a register").
macro "COUNTER 10136" (SIZE);
  param "CK", "LD", "Q"<0:SIZE-1>;
  prim DELAY fb (I="Q"/P, OUT="FB"/M<0:SIZE-1>) delay=2.5:2.5 width=SIZE;
  prim CHG inc (I1="FB"/M<0:SIZE-1>, I2="LD"/P, OUT="NEXT"/M<0:SIZE-1>)
       delay=2.0:5.0 width=SIZE;
  prim REG r (CLOCK="CK"/P, DATA="NEXT"/M<0:SIZE-1>, OUT="Q"/P<0:SIZE-1>)
       delay=1.5:4.5 width=SIZE;
  prim "SETUP HOLD CHK" su (I="NEXT"/M, CK="CK"/P) setup=2.5 hold=1.5
       width=SIZE;
endmacro;

-- A shift-register chip: the same feedback idiom with a 2:1 selector
-- between shifting and parallel load.
macro "SHIFT REG 10141" (SIZE);
  param "CK", "IN"<0:SIZE-1>, "SH", "Q"<0:SIZE-1>;
  prim DELAY fb (I="Q"/P, OUT="FB"/M<0:SIZE-1>) delay=2.5:2.5 width=SIZE;
  -- The parallel-load leg also comes from a register of the same clock,
  -- so it carries its own CORR delay (section 4.2.3).
  prim DELAY incorr (I="IN"/P, OUT="IND"/M<0:SIZE-1>) delay=2.5:2.5 width=SIZE;
  prim MUX2 sel (S0="SH"/P, I0="IND"/M<0:SIZE-1>, I1="FB"/M<0:SIZE-1>,
       OUT="NEXT"/M<0:SIZE-1>) delay=1.2:3.3 select_delay=0.3:1.2 width=SIZE;
  prim REG r (CLOCK="CK"/P, DATA="NEXT"/M<0:SIZE-1>, OUT="Q"/P<0:SIZE-1>)
       delay=1.5:4.5 width=SIZE;
  prim "SETUP HOLD CHK" su (I="NEXT"/M, CK="CK"/P) setup=2.5 hold=1.5
       width=SIZE;
endmacro;
"""


@dataclass(frozen=True)
class SynthConfig:
    """Parameters of one synthetic design.

    ``chips`` is the headline size (the thesis example is 6 357).  The mix
    fractions are calibrated so primitives/chip lands near the published
    1.3 and mean width near 6.5 bits.
    """

    chips: int = 500
    seed: int = 1980
    period_ns: float = 50.0
    clock_unit_ns: float = 6.25
    stage_chips: int = 250  # chips per pipeline stage (controls depth)
    #: chip-type mix (fractions of all chips); remainder becomes 2-input gates
    mux_fraction: float = 0.15
    reg_fraction: float = 0.09
    ram_fraction: float = 0.02
    alu_fraction: float = 0.04
    wide_fn_fraction: float = 0.08  # parity trees and adders
    clock_gate_fraction: float = 0.02
    #: vector widths and their weights (primitive mean lands near the
    #: published 6.5 bits once the width-1 checkers are averaged in)
    widths: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    width_weights: tuple[float, ...] = (0.24, 0.12, 0.14, 0.25, 0.16, 0.09)

    #: two-input-gate equivalents per chip type, for the headline totals
    GATE_EQUIV = {
        "gate": 2, "inv": 1, "mux": 5, "reg": 18, "ram": 24, "alu": 36,
        "wide": 12, "cgate": 3,
    }


@dataclass
class SynthDesign:
    """A generated design: its SCALD text plus ground-truth statistics."""

    source: str
    config: SynthConfig
    chips: int
    gate_equivalents: int
    memory_bits: int
    chips_by_type: dict[str, int] = field(default_factory=dict)

    def expander(self) -> MacroExpander:
        return MacroExpander.from_source(self.source, filename="<synth>")

    def circuit(self) -> tuple[Circuit, ExpanderStats]:
        expander = self.expander()
        return expander.expand(), expander.stats


class _Generator:
    def __init__(self, config: SynthConfig) -> None:
        self.cfg = config
        self.rng = random.Random(config.seed)
        self.lines: list[str] = []
        self.chips = 0
        self.gate_equivalents = 0
        self.memory_bits = 0
        self.by_type: dict[str, int] = {}
        self.uid = 0

    def _width(self) -> int:
        return self.rng.choices(self.cfg.widths, self.cfg.width_weights)[0]

    def _name(self, prefix: str) -> str:
        self.uid += 1
        return f"{prefix} {self.uid}"

    def _inst_id(self) -> int:
        """A unique chip instance number (chips emitted so far + 1)."""
        return self.chips + 1

    def _chip(self, kind: str, line: str, memory_bits: int = 0) -> None:
        self.lines.append(line)
        self.chips += 1
        self.gate_equivalents += self.cfg.GATE_EQUIV[kind]
        self.memory_bits += memory_bits
        self.by_type[kind] = self.by_type.get(kind, 0) + 1

    def generate(self) -> SynthDesign:
        cfg = self.cfg
        self.lines = [
            "design SYNTH;",
            f"period {cfg.period_ns} ns;",
            f"clock_unit {cfg.clock_unit_ns} ns;",
            LIBRARY,
        ]
        # Interface signals: primary inputs settle early in the cycle, the
        # main clock edges at unit 2, the RAM write strobe at unit 6.
        primaries = []
        for k in range(8):
            w = self._width()
            primaries.append((f"PRIMARY {k} .S0-6", w))
        clock = "MAIN CLK .P2-3"
        we_clock = "WE CLK .P5.5-6.5"
        # Clock distribution is hand-trimmed in the S-1 (section 2.5.1);
        # the assertion's ±1 ns skew already covers its variation, so the
        # clock nets carry no default interconnection delay.
        for clk in (clock, we_clock, "ALU EN .P4.5-6"):
            self.lines.append(f'wire "{clk}" 0.0:0.0;')

        stages = max(1, -(-cfg.chips // cfg.stage_chips))
        chips_left = cfg.chips
        prev_outputs = primaries
        for stage in range(stages):
            in_stage = min(cfg.stage_chips, chips_left)
            chips_left -= in_stage
            prev_outputs = self._stage(stage, in_stage, prev_outputs, clock, we_clock)
        source = "\n".join(self.lines) + "\n"
        return SynthDesign(
            source=source,
            config=cfg,
            chips=self.chips,
            gate_equivalents=self.gate_equivalents,
            memory_bits=self.memory_bits,
            chips_by_type=dict(self.by_type),
        )

    def _stage(
        self,
        stage: int,
        budget: int,
        prev_outputs: list[tuple[str, int]],
        clock: str,
        we_clock: str,
    ) -> list[tuple[str, int]]:
        cfg = self.cfg
        rng = self.rng

        def pick(pool: list[tuple[str, int]]) -> tuple[str, int]:
            return rng.choice(pool)

        # 1. Register bank: capture the previous stage's outputs.  Register
        #    outputs are level-0 nets of this stage.
        n_regs = max(2, round(budget * cfg.reg_fraction))
        level0: list[tuple[str, int]] = []
        for i in range(n_regs):
            src, w = pick(prev_outputs)
            # Every register data input goes through a CORR fictitious
            # delay (section 4.2.3): registers of the same clock feed each
            # other, and without it the clock skew produces correlation
            # false hold errors.  CORR is a text macro, not a chip.
            corr_q = self._name(f"S{stage} CORR")
            self.lines.append(
                f'use "CORR" corr{self.uid} (A="{src}"<0:{w-1}>, '
                f'Q="{corr_q}"<0:{w-1}>) SIZE={w};'
            )
            src = corr_q
            q = self._name(f"S{stage} R")
            kind = "REG RS 100141" if rng.random() < 0.2 else "REG 100141"
            if kind == "REG RS 100141":
                self._chip(
                    "reg",
                    f'use "{kind}" c{self._inst_id()} (I="{src}"<0:{w-1}>, CK="{clock}", '
                    f'RST="MASTER RESET .S0-8", Q="{q}"<0:{w-1}>) SIZE={w};',
                )
            else:
                self._chip(
                    "reg",
                    f'use "{kind}" c{self._inst_id()} (I="{src}"<0:{w-1}>, CK="{clock}", '
                    f'Q="{q}"<0:{w-1}>) SIZE={w};',
                )
            level0.append((q, w))
        budget -= n_regs

        # Sequential MSI: counters and shift registers — the feedback
        # structures of section 4.2.3, shipped with their CORR delays
        # built into the macro.
        n_seq = max(1, n_regs // 5)
        for i in range(n_seq):
            w = self._width()
            q = self._name(f"S{stage} SEQ")
            if i % 2 == 0:
                self._chip(
                    "reg",
                    f'use "COUNTER 10136" c{self._inst_id()} (CK="{clock}", '
                    f'LD="COUNT CTL .S0-8", Q="{q}"<0:{w-1}>) SIZE={w};',
                )
            else:
                src, sw = pick(prev_outputs)
                w = sw
                self._chip(
                    "reg",
                    f'use "SHIFT REG 10141" c{self._inst_id()} (CK="{clock}", '
                    f'IN="{src}"<0:{w-1}>, SH="SHIFT CTL .S0-8", '
                    f'Q="{q}"<0:{w-1}>) SIZE={w};',
                )
            level0.append((q, w))
        budget -= n_seq

        # 2. RAM blocks: addressed and written from level-0 nets under the
        #    late write strobe, so their constraints are met by timing.
        n_rams = round(budget * cfg.ram_fraction / (1 - cfg.reg_fraction))
        pools: list[list[tuple[str, int]]] = [level0]
        outputs: list[tuple[str, int]] = list(level0)
        for i in range(n_rams):
            data, w = pick(level0)
            out = self._name(f"S{stage} RAMQ")
            we = self._name(f"S{stage} WE")
            self._chip(
                "cgate",
                f'use "CLOCK GATE" c{self._inst_id()} (CK="{we_clock}", '
                f'EN="WRITE CTL .S0-8", Q="{we}");',
            )
            addr, _ = pick(level0)
            self._chip(
                "ram",
                f'use "16W RAM 10145A" c{self._inst_id()} (I="{data}"<0:{w-1}>, '
                f'A="{addr} ADR .S0-8"<0:3>, CS="CS CTL .S0-8", WE="{we}", '
                f'O="{out}"<0:{w-1}>) SIZE={w};',
                memory_bits=16 * w,
            )
            outputs.append((out, w))
        budget -= 2 * n_rams

        # 3. ALUs: operands restricted to level-0 nets so the function
        #    network is quiet while the output latch is open.
        n_alus = round(budget * cfg.alu_fraction / (1 - cfg.reg_fraction))
        for i in range(n_alus):
            a, w = pick(level0)
            b, _ = pick(level0)
            f = self._name(f"S{stage} F")
            self._chip(
                "alu",
                f'use "ALU 10181" c{self._inst_id()} (A="{a}"<0:{w-1}>, B="{b}"<0:{w-1}>, '
                f'S="ALU CTL .S0-8"<0:3>, EN="ALU EN .P4.5-6", '
                f'F="{f}"<0:{w-1}>) SIZE={w};',
            )
            outputs.append((f, w))
        budget -= n_alus

        # 4. Combinational fabric in bounded levels (no loops, bounded
        #    settle time); each level reads only earlier levels.
        gate_kinds = [
            ("OR2 10101", "gate"), ("AND2 10104", "gate"), ("XOR2 10107", "gate"),
            ("NOR2 10102", "gate"), ("NAND2 10106", "gate"),
            ("XNOR2 10113", "gate"), ("INV 10195", "inv"),
            ("MUX2 10158", "mux"), ("MUX4 10174", "mux"), ("MUX8 10164", "mux"),
            ("PARITY 10160", "wide"), ("ADDER 10180", "wide"),
        ]
        mux_weight = cfg.mux_fraction / (1 - cfg.reg_fraction)
        weights = [
            0.16, 0.16, 0.10, 0.06, 0.05, 0.04, 0.10,
            mux_weight * 0.7, mux_weight * 0.2, mux_weight * 0.1,
            cfg.wide_fn_fraction / 2, cfg.wide_fn_fraction / 2,
        ]
        # Three levels bounds the worst register-to-register path well
        # inside the 50 ns cycle.
        levels = 3
        per_level = max(1, budget // levels)
        for level in range(1, levels + 1):
            new_nets: list[tuple[str, int]] = []
            count = per_level if level < levels else budget - per_level * (levels - 1)
            pool = [net for lvl_pool in pools for net in lvl_pool]
            for i in range(max(0, count)):
                macro, kind = rng.choices(gate_kinds, weights)[0]
                a, w = pick(pool)
                q = self._name(f"S{stage} L{level} N")
                out_width = 1 if macro == "PARITY 10160" else w
                if macro == "INV 10195":
                    conn = f'A="{a}"<0:{w-1}>, Q="{q}"<0:{w-1}>'
                elif macro == "PARITY 10160":
                    conn = f'A="{a}"<0:{w-1}>, Q="{q}"'
                elif macro == "MUX2 10158":
                    b, _ = pick(pool)
                    conn = (
                        f'S="MUX CTL .S0-8", A="{a}"<0:{w-1}>, '
                        f'B="{b}"<0:{w-1}>, Q="{q}"<0:{w-1}>'
                    )
                elif macro in ("MUX4 10174", "MUX8 10164"):
                    # Every data leg must be exactly SIZE bits wide.
                    same_width = [n for n, ww in pool if ww == w] or [a]
                    ports = "ABCD" if macro == "MUX4 10174" else "ABCDEFGH"
                    legs = ", ".join(
                        f'{port}="{a if port == "A" else rng.choice(same_width)}"'
                        f"<0:{w-1}>"
                        for port in ports
                    )
                    selects = 'S0="MUX CTL .S0-8", S1="MUX CTL B .S0-8"'
                    if macro == "MUX8 10164":
                        selects += ', S2="MUX CTL C .S0-8"'
                    conn = f'{selects}, {legs}, Q="{q}"<0:{w-1}>'
                else:
                    b, _ = pick(pool)
                    conn = f'A="{a}"<0:{w-1}>, B="{b}"<0:{w-1}>, Q="{q}"<0:{w-1}>'
                self._chip(
                    kind,
                    f'use "{macro}" c{self._inst_id()} ({conn}) SIZE={w};',
                )
                new_nets.append((q, out_width))
            pools.append(new_nets)
            outputs.extend(new_nets)
        return outputs


def generate(config: SynthConfig | None = None) -> SynthDesign:
    """Generate a deterministic synthetic design from ``config``."""
    return _Generator(config or SynthConfig()).generate()


def s1_scale_config() -> SynthConfig:
    """The full Table 3-1 scale: 6 357 chips."""
    return SynthConfig(chips=6_357, stage_chips=400)
