"""A complete mini-CPU datapath, verified end to end.

The S-1 Mark IIA itself is not reproducible, but its verification workflow
is: a pipelined processor built from the Chapter III component library,
with every structure the thesis discusses in one design —

* a program counter with feedback through a ``CORR`` delay (section 4.2.3);
* an instruction memory and a register file built from the Figure 3-5 RAM
  macro, with gated write strobes under ``&H`` directives (section 2.6);
* an address multiplexer sharing the register file between read and
  writeback phases (the Figure 2-5 idiom);
* pipeline registers with setup/hold checkers (Figure 3-7);
* a Figure 3-9 ALU with output latch;
* interface assertions throughout, so the slice verifies on its own
  (section 2.5.2).

The clocking plan (100 ns cycle, 12.5 ns units, all precision clocks
trimmed):

====================  =========  =====================================
clock                 edge (ns)  captures / strobes
====================  =========  =====================================
``PIPE CLK .P0-1``    100 (= 0)  instruction / operand / writeback regs
``PC CLK .P3-4``      37.5       the program counter
``ALU EN .P2-3``      25..37.5   the ALU output latch (open window)
``WE CLK .P5-6``      62.5..75   both RAM write strobes
====================  =========  =====================================

``build_minicpu(bug=...)`` can plant each of the timing-error species of
section 1.3.2, for demonstrations and tests.
"""

from __future__ import annotations

from ..library import (
    alu_with_latch,
    and2_chip,
    corr_delay,
    mux2_chip,
    ram_16w_10145a,
    register_chip,
)
from ..netlist.circuit import Circuit

#: Seeded timing bugs: name -> description.
BUGS = {
    "slow-decode": "decode takes 14-26 ns: the branch select reaches the PC "
                    "multiplexer inside the PC's setup window",
    "late-writeback": "the writeback register is clocked at unit 7 instead "
                      "of the cycle boundary: its data misses setup",
    "runt-strobe": "the register-file write strobe is gated by a control "
                   "that settles mid-pulse: a possible runt write",
}


def build_minicpu(width: int = 16, bug: str | None = None) -> Circuit:
    """Build the datapath; ``bug`` plants one of :data:`BUGS`."""
    if bug is not None and bug not in BUGS:
        raise ValueError(f"unknown bug {bug!r}; known: {sorted(BUGS)}")
    c = Circuit(f"minicpu{'-' + bug if bug else ''}",
                period_ns=100.0, clock_unit_ns=12.5)

    def clock(name: str):
        net = c.net(name)
        net.wire_delay_ps = (0, 0)  # trimmed precision distribution
        return net

    pipe_clk = clock("PIPE CLK .P0-1")
    pc_clk = clock("PC CLK .P3-4")
    alu_en = clock("ALU EN .P2-3")
    we_clk = clock("WE CLK .P5-6")
    wb_clk = clock("WB CLK .P7-8") if bug == "late-writeback" else pipe_clk

    # ------------------------------------------------------------------
    # Fetch: the program counter and the instruction memory.
    # ------------------------------------------------------------------
    pc = c.net("PC", width=4)
    pc_fb = c.net("PC FB", width=4)
    corr_delay(c, "pc corr", pc_fb, pc, delay_ns=2.5, width=4)
    c.chg("PC INC", [pc_fb], delay=(2.0, 5.0), name="pc incr", width=4)

    decode_delay = (14.0, 26.0) if bug == "slow-decode" else (1.0, 2.5)
    c.chg("CTL", ["INSTR REG"], delay=decode_delay, name="decode", width=8)

    c.mux(c.net("PC NEXT", width=4), selects=["CTL"],
          inputs=["PC INC", "BRANCH TARGET"],
          delay=(1.2, 3.3), select_delay=(0.3, 1.2), name="pc mux", width=4)
    c.chg("BRANCH TARGET", ["INSTR REG"], delay=decode_delay,
          name="target decode", width=4)
    register_chip(c, "pc reg", out=pc, clock=pc_clk, data="PC NEXT", width=4)

    imem_we = c.net("IMEM WE")
    and2_chip(c, "imem we gate", imem_we,
              a=c._as_connection("WE CLK .P5-6 &H"), b="IMEM LOAD .S0-8")
    ram_16w_10145a(c, "imem", i=c.net("IMEM WDATA .S0-8", width=width),
                   a=pc, cs="IMEM CS .S0-8", we=imem_we,
                   out=c.net("INSTR", width=width), size=width)

    # ------------------------------------------------------------------
    # Decode / register read: pipeline register, register file.
    # ------------------------------------------------------------------
    register_chip(c, "instr reg", out=c.net("INSTR REG", width=width),
                  clock=pipe_clk, data="INSTR", width=width)

    # Register-file address: read address (from the instruction) in the
    # first half of the cycle, writeback address in the second — the
    # Figure 2-5 multiplexer idiom, selected by a phase clock.
    phase = clock("ADR PHASE .P4-8")
    rf_adr = c.net("RF ADR", width=4)
    c.chg("READ ADR", ["INSTR REG"], delay=(1.0, 2.5), name="rsel decode",
          width=4)
    mux2_chip(c, "rf adr mux", rf_adr, select=phase,
              i0="READ ADR", i1="WB ADR", width=4)

    rf_we = c.net("RF WE")
    strobe_ctl = "WB STROBE CTL .S4.6-5.4" if bug == "runt-strobe" \
        else "WB EN CTL .S0-8"
    and2_chip(c, "rf we gate", rf_we,
              a=c._as_connection("WE CLK .P5-6 &H"), b=strobe_ctl)
    c.min_pulse_width(rf_we, min_high=4.0, name="rf we width")
    # The writeback data comes from a register of the same clock family as
    # the operand register that reads the RAM's write-through output, so
    # it takes a CORR delay (section 4.2.3) like every register-to-register
    # path in this design.
    wb_corr = c.net("WB DATA CORR", width=width)
    corr_delay(c, "wb corr", wb_corr, c.net("WB DATA", width=width),
               delay_ns=2.5, width=width)
    ram_16w_10145a(c, "regfile", i=wb_corr,
                   a=rf_adr, cs="RF CS .S0-8", we=rf_we,
                   out=c.net("RF OUT", width=width), size=width)

    register_chip(c, "ops reg", out=c.net("OPS REG", width=width),
                  clock=pipe_clk, data="RF OUT", width=width)

    # ------------------------------------------------------------------
    # Execute / writeback: ALU with output latch, writeback register.
    # ------------------------------------------------------------------
    # The ALU result carries an interface assertion (stable from unit 3.4
    # to the cycle boundary), so downstream sections can verify against it
    # independently (section 2.5.2).
    alu_out = c.net("ALU OUT .S3.4-8", width=width)
    alu_with_latch(c, "alu", out=alu_out,
                   a="OPS REG", b="OPERAND B .S0-8", carry_in="CARRY .S0-8",
                   select="CTL", enable=alu_en, width=width)
    register_chip(c, "wb reg", out=c.net("WB DATA", width=width),
                  clock=wb_clk, data=alu_out, width=width)
    c.chg("WB ADR", ["INSTR REG"], delay=(1.0, 2.5), name="wsel decode",
          width=4)
    return c
