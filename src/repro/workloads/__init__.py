"""Workloads: the thesis figure circuits and the S-1-scale synthetic design."""

from .minicpu import BUGS, build_minicpu
from .figures import (
    fig_1_5_gated_clock,
    fig_2_5_register_file,
    fig_2_6_case_analysis,
    fig_3_12_alu_datapath,
    fig_4_1_correlation,
)

__all__ = [
    "BUGS",
    "build_minicpu",
    "fig_1_5_gated_clock",
    "fig_2_5_register_file",
    "fig_2_6_case_analysis",
    "fig_3_12_alu_datapath",
    "fig_4_1_correlation",
]
