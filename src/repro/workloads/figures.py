"""The circuits drawn in the thesis figures, as builder functions.

Each function returns a ready-to-verify :class:`~repro.netlist.Circuit`
reproducing one worked example:

* Figure 1-5  — the gated-clock hazard (a runt pulse clocks a register);
* Figure 2-5  — the register-file circuit whose verification output is
  shown in Figures 3-10 and 3-11;
* Figure 2-6  — the two-multiplexer circuit that needs case analysis;
* Figure 3-12 — the S-1 ALU / status-register datapath slice;
* Figures 4-1 and 4-2 — the register-feedback correlation false error and
  its ``CORR`` fictitious-delay suppression.
"""

from __future__ import annotations

from ..library import (
    alu_with_latch,
    and2_chip,
    corr_delay,
    mux2_chip,
    or2_chip,
    ram_16w_10145a,
    register_chip,
)
from ..netlist.circuit import Circuit


def fig_1_5_gated_clock(use_directive: bool = False) -> Circuit:
    """The Figure 1-5 hazard: a clock gated by a late control signal.

    ``CLOCK`` is high from 20 to 30 ns; ``ENABLE`` wants to inhibit the
    register this cycle but only reaches zero at 25 ns, so the gate output
    is a 5 ns runt pulse that may clock the register.

    With ``use_directive=False`` the hazard is caught by the register
    clock's minimum-pulse-width checker; with ``use_directive=True`` the
    ``&A`` evaluation directive on the clock input reports the control
    signal's instability directly (section 2.6).
    """
    c = Circuit("fig-1-5", period_ns=50.0, clock_unit_ns=10.0)
    # Clock units of 10 ns: .P2-3 is high 20..30 ns.
    clock = c.net("CLOCK .P2-3")
    # ENABLE is generated late: it may still be changing from 20 to 25 ns.
    enable = c.net("ENABLE .S2.5-2")
    reg_clock = c.net("REG CLOCK")
    clock_in = "CLOCK .P2-3 &A" if use_directive else clock
    c.gate("AND", reg_clock, [clock_in, enable], delay=(0.0, 0.0), name="gate")
    c.reg("Q", clock=reg_clock, data="DATA IN .S0-2", delay=(1.0, 3.0), width=8)
    c.min_pulse_width(reg_clock, min_high=6.0, name="mpw")
    # This cycle the control wants to be low (inhibit).  Mapping its stable
    # value to 0 exposes the runt pulse 20..25 ns.
    c.add_case_by_name({"ENABLE .S2.5-2": 0})
    return c


def fig_2_5_register_file() -> Circuit:
    """The Figure 2-5 register-file circuit (Figures 3-10/3-11 output).

    A 16-word by 32-bit register file, a 32-bit output register, a 2-input
    multiplexer selecting between the read and write addresses, and the
    write-enable gating.  50 ns cycle, 6.25 ns clock units, default wire
    delay 0.0/2.0 ns, and a designer-specified 0.0/6.0 ns wire on the
    register-file address lines.
    """
    c = Circuit("fig-2-5", period_ns=50.0, clock_unit_ns=6.25)

    # Write data settles late in the cycle (it comes from the previous
    # pipeline stage); the write/read addresses carry stable assertions.
    w_data = c.net("W DATA .S6.5-6", width=32)
    write_adr = c.net("WRITE ADR .S0-6", width=4)
    read_adr = c.net("READ ADR .S4-9", width=4)
    adr = c.net("ADR", width=4)
    adr.wire_delay_ps = (0, 6_000)  # designer-specified address wire

    # Write address during the first half of the cycle (while the
    # write-enable pulses), read address during the second.  The select is
    # a precision clock distributed without additional wire delay.
    sel = c.net("ADR SEL .P0-4")
    sel.wire_delay_ps = (0, 0)
    mux2_chip(c, "adr mux", adr, select=sel, i0=read_adr, i1=write_adr)

    # Write-enable pulse: the precision clock gated by the WRITE control.
    # The &H directive re-references the clock timing to the gate output
    # and checks WRITE's stability while the clock is asserted.
    ram_we = c.net("RAM WE")
    and2_chip(c, "we gate", ram_we, a="WE CLK .P2-3 &H", b="WRITE .S0-6")

    ram_out = c.net("RAM OUT", width=32)
    ram_16w_10145a(c, "rf", i=w_data, a=adr, cs="CS .S0-8", we=ram_we,
                   out=ram_out, size=32)

    # The output register clocks at the very end of the cycle (its rising
    # edge is nominally at 50 ns; with -1 ns skew it "starts rising at
    # 49.0 ns" as in the second Figure 3-11 message).  Like all precision
    # clocks in the S-1, its distribution is hand-trimmed, so the clock net
    # itself carries no default wire delay — the ±1 ns assertion skew
    # already covers the distribution variation (section 2.5.1).
    reg_clk = c.net("REG CLK .P0-1")
    reg_clk.wire_delay_ps = (0, 0)
    register_chip(c, "out reg", out=c.net("R DATA", width=32),
                  clock=reg_clk, data=ram_out, width=32)
    return c


def fig_2_6_case_analysis(with_cases: bool = True) -> Circuit:
    """The Figure 2-6 circuit whose worst path needs case analysis.

    Two multiplexers share (complementary uses of) one control signal; the
    long input leg of each carries an extra 10 ns of delay and each element
    contributes 10 ns.  Without case analysis the verifier cannot see that
    both multiplexers can never select their long leg at once and reports a
    40 ns input-to-output delay; the two cases each measure 30 ns.
    """
    c = Circuit("fig-2-6", period_ns=100.0, clock_unit_ns=10.0)
    control = c.net("CONTROL SIGNAL .S0-10")
    inp = c.net("INPUT .S1-10")  # changes during the first clock unit

    slow1 = c.net("SLOW1")
    c.buf(slow1, inp, delay=(10.0, 10.0), name="delay1")
    mid = c.net("MID")
    c.mux(mid, selects=[control], inputs=[inp, slow1], delay=(10.0, 10.0),
          name="mux1")

    slow2 = c.net("SLOW2")
    c.buf(slow2, mid, delay=(10.0, 10.0), name="delay2")
    out = c.net("OUTPUT")
    # The second multiplexer uses the complement of the control signal, so
    # the two long legs are never selected together.
    c.mux(out, selects=["-CONTROL SIGNAL .S0-10"], inputs=[mid, slow2],
          delay=(10.0, 10.0), name="mux2")

    if with_cases:
        c.add_case_by_name({"CONTROL SIGNAL .S0-10": 0})
        c.add_case_by_name({"CONTROL SIGNAL .S0-10": 1})
    return c


def fig_3_12_alu_datapath(width: int = 36) -> Circuit:
    """The Figure 3-12 S-1 Mark IIA arithmetic circuit.

    A 36-bit ALU with output latch, a 36-bit debugging/status register with
    load enable, and a function decoder driving the ALU select lines.  All
    interface signals carry assertions, so the slice verifies on its own —
    the modular-verification workflow of section 2.5.2.
    """
    c = Circuit("fig-3-12", period_ns=50.0, clock_unit_ns=6.25)

    # Function decoder: opcode to ALU select lines.
    fn_sel = c.net("FN SEL", width=4)
    c.chg(fn_sel, ["OPCODE .S0-6"], delay=(2.0, 4.0), name="fn decode", width=4)

    # The ALU output latch is open mid-cycle while the function network is
    # quiet and closes before the operand buses start changing.  Precision
    # clock distribution is hand-trimmed (no wire delay beyond the ±1 ns
    # assertion skew).
    latch_en = c.net("ALU LATCH EN .P4.5-6")
    latch_en.wire_delay_ps = (0, 0)
    alu_out = c.net("ALU OUT .S7-12", width=width)
    alu_with_latch(
        c, "alu", out=alu_out, a=c.net("A BUS .S0-6", width=width),
        b=c.net("B BUS .S0-6", width=width), carry_in="CARRY IN .S0-6",
        select=fn_sel, enable=latch_en, width=width,
    )

    # Debugging/status register with load enable: the enable is ANDed with
    # the clock under an &H directive (adjusted, checked clock gating).
    # The register clocks at the cycle boundary, after the latched result
    # has settled.
    reg_clk = c.net("REG CLK .P0-1")
    reg_clk.wire_delay_ps = (0, 0)
    status_clk = c.net("STATUS CLK")
    status_clk.wire_delay_ps = (0, 0)
    and2_chip(c, "status gate", status_clk,
              a=c._as_connection("REG CLK .P0-1 &H"), b="STATUS LOAD .S4-10")
    register_chip(c, "status reg", out=c.net("STATUS .S1-8", width=width),
                  clock=status_clk, data=alu_out, width=width)
    c.min_pulse_width(status_clk, min_high=3.0, name="status mpw")
    return c


def fig_4_1_correlation(with_corr: bool = False, hold_ns: float = 1.0) -> Circuit:
    """The Figure 4-1 correlation false error (and the Figure 4-2 fix).

    An edge-triggered register reloads either its own output or new data
    through a multiplexer; the clock reaches the register through a buffer
    that adds skew.  The minimum register+multiplexer delay exceeds the
    hold time, so the circuit is safe — but the Verifier computes in
    absolute times, ignores the correlation between the clock edge and the
    output change, and emits a false hold error.

    With ``with_corr=True`` the designer's ``CORR`` fictitious delay —
    as long as the clock skew — is inserted in the feedback path and the
    false error disappears (section 4.2.3).
    """
    c = Circuit("fig-4-1" if not with_corr else "fig-4-2",
                period_ns=50.0, clock_unit_ns=6.25)
    for name in ("Q", "FB", "D"):
        c.net(name, width=8).wire_delay_ps = (0, 0)

    # Clock buffer inserting a relatively large skew into the register
    # clock; the incoming precision clock itself is distributed trimmed.
    ck = c.net("CK .P2-3")
    ck.wire_delay_ps = (0, 0)
    reg_clk = c.net("REG CLK")
    reg_clk.wire_delay_ps = (0, 0)
    c.buf(reg_clk, ck, delay=(1.0, 4.0), name="clock buffer")

    q = c.net("Q", width=8)
    fb_tail = c.net("FB", width=8)
    if with_corr:
        # "At least as long as the skew on the clock signal": 3 ns from
        # the buffer plus the ±1 ns assertion skew.
        corr_delay(c, "corr", fb_tail, q, delay_ns=5.0, width=8)
    else:
        c.buf(fb_tail, q, delay=(0.0, 0.0), name="fb wire", width=8)

    d = c.net("D", width=8)
    c.mux(d, selects=["HOLD SEL .S0-8"], inputs=[fb_tail, c.net("NEW DATA .S0-6", width=8)],
          delay=(1.2, 3.3), name="in mux", width=8)

    c.reg(q, clock=reg_clk, data=d, delay=(1.5, 4.5), name="reg", width=8)
    c.setup_hold(d, reg_clk, setup=2.5, hold=hold_ns, name="reg su", width=8)
    return c
