"""Ablation transforms for the design-choice benchmarks.

* :func:`bit_blast` — undo the vector-primitive symmetry of Table 3-2.
  The transform itself now lives in :mod:`repro.netlist.bitblast` (it is
  the word-level engine's differential oracle and the ``--bit-blast`` CLI
  mode, not just an ablation); re-exported here for the benchmarks.

* :func:`fold_all_skew` — undo the separate skew field of section 2.8 on a
  set of waveforms, reproducing the false minimum-pulse-width errors the
  field exists to prevent.
"""

from __future__ import annotations

from ..netlist.bitblast import bit_blast

__all__ = ["bit_blast", "fold_all_skew"]


def fold_all_skew(waveforms: dict[str, object]) -> dict[str, object]:
    """Materialize every waveform — the no-separate-skew-field ablation."""
    return {name: wf.materialized() for name, wf in waveforms.items()}
