"""Ablation transforms for the design-choice benchmarks.

* :func:`bit_blast` — undo the vector-primitive symmetry of Table 3-2: a
  width-*w* primitive becomes *w* width-1 primitives over per-bit nets.
  The thesis notes the 6 357-chip design would have needed 53 833 instead
  of 8 282 primitives without the symmetry; the ablation benchmark measures
  both representations through the same verifier.

* :func:`fold_all_skew` — undo the separate skew field of section 2.8 on a
  set of waveforms, reproducing the false minimum-pulse-width errors the
  field exists to prevent.
"""

from __future__ import annotations

from ..netlist.circuit import Circuit, Component, Connection, Net


def _bit_net(target: Circuit, source_net: Net, bit: int, width: int) -> Net:
    """The per-bit clone of a (possibly vector) net.

    Scalar nets (clocks, selects, controls) are shared by every bit slice;
    vector nets get one clone per bit, keeping the original's assertion and
    wire delay.  The bit suffix is attached outside the assertion-bearing
    name, so the assertion object is copied explicitly rather than
    re-parsed.
    """
    if source_net.width == 1:
        clone = target.nets.get(source_net.name)
        if clone is None:
            clone = Net(
                name=source_net.name,
                width=1,
                base_name=source_net.base_name,
                assertion=source_net.assertion,
                wire_delay_ps=source_net.wire_delay_ps,
            )
            target.nets[clone.name] = clone
        return clone
    index = bit % source_net.width
    name = f"{source_net.name} [{index}]"
    clone = target.nets.get(name)
    if clone is None:
        clone = Net(
            name=name,
            width=1,
            base_name=f"{source_net.base_name} [{index}]",
            assertion=source_net.assertion,
            wire_delay_ps=source_net.wire_delay_ps,
        )
        target.nets[name] = clone
    return clone


def bit_blast(circuit: Circuit) -> Circuit:
    """Expand every vector primitive into per-bit scalar primitives.

    The result is semantically the design the thesis says would have taken
    53 833 primitives: same timing behaviour per bit, no vector symmetry.
    """
    blasted = Circuit(
        f"{circuit.name}-bitblasted",
        period_ns=circuit.timebase.period_ns,
        clock_unit_ns=circuit.timebase.clock_unit_ns,
    )
    for comp in circuit.iter_components():
        width = comp.width
        for bit in range(width):
            pins: dict[str, Connection] = {}
            for pin, conn in comp.pins.items():
                net = _bit_net(blasted, circuit.find(conn.net), bit, width)
                pins[pin] = Connection(
                    net=net,
                    invert=conn.invert,
                    directives=conn.directives,
                    wire_delay_ps=conn.wire_delay_ps,
                )
            name = comp.name if width == 1 else f"{comp.name} [{bit}]"
            params = dict(comp.params)
            params["width"] = 1
            blasted.components[name] = Component(
                name=name, prim=comp.prim, pins=pins, params=params
            )
    for case in circuit.cases:
        mapped: dict[str, int] = {}
        for name, value in case.items():
            source = circuit.nets.get(name)
            if source is None or source.width == 1:
                mapped[name] = value
            else:
                for bit in range(source.width):
                    mapped[f"{name} [{bit}]"] = value
        blasted.cases.append(mapped)
    return blasted


def fold_all_skew(waveforms: dict[str, object]) -> dict[str, object]:
    """Materialize every waveform — the no-separate-skew-field ablation."""
    return {name: wf.materialized() for name, wf in waveforms.items()}
