"""Process-parallel verification: case sharding and section sharding.

The ROADMAP's scaling story is that both axes of a large verification run
are embarrassingly parallel: every §2.7 case is an independent fixed-point
problem over the same circuit, and every §2.5.2 modular section is an
independent circuit.  This module fans either axis out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (stdlib only) and merges
the results deterministically, so ``--jobs N`` output is byte-identical to
a serial run.

Case sharding works in contiguous *blocks*: worker *k* receives the pickled
circuit once (via the pool initializer) and holds it in a single
:class:`~repro.session.Session` — the same object that owns run-scoped
engine state everywhere else, replacing the module-level worker globals
this file used to carry.  Each block runs ``initialize(cases[start])`` on
the session's persistent engine and then ``apply_case`` incrementally
through its block — the same §2.7 incremental re-evaluation the serial
verifier uses, just restarted at each block boundary.  A from-scratch
fixed point and an incremental one converge to the same waveforms (the
fixed point is unique for a legal synchronous design), so per-case
violations, waveforms and summaries match the serial run exactly; only
the engine work counters differ (each block pays its own initialization
events).

Merging is deterministic: blocks are keyed by their start index, per-case
violations are concatenated in case order (the serial ``report.extend``
order), :class:`EngineStats` counters are summed via
:meth:`EngineStats.merged`, and phase times are max-reduced for wall clock
(workers run concurrently) while a second :class:`PhaseTimes` records the
sum-reduced CPU seconds in ``result.phases_cpu``.

The enabling layer is serialization: :class:`Waveform` unpickles through
``Waveform.intern`` (see ``core/waveform.py``), so restored waveforms
re-enter the intern table and identity-based convergence stays sound in
every process.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from .core.config import VerifyConfig
from .core.engine import EngineStats
from .core.verifier import (
    CaseResult,
    PhaseTimes,
    TimingVerifier,
    VerificationResult,
)
from .core.violations import CheckReport, Violation
from .netlist.circuit import Circuit
from .netlist.validate import check as check_structure


def _pool_context():
    """Prefer ``fork`` (cheap, payload shared at COW speed); fall back to
    the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def case_blocks(n_cases: int, jobs: int) -> list[tuple[int, int]]:
    """Partition ``range(n_cases)`` into at most ``jobs`` contiguous blocks.

    A pure function of its arguments, so the sharding — and therefore the
    merged output — is reproducible for a given (cases, jobs) pair.
    """
    jobs = max(1, min(jobs, n_cases))
    base, extra = divmod(n_cases, jobs)
    blocks: list[tuple[int, int]] = []
    start = 0
    for k in range(jobs):
        size = base + (1 if k < extra else 0)
        blocks.append((start, start + size))
        start += size
    return blocks


@dataclass
class _BlockResult:
    """What one worker hands back for its contiguous case block."""

    start: int
    case_results: list[CaseResult]
    violations: list[list[Violation]]  # per case, in block order
    xref_assumed_stable: list[str]
    stats: EngineStats
    build_wall: float
    build_cpu: float
    verify_wall: float
    verify_cpu: float


# The worker-process session, set once per worker by the pool initializer
# so the circuit is unpickled (or inherited through fork) once, not per
# block.  One Session replaces the circuit/config/cases/constraints
# globals this module used to juggle: the session owns the persistent
# engine (and its intern table), and consecutive blocks on the same
# worker reuse it instead of rebuilding topology maps and ranks.
_worker_session: "Session | None" = None
_worker_cases: list[dict[str, int]] = []


def _init_case_worker(payload: bytes) -> None:
    global _worker_session, _worker_cases
    from .session import Session

    circuit, config, _worker_cases, constraints = pickle.loads(payload)
    _worker_session = Session(circuit, config, constraints=constraints)


def _run_case_block(start: int, stop: int) -> _BlockResult:
    """Verify cases ``start..stop`` incrementally on the worker's engine.

    ``initialize`` is a full reset of the session engine's value state, so
    block output is byte-identical to a serial run regardless of which
    blocks this worker served before; what carries over is the expensive
    circuit-shaped state (topology maps, levelized ranks, interned
    waveforms shared through the session table).
    """
    assert _worker_session is not None
    t0, c0 = time.perf_counter(), time.process_time()
    engine = _worker_session.engine
    engine.initialize(_worker_cases[start])
    xref = list(engine.xref_assumed_stable)
    build_wall = time.perf_counter() - t0
    build_cpu = time.process_time() - c0

    t0, c0 = time.perf_counter(), time.process_time()
    case_results: list[CaseResult] = []
    violations: list[list[Violation]] = []
    for index in range(start, stop):
        if index > start:
            engine.apply_case(_worker_cases[index])
        events = engine.run()
        violations.append(engine.check(case_index=index))
        case_results.append(
            CaseResult(
                index=index,
                assignments=dict(_worker_cases[index]),
                waveforms=engine.snapshot(),
                events=events,
            )
        )
    return _BlockResult(
        start=start,
        case_results=case_results,
        violations=violations,
        xref_assumed_stable=xref,
        stats=engine.stats,
        build_wall=build_wall,
        build_cpu=build_cpu,
        verify_wall=time.perf_counter() - t0,
        verify_cpu=time.process_time() - c0,
    )


def verify_parallel(
    circuit: Circuit,
    config: VerifyConfig | None = None,
    jobs: int | None = None,
    constraints=None,
) -> VerificationResult:
    """Verify ``circuit`` with case analysis sharded over ``jobs`` processes.

    Produces a :class:`VerificationResult` whose violations, waveforms and
    listings are byte-identical to ``TimingVerifier(circuit, config)
    .verify()``; ``result.phases`` holds max-reduced wall times and
    ``result.phases_cpu`` the summed worker CPU times.  With one case (or
    ``jobs <= 1``) this falls back to the serial verifier.
    """
    config = config or VerifyConfig()
    cases = circuit.cases or [{}]
    if jobs is None:
        jobs = os.cpu_count() or 1
    blocks = case_blocks(len(cases), jobs)
    if len(blocks) <= 1:
        return TimingVerifier(circuit, config, constraints=constraints).verify()

    phases = PhaseTimes()
    cpu = PhaseTimes()

    t0, c0 = time.perf_counter(), time.process_time()
    warnings = check_structure(circuit)
    payload = pickle.dumps(
        (circuit, config, cases, constraints), protocol=pickle.HIGHEST_PROTOCOL
    )
    parent_build_wall = time.perf_counter() - t0
    parent_build_cpu = time.process_time() - c0

    with ProcessPoolExecutor(
        max_workers=len(blocks),
        mp_context=_pool_context(),
        initializer=_init_case_worker,
        initargs=(payload,),
    ) as pool:
        futures = [pool.submit(_run_case_block, a, b) for a, b in blocks]
        parts = [f.result() for f in futures]
    parts.sort(key=lambda p: p.start)

    phases.build = parent_build_wall + max(p.build_wall for p in parts)
    cpu.build = parent_build_cpu + sum(p.build_cpu for p in parts)
    phases.verify = max(p.verify_wall for p in parts)
    cpu.verify = sum(p.verify_cpu for p in parts)

    # The cross-reference is a property of initialization, not of any
    # case, so every worker computed the same list; take block 0's.
    xref = parts[0].xref_assumed_stable

    report = CheckReport()
    case_results: list[CaseResult] = []
    for part in parts:
        for per_case in part.violations:
            report.extend(per_case)
        case_results.extend(part.case_results)

    result = VerificationResult(
        circuit_name=circuit.name,
        report=report,
        cases=case_results,
        stats=EngineStats.merged(p.stats for p in parts),
        phases=phases,
        xref_assumed_stable=xref,
        structure_warnings=warnings,
        primitive_count=sum(
            1 for c in circuit.iter_components() if not c.prim.is_checker
        ),
        config=config,
        phases_cpu=cpu,
    )

    t0, c0 = time.perf_counter(), time.process_time()
    result.summary_listing()
    phases.summary = time.perf_counter() - t0
    cpu.summary = time.process_time() - c0
    return result


# ----------------------------------------------------------------------
# section sharding (modular verification, section 2.5.2)
# ----------------------------------------------------------------------


def _verify_section(payload: bytes) -> VerificationResult:
    circuit, config = pickle.loads(payload)
    return TimingVerifier(circuit, config).verify()


def verify_sections_parallel(
    sections: dict[str, Circuit],
    config: VerifyConfig | None = None,
    jobs: int | None = None,
):
    """Verify each section in its own worker process, one section per task.

    Returns the same :class:`~repro.modular.ModularResult` the serial
    :func:`repro.modular.verify_sections` produces: sections are rebuilt
    in their original insertion order regardless of completion order, and
    the interface-consistency check runs in the parent.
    """
    from .modular import ModularResult, check_interfaces, verify_sections

    names = list(sections)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or len(names) <= 1:
        return verify_sections(sections, config)
    config = config or VerifyConfig()
    payloads = [
        pickle.dumps((sections[name], config), protocol=pickle.HIGHEST_PROTOCOL)
        for name in names
    ]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(names)), mp_context=_pool_context()
    ) as pool:
        results = list(pool.map(_verify_section, payloads))
    out = ModularResult()
    for name, result in zip(names, results):
        out.sections[name] = result
    out.interface_issues = check_interfaces(sections)
    return out
