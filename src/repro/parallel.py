"""Process-parallel verification: a warm worker pool, case sharding,
single-case circuit partitioning, and section sharding.

The ROADMAP's scaling story has two halves.  The first is that both axes
of a large verification run are embarrassingly parallel: every §2.7 case
is an independent fixed-point problem over the same circuit, and every
§2.5.2 modular section is an independent circuit.  The second — this
module's reason to exist after the fork-per-run pool *lost* to serial
(``BENCH_parallel.json``) — is that the transfer costs dominate unless
the pool is persistent and the traffic is deltas:

* **Pool lifetime.**  A :class:`WorkerPool` is owned by a
  :class:`repro.session.Session` and forks its workers once, lazily, on
  the first pooled run; the circuit crosses the process boundary exactly
  once (by fork copy-on-write where available).  The workers survive
  across ``verify``/``reverify``/CLI calls — each holds its own Session,
  so consecutive runs on a warm worker re-enter the fixed point through
  :meth:`Engine.incremental_begin` instead of re-initializing, and
  typed :mod:`repro.incremental` edits are shipped over the pipe instead
  of re-pickling the circuit.

* **Digest transfer.**  Waveforms cross each pipe through a symmetric
  codec (:class:`_WaveEncoder`/:class:`_WaveDecoder`): the first shipment
  of a value is ``(id, Waveform)``, every repeat is a bare integer — the
  receiving side appends to its table in lockstep, so no handshake is
  needed and a converged value that appears in every case costs one
  pickle total.  Per-case snapshots stay on the worker; the parent's
  :class:`CaseResult` holds a :class:`LazySnapshot` that fetches the full
  listing only when something reads it.

* **Single-case partitioning.**  With one case there is no case axis, so
  :func:`plan_partition` splits the circuit itself along the levelized
  rank boundaries the engine already computes (rank groups are delimited
  exactly by the register/latch feedback cuts of ``_compute_ranks`` — the
  same H-graph structure ``repro.sta`` levelizes).  Each worker runs its
  partition under an engine *scope* and the parent relays only changed
  boundary waveforms between rounds until no boundary value moves.  The
  union of the per-partition converged values then satisfies every
  component's equation simultaneously, i.e. it *is* a fixed point of the
  whole circuit — and for a legal synchronous design the fixed point is
  unique (the same argument behind case blocks and incremental
  re-verify), so it equals the serial result.  The parent adopts the
  values, runs the checking pass itself, and the listings come out
  byte-identical by construction.

Merging stays deterministic: blocks are keyed by their start index,
per-case violations are concatenated in case order, stats are summed via
:meth:`EngineStats.merged`, and wall/CPU phase times are max-/sum-reduced
as before.  A worker death is reported as :class:`WorkerCrash` naming the
unit of work that was outstanding, not a raw traceback.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from .core.config import VerifyConfig
from .core.engine import EngineStats
from .core.verifier import (
    PoolStats,
    TimingVerifier,
    VerificationResult,
)
from .core.violations import Violation
from .core.waveform import Waveform
from .netlist.circuit import Circuit

__all__ = [
    "LazySnapshot",
    "PartitionPlan",
    "WorkerCrash",
    "WorkerPool",
    "case_blocks",
    "plan_partition",
    "verify_parallel",
    "verify_sections_parallel",
]


def _pool_context():
    """Prefer ``fork`` (cheap, payload shared at COW speed); fall back to
    the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def case_blocks(n_cases: int, jobs: int) -> list[tuple[int, int]]:
    """Partition ``range(n_cases)`` into at most ``jobs`` contiguous blocks.

    A pure function of its arguments, so the sharding — and therefore the
    merged output — is reproducible for a given (cases, jobs) pair.
    """
    jobs = max(1, min(jobs, n_cases))
    base, extra = divmod(n_cases, jobs)
    blocks: list[tuple[int, int]] = []
    start = 0
    for k in range(jobs):
        size = base + (1 if k < extra else 0)
        blocks.append((start, start + size))
        start += size
    return blocks


class WorkerCrash(RuntimeError):
    """A pool worker died mid-run (OOM kill, hard crash, broken pipe).

    ``what`` names the unit of work that was outstanding — the CLI prints
    it on stderr and exits 2 instead of surfacing a raw
    ``BrokenProcessPool`` traceback.
    """

    def __init__(self, what: str, detail: str = "") -> None:
        self.what = what
        self.detail = detail
        msg = f"parallel worker died while running {what}"
        if detail:
            msg = f"{msg}: {detail}"
        super().__init__(msg)


# ----------------------------------------------------------------------
# waveform digest codec
# ----------------------------------------------------------------------


class _WaveEncoder:
    """One direction of one pipe's waveform digest codec.

    Ids are dense and monotonic in first-shipment order; the peer
    :class:`_WaveDecoder` appends to its table in the same order, so both
    sides stay in lockstep without a handshake.  Keyed on
    :attr:`Waveform.canonical_key` (value equality), so two equal
    waveforms — even from different cases — cross the pipe once.
    """

    __slots__ = ("ids", "stats")

    def __init__(self, stats: PoolStats | None = None) -> None:
        self.ids: dict[tuple, int] = {}
        self.stats = stats

    def encode(self, wf: Waveform):
        key = wf.canonical_key
        ref = self.ids.get(key)
        if ref is not None:
            if self.stats is not None:
                self.stats.waveform_refs += 1
            return ref
        ref = len(self.ids)
        self.ids[key] = ref
        if self.stats is not None:
            self.stats.waveforms_shipped += 1
        return (ref, wf)

    def encode_value(self, base: Waveform, lanes: dict[int, Waveform] | None):
        """Encode a net value: shared base plus sparse per-lane overrides."""
        if not lanes:
            return (self.encode(base), None)
        return (
            self.encode(base),
            [(lane, self.encode(wf)) for lane, wf in sorted(lanes.items())],
        )


class _WaveDecoder:
    """The receiving end of :class:`_WaveEncoder` (same pipe, same order)."""

    __slots__ = ("store", "stats")

    def __init__(self, stats: PoolStats | None = None) -> None:
        self.store: list[Waveform] = []
        self.stats = stats

    def decode(self, enc) -> Waveform:
        if type(enc) is int:
            if self.stats is not None:
                self.stats.waveform_refs += 1
            return self.store[enc]
        _ref, wf = enc  # unpickling already interned it (_restore_waveform)
        self.store.append(wf)
        if self.stats is not None:
            self.stats.waveforms_shipped += 1
        return wf

    def decode_value(self, enc) -> tuple[Waveform, dict[int, Waveform] | None]:
        base_enc, lane_enc = enc
        base = self.decode(base_enc)
        if not lane_enc:
            return base, None
        return base, {lane: self.decode(e) for lane, e in lane_enc}


class LazySnapshot(dict):
    """A per-case waveform listing fetched from its worker on first read.

    Quacks exactly like the plain ``{name: Waveform}`` dict the serial
    verifier stores in :class:`CaseResult.waveforms`; the fetch happens on
    the first read access (listings, crosscheck, ``result.waveform()``),
    so a run whose snapshots nobody reads ships no waveforms at all.
    Pickling materializes to a plain dict, so results stay portable after
    the pool is gone.
    """

    __slots__ = ("_fetch", "__weakref__")

    def __init__(self, fetch) -> None:
        super().__init__()
        self._fetch = fetch

    @property
    def loaded(self) -> bool:
        return self._fetch is None

    def _load(self) -> None:
        if self._fetch is not None:
            fetch, self._fetch = self._fetch, None
            super().update(fetch())

    def __getitem__(self, key):
        self._load()
        return super().__getitem__(key)

    def __contains__(self, key):
        self._load()
        return super().__contains__(key)

    def __iter__(self):
        self._load()
        return super().__iter__()

    def __len__(self):
        self._load()
        return super().__len__()

    def get(self, key, default=None):
        self._load()
        return super().get(key, default)

    def keys(self):
        self._load()
        return super().keys()

    def values(self):
        self._load()
        return super().values()

    def items(self):
        self._load()
        return super().items()

    def copy(self):
        self._load()
        return dict(self)

    def __eq__(self, other):
        self._load()
        if isinstance(other, LazySnapshot):
            other._load()
        return dict.__eq__(self, other)

    def __ne__(self, other):
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __repr__(self):
        self._load()
        return dict.__repr__(self)

    def __reduce__(self):
        self._load()
        return (dict, (dict(self),))


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------


@dataclass
class _BlockResult:
    """What one worker hands back for its contiguous case block.

    Waveform snapshots deliberately stay on the worker — the parent holds
    a :class:`LazySnapshot` per case and fetches on demand.
    """

    start: int
    violations: list[list[Violation]]  # per case, in block order
    assignments: list[dict[str, int]]
    events: list[int]
    xref_assumed_stable: list[str]
    stats: EngineStats
    warm: bool
    build_wall: float
    build_cpu: float
    verify_wall: float
    verify_cpu: float


@dataclass
class _PartitionResult:
    """One partition's contribution to a single-case run (``pfinish``)."""

    values: list  # encoded (name, value) for every owned driven net
    gating: dict[str, str]
    stats: EngineStats
    build_wall: float
    build_cpu: float
    verify_wall: float
    verify_cpu: float


@dataclass
class PartitionPlan:
    """A single-case split of the circuit along rank-group boundaries.

    ``parts[k]`` is partition *k*'s component-name scope; ``out_nets[k]``
    the boundary nets it drives that some other partition reads;
    ``owned_nets[k]`` every driven net it owns (what the parent adopts at
    the end); ``readers`` maps each boundary net to the partitions that
    read it.
    """

    parts: list[list[str]]
    out_nets: list[list[str]]
    owned_nets: list[list[str]]
    readers: dict[str, list[int]]


#: A partition below this many components is not worth a boundary
#: exchange; the planner shrinks the part count (or gives up) instead.
_MIN_PART_COMPONENTS = 8


def plan_partition(circuit: Circuit, engine, parts: int) -> PartitionPlan | None:
    """Split the circuit into ``parts`` contiguous rank-ordered chunks.

    Components are ordered by levelized rank (circuit order within a
    rank), chunked into near-equal contiguous parts, and each cut is
    snapped to the nearest rank-group boundary within a tolerance — rank
    groups are delimited exactly where ``_compute_ranks`` cut feedback at
    the sequential primitives, so a snapped cut crosses the register
    H-graph edges the static pass identified, minimizing combinational
    boundary traffic.  Returns None when the circuit is too small to be
    worth a boundary exchange.
    """
    comps = [c for c in circuit.iter_components() if not c.prim.is_checker]
    n = len(comps)
    parts = min(parts, n // _MIN_PART_COMPONENTS)
    if parts < 2:
        return None
    ranks = engine.component_ranks()
    ordered = sorted(
        range(n), key=lambda i: (ranks.get(comps[i].name, 0), i)
    )
    ordered = [comps[i] for i in ordered]

    def rank_of(i: int) -> int:
        return ranks.get(ordered[i].name, 0)

    tol = max(1, n // (4 * parts))
    cuts: list[int] = []
    for k in range(1, parts):
        ideal = k * n // parts
        best = None
        for d in range(tol + 1):
            for pos in (ideal - d, ideal + d):
                if 0 < pos < n and rank_of(pos) != rank_of(pos - 1):
                    best = pos
                    break
            if best is not None:
                break
        cuts.append(best if best is not None else ideal)
    bounds = [0] + sorted(set(cuts)) + [n]
    part_names: list[list[str]] = []
    for a, b in zip(bounds, bounds[1:]):
        if b <= a:
            return None
        part_names.append([c.name for c in ordered[a:b]])
    if len(part_names) < 2:
        return None

    owner: dict[str, int] = {}
    for k, names in enumerate(part_names):
        for name in names:
            owner[name] = k
    # Driver map in circuit order, exactly like Engine.rebuild_topology
    # (last output pin wins), so ownership matches the engine's.
    driver_part: dict = {}
    rep_name: dict = {}
    for comp in comps:
        for _pin, conn in comp.output_pins():
            rep = circuit.find(conn.net)
            driver_part[rep] = owner[comp.name]
            rep_name[rep] = rep.name
    readers: dict[str, set[int]] = {}
    for comp in comps:
        k = owner[comp.name]
        for _pin, conn in comp.input_pins():
            rep = circuit.find(conn.net)
            owner_part = driver_part.get(rep)
            if owner_part is not None and owner_part != k:
                readers.setdefault(rep_name[rep], set()).add(k)
    out_nets: list[list[str]] = [[] for _ in part_names]
    owned_nets: list[list[str]] = [[] for _ in part_names]
    for rep, k in driver_part.items():
        name = rep_name[rep]
        owned_nets[k].append(name)
        if name in readers:
            out_nets[k].append(name)
    for lst in out_nets:
        lst.sort()
    for lst in owned_nets:
        lst.sort()
    return PartitionPlan(
        parts=part_names,
        out_nets=out_nets,
        owned_nets=owned_nets,
        readers={name: sorted(ks) for name, ks in readers.items()},
    )


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------


class _Worker:
    """One pool worker: a Session plus the pipe protocol around it.

    Strict request/reply: the parent never pipelines two requests to the
    same worker, so the per-pipe codecs stay in lockstep by construction.
    """

    def __init__(self, conn, circuit, config, constraints) -> None:
        from .session import Session

        self.conn = conn
        self.session = Session(circuit, config, constraints=constraints)
        self.enc = _WaveEncoder()  # worker -> parent
        self.dec = _WaveDecoder()  # parent -> worker
        #: The worker engine holds a *full-block* converged state usable
        #: by incremental_begin; partition runs leave non-owned internals
        #: stale, so they clear it.
        self.converged = False
        self.snapshots: dict[int, dict[str, Waveform]] = {}
        self.sent_names: tuple | None = None
        # partition-run state
        self.part_outs: list[str] = []
        self.part_owned: list[str] = []
        self.last_sent: dict[str, tuple] = {}
        self.part_build = (0.0, 0.0)
        self.part_verify = [0.0, 0.0]

    def serve(self) -> None:
        handlers = {
            "edits": self._do_edits,
            "block": self._do_block,
            "fetch": self._do_fetch,
            "pinit": self._do_pinit,
            "pround": self._do_pround,
            "pfinish": self._do_pfinish,
        }
        while True:
            try:
                msg = self.conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "quit":
                break
            handler = handlers.get(msg[0])
            try:
                if handler is None:
                    raise ValueError(f"unknown pool command {msg[0]!r}")
                self.conn.send(("ok", handler(*msg[1:])))
            except Exception as exc:  # reply, don't die: the parent reports
                import traceback

                self.conn.send(
                    ("err", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
                )

    # -- shared ---------------------------------------------------------

    def _reconcile(self):
        """Fold queued edits into the engine, like Session.reverify does."""
        session = self.session
        engine = session.engine
        if session._dirty.topology:
            engine.rebuild_topology()
        engine.forget_connections(session._dirty.stale_connections)
        dirty = list(session._dirty.components.values())
        session._dirty.clear()
        return engine, dirty

    # -- commands -------------------------------------------------------

    def _do_edits(self, edits):
        self.session.edit(*edits)
        return None

    def _do_block(self, start, block_cases):
        t0, c0 = time.perf_counter(), time.process_time()
        engine, dirty = self._reconcile()
        engine.set_scope(None)
        warm = self.converged and bool(engine.values)
        if warm:
            # Same path as a serial reverify: unique fixed point, so the
            # incremental restart converges to byte-identical waveforms.
            engine.incremental_begin(block_cases[0], dirty)
        else:
            engine.initialize(block_cases[0])
        self.converged = False
        xref = list(engine.xref_assumed_stable)
        build_wall = time.perf_counter() - t0
        build_cpu = time.process_time() - c0

        t0, c0 = time.perf_counter(), time.process_time()
        violations: list[list[Violation]] = []
        assignments: list[dict[str, int]] = []
        events: list[int] = []
        store: dict[int, dict[str, Waveform]] = {}
        for i, case in enumerate(block_cases):
            index = start + i
            if i > 0:
                engine.apply_case(case)
            events.append(engine.run())
            violations.append(engine.check(case_index=index))
            assignments.append(dict(case))
            store[index] = engine.snapshot()
        self.snapshots = store
        self.converged = True
        return _BlockResult(
            start=start,
            violations=violations,
            assignments=assignments,
            events=events,
            xref_assumed_stable=xref,
            stats=engine.stats,
            warm=warm,
            build_wall=build_wall,
            build_cpu=build_cpu,
            verify_wall=time.perf_counter() - t0,
            verify_cpu=time.process_time() - c0,
        )

    def _do_fetch(self, index):
        snap = self.snapshots[index]
        names = tuple(snap)
        header = None
        if names != self.sent_names:
            self.sent_names = names
            header = names
        return header, [self.enc.encode(snap[name]) for name in names]

    def _changed_outs(self):
        """Boundary values that moved since they were last shipped."""
        engine = self.session.engine
        circuit = self.session.circuit
        out = []
        for name in self.part_outs:
            rep = circuit.find(circuit.nets[name])
            base = engine.values.get(rep)
            if base is None:
                continue
            lanes = engine._lanes.get(rep)
            key = (
                base.canonical_key,
                tuple(
                    sorted(
                        (lane, wf.canonical_key) for lane, wf in lanes.items()
                    )
                )
                if lanes
                else None,
            )
            if self.last_sent.get(name) == key:
                continue
            self.last_sent[name] = key
            out.append((name, self.enc.encode_value(base, lanes)))
        return out

    def _do_pinit(self, case, scope, out_nets, owned_nets):
        t0, c0 = time.perf_counter(), time.process_time()
        engine, _dirty = self._reconcile()
        self.converged = False  # partition state is not block-restartable
        self.part_outs = out_nets
        self.part_owned = owned_nets
        self.last_sent = {}
        engine.set_scope(scope)
        engine.initialize(case)
        self.part_build = (
            time.perf_counter() - t0,
            time.process_time() - c0,
        )
        t0, c0 = time.perf_counter(), time.process_time()
        engine.run()
        self.part_verify = [
            time.perf_counter() - t0,
            time.process_time() - c0,
        ]
        return self._changed_outs()

    def _do_pround(self, updates):
        engine = self.session.engine
        t0, c0 = time.perf_counter(), time.process_time()
        engine.adopt_values(
            (name, *self.dec.decode_value(enc)) for name, enc in updates
        )
        # Each round is a fresh partial fixed point; the oscillation valve
        # must count per round, not across the whole exchange (the parent
        # caps the round count instead).
        engine._eval_counts.clear()
        engine.run()
        self.part_verify[0] += time.perf_counter() - t0
        self.part_verify[1] += time.process_time() - c0
        return self._changed_outs()

    def _do_pfinish(self):
        engine = self.session.engine
        circuit = self.session.circuit
        values = []
        for name in self.part_owned:
            rep = circuit.find(circuit.nets[name])
            if rep in engine._fixed:
                continue  # identical everywhere; the parent has its own
            base = engine.values.get(rep)
            if base is None:
                continue
            values.append(
                (name, self.enc.encode_value(base, engine._lanes.get(rep)))
            )
        return _PartitionResult(
            values=values,
            gating=dict(engine._gating),
            stats=engine.stats,
            build_wall=self.part_build[0],
            build_cpu=self.part_build[1],
            verify_wall=self.part_verify[0],
            verify_cpu=self.part_verify[1],
        )


def _worker_main(conn, circuit, config, constraints) -> None:
    worker = _Worker(conn, circuit, config, constraints)
    try:
        worker.serve()
    finally:
        conn.close()


# ----------------------------------------------------------------------
# the parent-side pool
# ----------------------------------------------------------------------


def _shutdown_workers(procs, conns) -> None:
    for conn in conns:
        try:
            conn.send(("quit",))
        except (OSError, ValueError):
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.terminate()
            proc.join(timeout=2.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class WorkerPool:
    """A persistent warm pool of verification worker processes.

    Owned by one :class:`repro.session.Session`; forked lazily on the
    first pooled run and reused across ``verify``/``reverify`` calls (and
    therefore across ``scald-serve`` requests on the same session).  The
    circuit crosses once at fork time; afterwards only case assignments,
    typed edits and waveform digests travel.  Results keep the pool alive
    through their unfetched :class:`LazySnapshot` closures, so a one-shot
    :func:`verify_parallel` result stays readable after the session is
    gone; when the last reference drops, a finalizer reaps the workers
    (they are daemons besides, so they can never outlive the parent).
    """

    def __init__(self, session, jobs: int) -> None:
        self.session = session
        self.jobs = max(1, jobs)
        self.stats = PoolStats()
        self._procs: list = []
        self._conns: list = []
        self._encoders: list[_WaveEncoder] = []
        self._decoders: list[_WaveDecoder] = []
        self._names: list[tuple | None] = []
        self._outbox: list = []
        self._watched: list[weakref.ref] = []
        self._finalizer = None

    # -- lifecycle ------------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._procs)

    def _start(self) -> None:
        ctx = _pool_context()
        # The forked children inherit the *current* (already-edited)
        # circuit, so anything still in the outbox is already applied.
        self._outbox.clear()
        self._procs, self._conns = [], []
        self._encoders, self._decoders, self._names = [], [], []
        for k in range(self.jobs):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    self.session.circuit,
                    self.session.config,
                    self.session.constraints,
                ),
                daemon=True,
                name=f"scald-pool-{k}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self._encoders.append(_WaveEncoder(self.stats))
            self._decoders.append(_WaveDecoder(self.stats))
            self._names.append(None)
        self.stats.workers = self.jobs
        self.stats.pool_starts += 1
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, list(self._procs), list(self._conns)
        )

    def shutdown(self) -> None:
        """Reap the workers; a later run transparently restarts the pool."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._procs, self._conns = [], []
        self._encoders, self._decoders, self._names = [], [], []

    def close(self) -> None:
        """Materialize outstanding lazy snapshots, then reap the workers."""
        self._materialize_pending()
        self.shutdown()

    # -- plumbing -------------------------------------------------------

    def queue_edits(self, edits) -> None:
        self._outbox.extend(edits)

    def _die(self, k: int, what: str):
        detail = f"worker {k} (pid {self._procs[k].pid}) exited"
        self.shutdown()
        raise WorkerCrash(what, detail)

    def _send(self, k: int, msg, what: str) -> None:
        try:
            self._conns[k].send(msg)
        except (OSError, ValueError):
            self._die(k, what)

    def _recv(self, k: int, what: str):
        """Wait for worker *k*'s reply, watching for its death.

        Polling (not a blocking recv) because under fork each child
        inherits the previously created pipe fds, so EOF on a dead
        worker's pipe is not delivered until its siblings exit too.
        """
        conn, proc = self._conns[k], self._procs[k]
        while True:
            if conn.poll(0.05):
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError):
                    self._die(k, what)
                if kind == "err":
                    raise RuntimeError(f"pool worker {k} failed in {what}:\n{payload}")
                return payload
            if not proc.is_alive():
                if conn.poll(0):
                    continue  # final reply raced the exit; drain it
                self._die(k, what)

    def _materialize_pending(self) -> None:
        """Fetch snapshots still owed to older results before a new run
        overwrites the workers' snapshot stores."""
        watched, self._watched = self._watched, []
        for ref in watched:
            snap = ref()
            if snap is not None and not snap.loaded:
                snap._load()

    def watch(self, snap: LazySnapshot) -> None:
        self._watched.append(weakref.ref(snap))

    def _ensure_ready(self, what: str) -> None:
        self._materialize_pending()
        if not self.started:
            self._start()
        if self._outbox:
            edits, self._outbox = self._outbox, []
            for k in range(len(self._conns)):
                self._send(k, ("edits", edits), what)
            for k in range(len(self._conns)):
                self._recv(k, what)
            self.stats.edits_shipped += len(edits)

    # -- case blocks ----------------------------------------------------

    def run_blocks(self, cases, blocks) -> list[_BlockResult]:
        """Scatter contiguous case blocks, one per worker; gather in order."""
        self._ensure_ready("edit shipment")
        names = [f"case block {a}..{b - 1}" for a, b in blocks]
        for k, (a, b) in enumerate(blocks):
            self._send(k, ("block", a, cases[a:b]), names[k])
        parts = [self._recv(k, names[k]) for k in range(len(blocks))]
        self.stats.runs += 1
        if parts and all(p.warm for p in parts):
            self.stats.warm_runs += 1
        return parts

    def fetch_case(self, k: int, index: int) -> dict[str, Waveform]:
        what = f"snapshot fetch (case {index})"
        self._send(k, ("fetch", index), what)
        header, encs = self._recv(k, what)
        if header is not None:
            self._names[k] = header
        names = self._names[k]
        dec = self._decoders[k]
        self.stats.snapshots_fetched += 1
        return {name: dec.decode(enc) for name, enc in zip(names, encs)}

    # -- single-case partitioning --------------------------------------

    def run_partition(self, case, plan: PartitionPlan):
        """Drive the boundary exchange to the global fixed point.

        Returns per-partition ``(values, gating, stats, timings)`` tuples
        with the values already decoded, ready for
        :meth:`Engine.adopt_values` on the parent.
        """
        self._ensure_ready("edit shipment")
        nparts = len(plan.parts)
        for k in range(nparts):
            self._send(
                k,
                (
                    "pinit",
                    case,
                    plan.parts[k],
                    plan.out_nets[k],
                    plan.owned_nets[k],
                ),
                f"partition {k} init",
            )
        changed = [self._recv(k, f"partition {k} init") for k in range(nparts)]
        self.stats.partitions = nparts
        rounds = 0
        # Generous valve against a boundary-level oscillation: a legal
        # synchronous design converges (unique fixed point); an illegal
        # one should fail loudly here, not spin.
        max_rounds = self.session.config.max_evals_per_component
        while any(changed):
            rounds += 1
            if rounds > max_rounds:
                self.shutdown()
                raise RuntimeError(
                    "partition boundary exchange did not converge after "
                    f"{max_rounds} rounds — is the design legal?"
                )
            outbound: list[list] = [[] for _ in range(nparts)]
            for k, items in enumerate(changed):
                dec = self._decoders[k]
                for name, enc in items:
                    base, lanes = dec.decode_value(enc)
                    for j in plan.readers.get(name, ()):
                        if j != k:
                            outbound[j].append(
                                (name, self._encoders[j].encode_value(base, lanes))
                            )
            active = [j for j in range(nparts) if outbound[j]]
            if not active:
                break
            what = f"boundary round {rounds}"
            for j in active:
                self._send(j, ("pround", outbound[j]), what)
            changed = [[] for _ in range(nparts)]
            for j in active:
                changed[j] = self._recv(j, what)
        self.stats.boundary_rounds += rounds
        finals = []
        for k in range(nparts):
            self._send(k, ("pfinish",), f"partition {k} finish")
        for k in range(nparts):
            fin = self._recv(k, f"partition {k} finish")
            dec = self._decoders[k]
            fin.values = [
                (name, *dec.decode_value(enc)) for name, enc in fin.values
            ]
            finals.append(fin)
        self.stats.runs += 1
        return finals


# ----------------------------------------------------------------------
# one-shot entry points
# ----------------------------------------------------------------------


def verify_parallel(
    circuit: Circuit,
    config: VerifyConfig | None = None,
    jobs: int | None = None,
    constraints=None,
) -> VerificationResult:
    """Verify ``circuit`` with the work sharded over ``jobs`` processes.

    A one-shot wrapper over a pooled :class:`repro.session.Session`: with
    several cases the case axis is sharded into contiguous blocks; with a
    single case the circuit itself is partitioned along rank boundaries
    (falling back to serial when it is too small to split).  Violations,
    waveforms and listings are byte-identical to
    ``TimingVerifier(circuit, config).verify()``; ``result.phases`` holds
    max-reduced wall times, ``result.phases_cpu`` summed worker CPU times
    and ``result.pool`` the pool counters.  The result's lazy snapshots
    keep the pool alive until they are read or dropped.  Raises
    :class:`WorkerCrash` when a worker dies mid-run.
    """
    from .session import Session

    if jobs is None:
        jobs = os.cpu_count() or 1
    return Session(
        circuit, config, constraints=constraints, jobs=jobs
    ).verify()


# ----------------------------------------------------------------------
# section sharding (modular verification, section 2.5.2)
# ----------------------------------------------------------------------


def _verify_section(payload: bytes):
    name, circuit, config, constraints = pickle.loads(payload)
    return TimingVerifier(circuit, config, constraints=constraints).verify()


def verify_sections_parallel(
    sections: dict[str, Circuit],
    config: VerifyConfig | None = None,
    jobs: int | None = None,
    constraints=None,
):
    """Verify each section in its own worker process, one section per task.

    ``constraints`` is either a mapping from section name to that
    section's resolved constraint set, or a single set applied to every
    section (the sets are name-resolved, so per-section mappings are the
    normal shape).  Returns the same :class:`~repro.modular.ModularResult`
    the serial :func:`repro.modular.verify_sections` produces: sections
    are rebuilt in their original insertion order regardless of
    completion order, and the interface-consistency check runs in the
    parent.  A worker death is reported as :class:`WorkerCrash` naming
    the section whose task failed.
    """
    from .modular import ModularResult, check_interfaces, verify_sections

    names = list(sections)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or len(names) <= 1:
        return verify_sections(sections, config, constraints=constraints)
    config = config or VerifyConfig()

    def constraints_of(name):
        if isinstance(constraints, dict):
            return constraints.get(name)
        return constraints

    payloads = {
        name: pickle.dumps(
            (name, sections[name], config, constraints_of(name)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        for name in names
    }
    results: dict[str, VerificationResult] = {}
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(names)), mp_context=_pool_context()
    ) as pool:
        futures = {name: pool.submit(_verify_section, payloads[name]) for name in names}
        for name in names:
            try:
                results[name] = futures[name].result()
            except BrokenProcessPool as exc:
                raise WorkerCrash(f"section {name!r}", str(exc) or "worker died") from exc
    out = ModularResult()
    for name in names:
        out.sections[name] = results[name]
    out.interface_issues = check_interfaces(sections)
    return out
