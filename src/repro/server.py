"""Verification-as-a-service: a long-lived session server (``scald-serve``).

The thesis's Timing Verifier was a batch program: read the design, verify,
print listings, exit.  The :class:`~repro.session.Session` object makes
the expensive state (expanded circuit, stored waveforms, memo caches,
levelized ranks, intern table) survive across runs — this module puts a
wire protocol in front of it so an editor, a CI hook, or a cockpit UI can
hold a design open and iterate edit → re-verify without paying the
from-scratch cost each time.

Stdlib only (``http.server`` + JSON), matching the library's no-dependency
rule.  The protocol:

========  ==============================  ========================================
method    path                            body / effect
========  ==============================  ========================================
GET       /healthz                        liveness + session count
GET       /sessions                       list open sessions
POST      /sessions                       {"source"|"path", "sdc_source"|"sdc_path",
                                          "name", "jobs"} → {"id"}
DELETE    /sessions/{id}                  drop the session
POST      /sessions/{id}/verify           full run → verdict + listings + profile
POST      /sessions/{id}/edit             {"edits": [edit docs]} (see
                                          :func:`repro.incremental.edit_from_doc`)
POST      /sessions/{id}/reverify         {"prescreen": bool} → incremental run
POST      /sessions/{id}/sta              static windows/domains/slack report
POST      /sessions/{id}/fmax             analytic Fmax report
========  ==============================  ========================================

Every response is a JSON object; errors are ``{"error": ...}`` with an
HTTP 4xx status.  Sessions are not thread-safe, so each one carries a
lock and requests against the same session serialize; requests against
different sessions run concurrently (:class:`ThreadingHTTPServer`).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .incremental import edit_from_doc
from .netlist.circuit import NetlistError
from .reporting.stafmt import fmax_doc, sta_doc
from .reporting.stats import profile_json
from .session import Session

__all__ = ["SessionClient", "SessionServer", "main"]


class ServerError(Exception):
    """A request-level failure carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Entry:
    """One open session plus the lock that serializes access to it."""

    __slots__ = ("session", "lock", "name")

    def __init__(self, session: Session, name: str) -> None:
        self.session = session
        self.lock = threading.Lock()
        self.name = name


class SessionStore:
    """The server's table of open sessions, itself thread-safe."""

    def __init__(self) -> None:
        self._entries: dict[str, _Entry] = {}
        self._lock = threading.Lock()
        self._counter = 0

    def create(self, session: Session, name: str) -> str:
        with self._lock:
            self._counter += 1
            sid = f"s{self._counter}"
            self._entries[sid] = _Entry(session, name)
            return sid

    def get(self, sid: str) -> _Entry:
        with self._lock:
            entry = self._entries.get(sid)
        if entry is None:
            raise ServerError(404, f"no such session: {sid}")
        return entry

    def drop(self, sid: str) -> None:
        with self._lock:
            entry = self._entries.pop(sid, None)
        if entry is None:
            raise ServerError(404, f"no such session: {sid}")
        with entry.lock:
            entry.session.close()  # reap the session's worker pool, if any

    def listing(self) -> list[dict]:
        with self._lock:
            items = list(self._entries.items())
        return [
            {
                "id": sid,
                "name": entry.name,
                "circuit": entry.session.circuit.name,
                "runs": entry.session.runs,
            }
            for sid, entry in items
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _verify_doc(result) -> dict:
    """A :class:`VerificationResult` as wire data (verdict + listings)."""
    return {
        "ok": result.ok,
        "violations": [v.message() for v in result.violations],
        "error_listing": result.error_listing(),
        "summary_listing": result.summary_listing(),
        "xref_assumed_stable": list(result.xref_assumed_stable),
        "profile": profile_json(result),
    }


def _reverify_doc(inc) -> dict:
    """An :class:`IncrementalResult` as wire data."""
    doc = _verify_doc(inc.result)
    doc["incremental"] = inc.incremental
    doc["prescreen"] = None
    if inc.prescreen is not None:
        doc["prescreen"] = {
            "ok": inc.prescreen.ok,
            "worst_slack_ps": inc.prescreen.worst_slack_ps,
            "cdc_errors": inc.prescreen.cdc_errors,
            "indeterminate": inc.prescreen.indeterminate,
            "seconds": inc.prescreen.seconds,
        }
    return doc


class _Handler(BaseHTTPRequestHandler):
    """Route one request.  The store rides on the server object."""

    server_version = "scald-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            raise ServerError(400, f"bad JSON body: {exc}") from exc
        if not isinstance(doc, dict):
            raise ServerError(400, "request body must be a JSON object")
        return doc

    def _reply(self, doc: dict, status: int = 200) -> None:
        payload = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _dispatch(self, method: str) -> None:
        try:
            doc = self._route(method)
        except ServerError as exc:
            self._reply({"error": str(exc)}, status=exc.status)
        except (NetlistError, ValueError) as exc:
            # Design/edit errors are the client's problem, not a crash.
            self._reply({"error": str(exc)}, status=400)
        except Exception as exc:  # pragma: no cover - defensive
            self._reply({"error": f"internal error: {exc}"}, status=500)
        else:
            self._reply(doc)

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    def _route(self, method: str) -> dict:
        store: SessionStore = self.server.store  # type: ignore[attr-defined]
        parts = [p for p in self.path.split("?")[0].split("/") if p]

        if method == "GET" and parts == ["healthz"]:
            return {"ok": True, "sessions": len(store)}
        if method == "GET" and parts == ["sessions"]:
            return {"sessions": store.listing()}
        if method == "POST" and parts == ["sessions"]:
            return self._create(store)
        if len(parts) == 2 and parts[0] == "sessions" and method == "DELETE":
            store.drop(parts[1])
            return {"ok": True}
        if len(parts) == 3 and parts[0] == "sessions" and method == "POST":
            entry = store.get(parts[1])
            with entry.lock:
                return self._session_op(entry.session, parts[2])
        raise ServerError(404, f"no route: {method} {self.path}")

    def _create(self, store: SessionStore) -> dict:
        body = self._body()
        source = body.get("source")
        path = body.get("path")
        if (source is None) == (path is None):
            raise ServerError(
                400, "provide exactly one of 'source' or 'path'"
            )
        sdc_source = body.get("sdc_source")
        sdc_path = body.get("sdc_path")
        if sdc_source is not None and sdc_path is not None:
            raise ServerError(
                400, "provide at most one of 'sdc_source' or 'sdc_path'"
            )
        jobs = body.get("jobs", 1)
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ServerError(400, "'jobs' must be a positive integer")
        if path is not None:
            session = Session.from_file(path, sdc=sdc_path, jobs=jobs)
            if sdc_source is not None:
                from .constraints import parse_sdc, resolve

                commands, findings = parse_sdc(sdc_source, filename="<sdc>")
                session.constraints = resolve(
                    commands,
                    session.circuit,
                    filename="<sdc>",
                    parse_findings=findings,
                )
            name = body.get("name") or path
        else:
            if sdc_path is not None:
                raise ServerError(
                    400, "'sdc_path' requires 'path' (use 'sdc_source')"
                )
            name = body.get("name") or "<source>"
            session = Session.from_source(
                source, sdc_source=sdc_source, name=name, jobs=jobs
            )
        sid = store.create(session, name)
        return {"id": sid, "circuit": session.circuit.name}

    def _session_op(self, session: Session, op: str) -> dict:
        if op == "verify":
            return _verify_doc(session.verify())
        if op == "edit":
            body = self._body()
            docs = body.get("edits")
            if not isinstance(docs, list):
                raise ServerError(400, "'edits' must be a list of edit docs")
            session.edit(*[edit_from_doc(d) for d in docs])
            return {"ok": True, "applied": len(docs)}
        if op == "reverify":
            body = self._body()
            prescreen = bool(body.get("prescreen", True))
            return _reverify_doc(session.reverify(prescreen=prescreen))
        if op == "sta":
            return sta_doc(session.sta())
        if op == "fmax":
            return fmax_doc(session.fmax())
        raise ServerError(404, f"no such operation: {op}")


class SessionServer(ThreadingHTTPServer):
    """The listening server; ``.store`` holds the open sessions."""

    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), _Handler)
        self.store = SessionStore()
        self.verbose = False

    @property
    def port(self) -> int:
        return self.server_address[1]


class SessionClient:
    """A thin blocking client for tests, scripts and ``tools/check.sh``.

    Each method returns the decoded JSON body; non-2xx responses raise
    :class:`ServerError` with the server's message.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.conn = HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self.conn.close()

    def _request(self, method: str, path: str, body: dict | None = None):
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        self.conn.request(method, path, body=payload, headers=headers)
        resp = self.conn.getresponse()
        doc = json.loads(resp.read())
        if resp.status >= 400:
            raise ServerError(resp.status, doc.get("error", "request failed"))
        return doc

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def sessions(self) -> list[dict]:
        return self._request("GET", "/sessions")["sessions"]

    def create(self, **body) -> str:
        return self._request("POST", "/sessions", body)["id"]

    def delete(self, sid: str) -> None:
        self._request("DELETE", f"/sessions/{sid}")

    def verify(self, sid: str) -> dict:
        return self._request("POST", f"/sessions/{sid}/verify")

    def edit(self, sid: str, *edit_docs: dict) -> dict:
        return self._request(
            "POST", f"/sessions/{sid}/edit", {"edits": list(edit_docs)}
        )

    def reverify(self, sid: str, prescreen: bool = True) -> dict:
        return self._request(
            "POST", f"/sessions/{sid}/reverify", {"prescreen": prescreen}
        )

    def sta(self, sid: str) -> dict:
        return self._request("POST", f"/sessions/{sid}/sta")

    def fmax(self, sid: str) -> dict:
        return self._request("POST", f"/sessions/{sid}/fmax")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="scald-serve",
        description="Serve timing-verification sessions over HTTP/JSON.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8041,
        help="TCP port; 0 picks an ephemeral port (printed as JSON)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log each request to stderr"
    )
    args = parser.parse_args(argv)

    server = SessionServer(args.host, args.port)
    server.verbose = args.verbose
    # One machine-readable line so wrappers (check.sh, tests) can discover
    # an ephemeral port without parsing log text.
    print(
        json.dumps({"host": args.host, "port": server.port}),
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
