"""Module delay determination for self-timed design (section 4.2.1).

The thesis's first future-work item: in a self-timed (speed-independent)
system, each module signals completion itself, and "the verification
technique developed here could be used to determine the delay of the basic
modules, to determine how much of a delay needs to be inserted in the
circuit which specifies when the module is 'done'".

:func:`module_delay` does exactly that: it takes a combinational module,
stimulates every input with a change at time zero, runs the ordinary
symbolic evaluation, and reads off when each output can start and stop
changing — the module's min/max propagation delay.  :func:`done_delay_ns`
turns the result into the delay a matched-delay "done" line must carry.
"""

from __future__ import annotations

from dataclasses import dataclass

from .core.config import EXACT, VerifyConfig
from .core.engine import Engine
from .core.timeline import ns_to_ps
from .core.values import CHANGE, STABLE
from .core.waveform import Waveform
from .netlist.circuit import Circuit


@dataclass(frozen=True)
class ModuleDelay:
    """The measured propagation-delay envelope of one module output."""

    output: str
    min_ps: int  # earliest the output can start changing after the inputs
    max_ps: int  # latest it can still be changing (the settle time)

    @property
    def min_ns(self) -> float:
        return self.min_ps / 1000

    @property
    def max_ns(self) -> float:
        return self.max_ps / 1000

    def __str__(self) -> str:
        return f"{self.output}: {self.min_ns:.2f}/{self.max_ns:.2f} ns"


def module_delay(
    circuit: Circuit,
    inputs: list[str],
    outputs: list[str],
    config: VerifyConfig | None = None,
) -> dict[str, ModuleDelay]:
    """Measure the min/max delay from a module's inputs to its outputs.

    Every listed input is driven with a simultaneous potential change at
    time zero (CHANGE for one engine tick, STABLE for the rest of the
    analysis period); all other undriven signals keep their assertions.
    The returned envelope for each output is the window in which it may be
    changing, i.e. the module's propagation-delay range.

    The analysis period must comfortably exceed the module's settle time;
    the circuit's own period is used, so build the module with a generous
    one.

    Raises ``ValueError`` when an output never changes (no combinational
    path from any stimulated input) or never settles inside the period.
    """
    engine = Engine(circuit, config or EXACT)
    engine.initialize()
    period = circuit.period_ps
    stimulus = Waveform.from_intervals(period, STABLE, [(0, 1, CHANGE)])
    for name in inputs:
        net = circuit.nets.get(name)
        if net is None:
            raise KeyError(f"no input named {name!r}")
        rep = circuit.find(net)
        engine.values[rep] = stimulus
        engine._fixed.add(rep)
    for comp in circuit.iter_components():
        if not comp.prim.is_checker:
            engine._enqueue(comp)
    engine.run()

    results: dict[str, ModuleDelay] = {}
    for name in outputs:
        wf = engine.waveform_of(name).materialized()
        if wf.is_constant and wf.segments[0][0] is CHANGE:
            raise ValueError(
                f"output {name!r} does not settle within the {period} ps "
                "analysis period"
            )
        runs = [
            (start, end)
            for start, end, value in wf.iter_segments()
            if value is CHANGE
        ]
        if not runs:
            raise ValueError(
                f"output {name!r} never changes: no path from the inputs"
            )
        start = min(s for s, _e in runs)
        # The stimulus change occupies [0, 1 ps]; its width rides along to
        # the settle edge and is not part of the module's delay.
        end = max(e for _s, e in runs) - 1
        if end >= period:
            raise ValueError(
                f"output {name!r} does not settle within the {period} ps "
                "analysis period"
            )
        results[name] = ModuleDelay(output=name, min_ps=start, max_ps=end)
    return results


def done_delay_ns(
    delays: dict[str, ModuleDelay], margin_ns: float = 0.0
) -> float:
    """The delay a matched 'done' line must carry: the slowest output's
    settle time plus a designer margin."""
    worst = max(d.max_ps for d in delays.values())
    return worst / 1000 + margin_ns
