"""Typed circuit edits and the dirty-cone bookkeeping behind re-verify.

The thesis pitches the Timing Verifier as a designer-facing tool used
across many edit-verify iterations of a large design; this module is the
edit half of that loop.  Each edit class below mutates the expanded
:class:`~repro.netlist.Circuit` *in place* — so a from-scratch run on the
same circuit object is always available as the correctness oracle — and
folds what it dirtied into a :class:`PendingDirty` accumulator:

* ``components`` — primitives whose next evaluation may produce a new
  output; :meth:`Engine.incremental_begin` seeds the worklist with them
  and lets event propagation walk the rest of the cone.
* ``stale_connections`` — connections whose prepared-input cache entries
  must be purged because their effective wire delay changed (the cache
  validates by raw-waveform identity only) or because the Connection
  object itself was retired (``id()`` reuse hazard).
* ``topology`` — the driver/load maps and levelized ranks need a rebuild.

Everything outside the dirty cone keeps its stored waveform verbatim; the
uniqueness of the fixed point (the same argument behind §2.7 case
analysis and the parallel case blocks) makes the incremental result
byte-identical to a from-scratch run — and
:func:`assert_incremental_equivalent` checks exactly that, the way
``repro.wordcheck`` polices the word-level engine against bit blasting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .hdl import parse_signal_name
from .netlist.circuit import (
    Circuit,
    Component,
    Connection,
    Net,
    NetlistError,
    normalize_param,
)
from .core.timeline import ns_to_ps

__all__ = [
    "AssertionEdit",
    "ConstraintsEdit",
    "Edit",
    "ParamEdit",
    "PendingDirty",
    "ReconnectEdit",
    "WireDelayEdit",
    "apply_edit",
    "assert_incremental_equivalent",
    "edit_from_doc",
    "edit_to_doc",
]


@dataclass
class PendingDirty:
    """What the edits since the last (re)verification have dirtied."""

    components: dict[str, Component] = field(default_factory=dict)
    stale_connections: list[Connection] = field(default_factory=list)
    topology: bool = False
    #: Structural validation must re-run: set by edits that touch what the
    #: structural lint rules inspect (pins/connections and assertions).
    #: Wire-delay and timing-parameter edits never affect those rules, so
    #: the session reuses its cached warnings for them.
    structure: bool = False

    def clear(self) -> None:
        self.components.clear()
        self.stale_connections.clear()
        self.topology = False
        self.structure = False

    def merge_component(self, comp: Component) -> None:
        if not comp.prim.is_checker:
            self.components[comp.name] = comp


def _touch_net(circuit: Circuit, rep: Net, pending: PendingDirty) -> None:
    """Dirty every reader of ``rep`` and purge their default-delay entries.

    Used whenever the effective wire delay seen at ``rep``'s input
    connections may have changed — a direct wire-delay edit, or a
    topology edit under the per-load delay rule (section 3.3), where the
    delay of *every* connection on the net depends on the load count.
    """
    for comp in circuit.iter_components():
        touched = False
        for _pin, conn in comp.input_pins():
            if circuit.find(conn.net) is rep:
                touched = True
                if conn.wire_delay_ps is None:
                    pending.stale_connections.append(conn)
        if touched:
            pending.merge_component(comp)


def _driver_of(circuit: Circuit, rep: Net) -> Component | None:
    for comp in circuit.iter_components():
        for _pin, conn in comp.output_pins():
            if circuit.find(conn.net) is rep:
                return comp
    return None


def _require_net(circuit: Circuit, name: str) -> Net:
    net = circuit.nets.get(name)
    if net is None:
        raise NetlistError(f"unknown net {name!r}")
    return circuit.find(net)


def _require_component(circuit: Circuit, name: str) -> Component:
    comp = circuit.components.get(name)
    if comp is None:
        raise NetlistError(f"unknown component {name!r}")
    return comp


@dataclass(frozen=True)
class WireDelayEdit:
    """Override (or restore the default of) one net's interconnection delay.

    ``delay_ns`` is an ``(early, late)`` range in nanoseconds — the API
    boundary unit, converted to integer picoseconds on apply — or None to
    fall back to the config default (section 2.5.3's per-signal override,
    e.g. the thesis setting the register-file address lines to 0.0/6.0).
    """

    net: str
    delay_ns: tuple[float, float] | None

    def apply(self, circuit: Circuit, pending: PendingDirty) -> None:
        rep = _require_net(circuit, self.net)
        if self.delay_ns is None:
            rep.wire_delay_ps = None
        else:
            lo, hi = self.delay_ns
            lo_ps, hi_ps = ns_to_ps(float(lo)), ns_to_ps(float(hi))
            if lo_ps < 0 or hi_ps < lo_ps:
                raise NetlistError(
                    f"bad wire delay range {self.delay_ns!r} for {self.net!r}"
                )
            rep.wire_delay_ps = (lo_ps, hi_ps)
        _touch_net(circuit, rep, pending)


@dataclass(frozen=True)
class ParamEdit:
    """Swap one or more of a primitive's (timing) parameters.

    Values use the builder's nanosecond surface and are normalized by the
    same :func:`~repro.netlist.circuit.normalize_param` path, so the edit
    is indistinguishable from having built the circuit this way.  Editing
    a checker's setup/hold re-runs only that checker (the checker-verdict
    memo keys on parameters); editing a model delay dirties the primitive
    itself (the evaluation memo keys on every delay parameter, so stale
    hits are impossible).  ``width`` is structural, not timing, and is
    rejected.
    """

    component: str
    params: Mapping[str, object]

    def apply(self, circuit: Circuit, pending: PendingDirty) -> None:
        comp = _require_component(circuit, self.component)
        specs = {p.name: p for p in comp.prim.params}
        for name, value in self.params.items():
            spec = specs.get(name)
            if spec is None:
                raise NetlistError(
                    f"{comp.prim.name} does not accept parameter {name!r}"
                )
            if name == "width":
                raise NetlistError(
                    "width is structural; rebuild the circuit instead of "
                    "editing it"
                )
            comp.params[name] = normalize_param(comp.prim, spec, value)
        pending.merge_component(comp)


@dataclass(frozen=True)
class ReconnectEdit:
    """Rewire one pin of a component to a different net.

    ``target`` uses the builder's string form ``[-]NAME[ &DIRECTIVES]``,
    so inversion and evaluation directives ride along.  Rewiring is a
    topology change: the driver/load maps and levelized ranks are rebuilt
    at the next re-verify, and the readers of both the old and new nets
    are dirtied (under the per-load wire-delay rule their effective
    delays change with the load count).
    """

    component: str
    pin: str
    target: str

    def apply(self, circuit: Circuit, pending: PendingDirty) -> None:
        comp = _require_component(circuit, self.component)
        prim = comp.prim
        valid = set(prim.all_fixed_pins())
        if self.pin not in valid and not (
            prim.variadic_input
            and self.pin.startswith(prim.variadic_input)
            and self.pin[len(prim.variadic_input):].isdigit()
        ):
            raise NetlistError(f"{prim.name} has no pin {self.pin!r}")
        old = comp.pins.get(self.pin)
        conn = circuit._as_connection(self.target, width=comp.width)
        comp.pins[self.pin] = conn
        pending.topology = True
        pending.structure = True
        pending.merge_component(comp)
        reps = {circuit.find(conn.net)}
        if old is not None:
            pending.stale_connections.append(old)
            reps.add(circuit.find(old.net))
        for rep in reps:
            _touch_net(circuit, rep, pending)
            driver = _driver_of(circuit, rep)
            if driver is not None:
                pending.merge_component(driver)


@dataclass(frozen=True)
class AssertionEdit:
    """Replace (or remove, with None) the timing assertion on a net.

    ``assertion`` is the bare spec suffix as it would appear in the
    signal name — ``".P2-3"``, ``".S0-6"``, ``".C4 P0-1"`` — parsed by
    the same grammar.  The net's *name* keeps its original spelling (it
    is the lookup key everywhere); only the parsed assertion changes,
    exactly as if the design had been entered with the new spec.
    """

    net: str
    assertion: str | None

    def apply(self, circuit: Circuit, pending: PendingDirty) -> None:
        rep = _require_net(circuit, self.net)
        old = rep.assertion
        if self.assertion is None:
            new = None
        else:
            _base, new = parse_signal_name(f"{rep.base_name} {self.assertion}")
            if new is None:
                raise NetlistError(
                    f"{self.assertion!r} is not a timing assertion"
                )
        rep.assertion = new
        pending.structure = True
        old_clock = old is not None and old.kind.is_clock
        new_clock = new is not None and new.kind.is_clock
        if old_clock != new_clock:
            # Clock-ness gates both rank edges and the fixed/driven
            # classification; ranks need a rebuild (classes are re-derived
            # by the reclassification scan regardless).
            pending.topology = True
        driver = _driver_of(circuit, rep)
        if driver is not None:
            # A formerly pinned net handed back to its driver holds a
            # stale asserted waveform until the driver re-stores.
            pending.merge_component(driver)


@dataclass(frozen=True)
class ConstraintsEdit:
    """Swap the run's SDC constraint set (or clear it entirely).

    Applied by the session, not the circuit: the new set is parsed and
    resolved against the expanded circuit, the engine's constraints token
    is bumped (invalidating every cached checker verdict), and the
    reclassification scan re-derives ``set_input_delay`` port waveforms.
    """

    source: str | None = None
    path: str | None = None
    clear: bool = False

    def load(self, circuit: Circuit):
        given = sum(x is not None for x in (self.source, self.path)) + bool(
            self.clear
        )
        if given != 1:
            raise NetlistError(
                "ConstraintsEdit needs exactly one of source=, path= or "
                "clear=True"
            )
        if self.clear:
            return None
        if self.path is not None:
            from .constraints import load_constraints

            return load_constraints(self.path, circuit)
        from .constraints import parse_sdc, resolve

        commands, findings = parse_sdc(self.source, filename="<edit>")
        return resolve(
            commands, circuit, filename="<edit>", parse_findings=findings
        )


Edit = (
    WireDelayEdit | ParamEdit | ReconnectEdit | AssertionEdit | ConstraintsEdit
)


def apply_edit(circuit: Circuit, edit: Edit, pending: PendingDirty) -> None:
    """Apply one circuit edit, folding its dirt into ``pending``.

    :class:`ConstraintsEdit` is session-scoped (it owns no circuit state)
    and must go through :meth:`repro.session.Session.edit` instead.
    """
    if isinstance(edit, ConstraintsEdit):
        raise NetlistError(
            "ConstraintsEdit applies to a session, not a circuit; use "
            "Session.edit()"
        )
    edit.apply(circuit, pending)


# ----------------------------------------------------------------------
# wire format (the scald-serve JSON edit documents)
# ----------------------------------------------------------------------

def edit_to_doc(edit: Edit) -> dict:
    """One edit as a plain-JSON document (the server's wire format)."""
    if isinstance(edit, WireDelayEdit):
        return {
            "kind": "wire_delay",
            "net": edit.net,
            "delay_ns": list(edit.delay_ns) if edit.delay_ns else None,
        }
    if isinstance(edit, ParamEdit):
        return {
            "kind": "param",
            "component": edit.component,
            "params": dict(edit.params),
        }
    if isinstance(edit, ReconnectEdit):
        return {
            "kind": "reconnect",
            "component": edit.component,
            "pin": edit.pin,
            "target": edit.target,
        }
    if isinstance(edit, AssertionEdit):
        return {"kind": "assertion", "net": edit.net, "assertion": edit.assertion}
    if isinstance(edit, ConstraintsEdit):
        if edit.clear:
            return {"kind": "sdc", "clear": True}
        return {"kind": "sdc", "source": edit.source, "path": edit.path}
    raise NetlistError(f"cannot serialize edit {edit!r}")


_DOC_KEYS = {
    "wire_delay": {"kind", "net", "delay_ns"},
    "param": {"kind", "component", "params"},
    "reconnect": {"kind", "component", "pin", "target"},
    "assertion": {"kind", "net", "assertion"},
    "sdc": {"kind", "clear", "source", "path"},
}


def edit_from_doc(doc: Mapping[str, object]) -> Edit:
    """Rebuild a typed edit from its JSON document.

    Unknown keys are rejected: a misspelled field (``delay`` for
    ``delay_ns``) would otherwise be silently dropped and the edit
    applied as something else — over HTTP that reads as success.
    """
    kind = doc.get("kind")
    allowed = _DOC_KEYS.get(str(kind))
    if allowed is not None:
        extra = set(doc) - allowed
        if extra:
            raise NetlistError(
                f"unknown key(s) {sorted(extra)} in {kind!r} edit "
                f"(allowed: {sorted(allowed)})"
            )
    if kind == "wire_delay":
        delay = doc.get("delay_ns")
        return WireDelayEdit(
            net=str(doc["net"]),
            delay_ns=tuple(delay) if delay is not None else None,  # type: ignore[arg-type]
        )
    if kind == "param":
        params = doc["params"]
        if not isinstance(params, Mapping):
            raise NetlistError("param edit needs a params object")
        return ParamEdit(
            component=str(doc["component"]),
            params={
                k: tuple(v) if isinstance(v, list) else v
                for k, v in params.items()
            },
        )
    if kind == "reconnect":
        return ReconnectEdit(
            component=str(doc["component"]),
            pin=str(doc["pin"]),
            target=str(doc["target"]),
        )
    if kind == "assertion":
        assertion = doc.get("assertion")
        return AssertionEdit(
            net=str(doc["net"]),
            assertion=str(assertion) if assertion is not None else None,
        )
    if kind == "sdc":
        if doc.get("clear"):
            return ConstraintsEdit(clear=True)
        source = doc.get("source")
        path = doc.get("path")
        return ConstraintsEdit(
            source=str(source) if source is not None else None,
            path=str(path) if path is not None else None,
        )
    raise NetlistError(f"unknown edit kind {kind!r}")


# ----------------------------------------------------------------------
# the correctness gate
# ----------------------------------------------------------------------

def assert_incremental_equivalent(session, prescreen: bool = False):
    """Re-verify ``session`` incrementally and police it against scratch.

    Runs :meth:`Session.reverify` and a from-scratch
    :class:`~repro.core.verifier.TimingVerifier` on the *same* edited
    circuit, then asserts the outputs a user can observe are
    byte-identical: the error listing, the per-case summary listings, and
    the assumed-stable cross-reference.  (Work counters legitimately
    differ — an incremental run pays for the cone, not the circuit.)
    Returns the incremental result.  This is the same differential-oracle
    pattern ``repro.wordcheck`` uses for word-level evaluation.
    """
    from .core.verifier import TimingVerifier

    inc = session.reverify(prescreen=prescreen)
    scratch = TimingVerifier(
        session.circuit, session.config, constraints=session.constraints
    ).verify()
    _assert_results_match(inc.result, scratch)
    return inc


def _assert_results_match(inc, scratch) -> None:
    def diff(label: str, got: str, want: str) -> None:
        if got == want:
            return
        got_lines, want_lines = got.splitlines(), want.splitlines()
        for i, (g, w) in enumerate(zip(got_lines, want_lines)):
            if g != w:
                raise AssertionError(
                    f"incremental {label} diverges from scratch at line "
                    f"{i + 1}:\n  incremental: {g!r}\n  scratch:     {w!r}"
                )
        raise AssertionError(
            f"incremental {label} length {len(got_lines)} != scratch "
            f"{len(want_lines)}"
        )

    if inc.xref_assumed_stable != scratch.xref_assumed_stable:
        raise AssertionError(
            "incremental cross-reference diverges from scratch:\n"
            f"  incremental: {inc.xref_assumed_stable}\n"
            f"  scratch:     {scratch.xref_assumed_stable}"
        )
    diff("error listing", inc.error_listing(), scratch.error_listing())
    if len(inc.cases) != len(scratch.cases):
        raise AssertionError(
            f"incremental ran {len(inc.cases)} cases, scratch "
            f"{len(scratch.cases)}"
        )
    for case in range(len(scratch.cases)):
        diff(
            f"case {case} summary",
            inc.summary_listing(case=case),
            scratch.summary_listing(case=case),
        )
