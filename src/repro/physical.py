"""The physical-design interconnect substrate (sections 1.3.2 and 2.5.3).

The thesis consumes interconnection delays computed elsewhere: "the detailed
transmission line analysis required to determine the possible range of
signal delays of a given interconnection is done in the SCALD Physical
Design Subsystem."  That subsystem is not in the thesis, so this module is
the substitution: a first-order transmission-line model good enough to
produce the per-signal min/max delay ranges the Verifier needs, plus the
reflection flagging the thesis describes:

    "For interconnections having propagation times longer than roughly a
    quarter period of the voltage wave, a detailed analysis of the
    transmission line characteristics is required ... and whether there are
    any voltage wave reflections ... of sufficient magnitude to cause extra
    clock transitions to occur ... Runs with such reflections on them can
    be flagged by the transmission line simulator, allowing the timing
    verification process to flag them if they affect edge-sensitive
    inputs."

Model: a run of length L with N lumped loads on a line of impedance Z0
terminated into Zt.  Propagation delay per cm is the unloaded line delay
scaled by the loading factor sqrt(1 + C_load/C_line); the min/max range
covers layout and process variation.  A run is reflection-risky when its
one-way propagation time exceeds a quarter of the signal's rise time (the
"quarter period of the voltage wave") *and* the termination mismatch
reflects more than a threshold fraction of the wave.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .core.timeline import ns_to_ps
from .netlist.circuit import Circuit, Net


@dataclass(frozen=True)
class Technology:
    """Electrical parameters of an interconnect technology.

    Defaults approximate the S-1's wire-wrapped/stripline ECL-10K world:
    ~0.07 ns/cm unloaded propagation, 1 pF per ECL load against 1 pF/cm of
    line capacitance, 2 ns edges, 50-ohm lines.
    """

    unloaded_delay_ns_per_cm: float = 0.07
    line_capacitance_pf_per_cm: float = 1.0
    load_capacitance_pf: float = 1.0
    rise_time_ns: float = 2.0
    z0_ohms: float = 50.0
    #: layout/process spread applied to the nominal delay: (min, max) factors
    delay_spread: tuple[float, float] = (0.85, 1.25)
    #: reflection coefficient magnitude above which a long run is flagged
    reflection_threshold: float = 0.25


ECL10K = Technology()


@dataclass(frozen=True)
class WireRun:
    """One physical signal run, driver to loads."""

    net: str
    length_cm: float
    loads: int = 1
    termination_ohms: float | None = None  # None: properly terminated

    def __post_init__(self) -> None:
        if self.length_cm < 0:
            raise ValueError(f"negative run length on {self.net!r}")
        if self.loads < 1:
            raise ValueError(f"run {self.net!r} must have at least one load")


@dataclass(frozen=True)
class RunAnalysis:
    """The physical subsystem's verdict on one run."""

    net: str
    delay_ps: tuple[int, int]
    propagation_ns: float
    reflection_coefficient: float
    reflection_risk: bool
    reason: str = ""

    def __str__(self) -> str:
        lo, hi = self.delay_ps
        flag = "  ** REFLECTION RISK" if self.reflection_risk else ""
        return (
            f"{self.net}: {lo / 1000:.2f}/{hi / 1000:.2f} ns "
            f"(gamma={self.reflection_coefficient:+.2f}){flag}"
        )


def analyze_run(run: WireRun, tech: Technology = ECL10K) -> RunAnalysis:
    """First-order transmission-line analysis of one run."""
    line_c = tech.line_capacitance_pf_per_cm * max(run.length_cm, 1e-9)
    loading = math.sqrt(
        1.0 + (run.loads * tech.load_capacitance_pf) / line_c
    )
    nominal_ns = run.length_cm * tech.unloaded_delay_ns_per_cm * loading
    lo = ns_to_ps(round(nominal_ns * tech.delay_spread[0], 4))
    hi = ns_to_ps(round(nominal_ns * tech.delay_spread[1], 4))

    if run.termination_ohms is None:
        gamma = 0.0
    else:
        zt = run.termination_ohms
        gamma = (zt - tech.z0_ohms) / (zt + tech.z0_ohms)
    # "Propagation times longer than roughly a quarter period of the
    # voltage wave" — the wave's period is set by the edge rate.
    long_line = nominal_ns > tech.rise_time_ns / 4.0
    risky = long_line and abs(gamma) > tech.reflection_threshold
    reason = ""
    if risky:
        reason = (
            f"one-way delay {nominal_ns:.2f} ns exceeds a quarter of the "
            f"{tech.rise_time_ns:.1f} ns edge and the termination reflects "
            f"{abs(gamma):.0%} of the wave"
        )
    return RunAnalysis(
        net=run.net,
        delay_ps=(lo, hi),
        propagation_ns=nominal_ns,
        reflection_coefficient=gamma,
        reflection_risk=risky,
        reason=reason,
    )


def edge_sensitive_nets(circuit: Circuit) -> set[str]:
    """Nets feeding edge-sensitive inputs: storage-element clocks/enables
    and checker clock pins — the inputs a reflection could falsely clock."""
    sensitive: set[str] = set()
    for comp in circuit.iter_components():
        for pin, conn in comp.input_pins():
            if pin in ("CLOCK", "ENABLE", "CK"):
                sensitive.add(circuit.find(conn.net).name)
    return sensitive


@dataclass
class PhysicalReport:
    """Outcome of applying a physical design to a circuit."""

    analyses: dict[str, RunAnalysis] = field(default_factory=dict)
    applied: list[str] = field(default_factory=list)
    unknown_nets: list[str] = field(default_factory=list)
    #: reflection-risky runs that feed edge-sensitive inputs — the flags
    #: the thesis says the verification process must surface
    edge_sensitive_reflections: list[RunAnalysis] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.edge_sensitive_reflections

    def listing(self) -> str:
        lines = ["PHYSICAL DESIGN INTERCONNECT ANALYSIS", ""]
        for name in sorted(self.analyses):
            lines.append(f"  {self.analyses[name]}")
        if self.unknown_nets:
            lines.append("")
            lines.append(
                f"  runs naming unknown nets (ignored): "
                f"{', '.join(sorted(self.unknown_nets))}"
            )
        lines.append("")
        if self.edge_sensitive_reflections:
            lines.append("  REFLECTIONS ON EDGE-SENSITIVE INPUTS:")
            for a in self.edge_sensitive_reflections:
                lines.append(f"    {a.net}: {a.reason}")
        else:
            lines.append("  no reflections reach edge-sensitive inputs")
        return "\n".join(lines)


def apply_physical_design(
    circuit: Circuit,
    runs: list[WireRun],
    tech: Technology = ECL10K,
) -> PhysicalReport:
    """Compute and install calculated interconnection delays.

    Section 2.5.3: "If the interconnection delays can be calculated from
    detailed simulation of the transmission line properties ... then these
    delay values are used by the Timing Verifier."  Each analysed run's
    delay range replaces the Verifier's default for that net; runs with
    reflection risk that feed edge-sensitive inputs are reported.
    """
    report = PhysicalReport()
    sensitive = edge_sensitive_nets(circuit)
    for run in runs:
        analysis = analyze_run(run, tech)
        report.analyses[run.net] = analysis
        net = circuit.nets.get(run.net)
        if net is None:
            report.unknown_nets.append(run.net)
            continue
        rep = circuit.find(net)
        rep.wire_delay_ps = analysis.delay_ps
        report.applied.append(rep.name)
        if analysis.reflection_risk and rep.name in sensitive:
            report.edge_sensitive_reflections.append(analysis)
    return report
