"""Verification-run configuration (the design rules of section 3.3).

Defaults reproduce the rules used to examine the S-1 Mark IIA:

* default interconnection delay 0.0/2.0 ns for every signal, unless the
  designer specified a different range for that signal;
* precision clocks (``.P``) skewed +1.0/-1.0 ns from their stated times;
* non-precision clocks (``.C``) skewed +5.0/-5.0 ns.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .timeline import ns_to_ps


@dataclass(frozen=True)
class VerifyConfig:
    """Tunable parameters of a verification run."""

    default_wire_delay_ns: tuple[float, float] = (0.0, 2.0)
    precision_clock_skew_ns: tuple[float, float] = (-1.0, 1.0)
    nonprecision_clock_skew_ns: tuple[float, float] = (-5.0, 5.0)
    #: Fixed-point safety valve: a component re-evaluated more often than
    #: this is reported as oscillating (an unbroken combinational loop).
    max_evals_per_component: int = 200
    #: Check generated signals against their stable assertions
    #: (section 2.5.2); disable to reproduce checker-only runs.
    check_assertions: bool = True
    #: Emit POSSIBLE_GLITCH warnings from the pulse-width checker.
    glitch_warnings: bool = True
    #: The "refined rule for future designs" of section 3.3: extra maximum
    #: interconnection delay per additional load on a run.  Zero reproduces
    #: the thesis's flat default rule; explicit per-net/per-connection wire
    #: delays are never adjusted.
    wire_delay_per_load_ns: float = 0.0
    #: Rank components by combinational depth (registers, latches and
    #: assertion-fixed nets break cycles) and drain the worklist in rank
    #: order, so a primitive is evaluated only after its fan-in has settled
    #: at the current wave.  Order never affects the fixed point, only how
    #: many redundant evaluations it takes to reach it.
    levelized_scheduling: bool = True
    #: Hash-cons waveforms through a weak-value intern table so equal
    #: values share one instance (identity-fast convergence comparison and
    #: shared caches of derived forms).
    intern_waveforms: bool = True
    #: Memoize primitive evaluation: prepared inputs per connection and an
    #: LRU over the gate/register/latch/mux models keyed on everything that
    #: can affect their output.
    memoize_evaluation: bool = True
    #: Maximum entries in the primitive-evaluation LRU.
    eval_memo_size: int = 8192

    def naive(self) -> "VerifyConfig":
        """This configuration with every engine optimisation disabled.

        The naive FIFO engine is the reference oracle: the differential
        tests require the optimized engine to produce ``==``-identical
        results to this variant on every workload.
        """
        return replace(
            self,
            levelized_scheduling=False,
            intern_waveforms=False,
            memoize_evaluation=False,
        )

    @property
    def wire_delay_per_load_ps(self) -> int:
        return ns_to_ps(self.wire_delay_per_load_ns)

    @property
    def default_wire_delay_ps(self) -> tuple[int, int]:
        lo, hi = self.default_wire_delay_ns
        return ns_to_ps(lo), ns_to_ps(hi)

    def clock_skew_ns(self, precision: bool) -> tuple[float, float]:
        return (
            self.precision_clock_skew_ns
            if precision
            else self.nonprecision_clock_skew_ns
        )


#: A configuration with no default wire delay and no clock skew — useful in
#: unit tests and for textbook-exact reproductions of the figure circuits.
EXACT = VerifyConfig(
    default_wire_delay_ns=(0.0, 0.0),
    precision_clock_skew_ns=(0.0, 0.0),
    nonprecision_clock_skew_ns=(0.0, 0.0),
)
