"""Time model for the Timing Verifier.

The thesis expresses time in two unit systems (section 2.3): *absolute* units
(nanoseconds) for component timing properties, and *clock units* for clocks
and assertions, where one clock unit is a designer-chosen fraction of the
clock period (6.25 ns — one eighth of the 50 ns cycle — in the Chapter III
examples).

Internally every time is an integer count of picoseconds.  Integer time makes
the modular interval arithmetic over the clock period exact, so the engine's
fixed-point convergence test can be a structural equality comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

#: Picoseconds per nanosecond; the resolution of the internal time base.
PS_PER_NS = 1000


def ns_to_ps(t_ns: float) -> int:
    """Convert a time in nanoseconds to integer picoseconds.

    Uses round-half-even via ``Fraction`` to avoid binary-float surprises on
    values such as ``6.25`` or ``0.1``.
    """
    return round(Fraction(str(t_ns)) * PS_PER_NS)


def ps_to_ns(t_ps: int) -> float:
    """Convert integer picoseconds back to (float) nanoseconds."""
    return t_ps / PS_PER_NS


def format_ns(t_ps: int) -> str:
    """Format a picosecond time as nanoseconds the way the thesis prints them.

    The listings in Figures 3-10 and 3-11 print times like ``11.5`` and
    ``47.5``; we use one decimal when exact, more when needed.
    """
    ns = t_ps / PS_PER_NS
    text = f"{ns:.1f}"
    if abs(float(text) - ns) > 1e-12:
        text = f"{ns:.3f}".rstrip("0")
    return text


@dataclass(frozen=True)
class Timebase:
    """The time context of a verification run.

    Attributes:
        period_ps: circuit clock period (section 2.2) in picoseconds.  If
            sections of the design run at different rates, this is the least
            common multiple of their periods.
        clock_unit_ps: duration of one designer clock unit in picoseconds
            (section 2.3).  Clock and stable assertions are written in these
            units and scale automatically with the clock rate.
    """

    period_ps: int
    clock_unit_ps: int

    def __post_init__(self) -> None:
        if self.period_ps <= 0:
            raise ValueError(f"period must be positive, got {self.period_ps} ps")
        if self.clock_unit_ps <= 0:
            raise ValueError(
                f"clock unit must be positive, got {self.clock_unit_ps} ps"
            )

    @classmethod
    def from_ns(cls, period_ns: float, clock_unit_ns: float | None = None) -> "Timebase":
        """Build a timebase from nanosecond quantities.

        Args:
            period_ns: the clock period.
            clock_unit_ns: one clock unit; defaults to one eighth of the
                period, the convention used throughout Chapter III.
        """
        period_ps = ns_to_ps(period_ns)
        if clock_unit_ns is None:
            if period_ps % 8:
                raise ValueError(
                    "default clock unit is period/8 but the period "
                    f"{period_ns} ns is not divisible by 8 in picoseconds"
                )
            unit_ps = period_ps // 8
        else:
            unit_ps = ns_to_ps(clock_unit_ns)
        return cls(period_ps=period_ps, clock_unit_ps=unit_ps)

    @property
    def period_ns(self) -> float:
        return ps_to_ns(self.period_ps)

    @property
    def clock_unit_ns(self) -> float:
        return ps_to_ns(self.clock_unit_ps)

    @property
    def units_per_period(self) -> float:
        """How many clock units make up one period (8 in the thesis examples)."""
        return self.period_ps / self.clock_unit_ps

    def units_to_ps(self, units: float) -> int:
        """Convert a clock-unit time (assertion syntax) to picoseconds."""
        return round(Fraction(str(units)) * self.clock_unit_ps)

    def wrap(self, t_ps: int) -> int:
        """Reduce a time into the canonical ``[0, period)`` window.

        Assertion times are taken modulo the cycle (section 3.2: "the
        assertion specification is taken to be modulo the cycle time").
        """
        return t_ps % self.period_ps


def scaled_timebase(base: Timebase, period_ps: int) -> Timebase:
    """The timebase of the same design run at a different clock period.

    Clock-unit times scale with the cycle (section 2.3: a clock unit is a
    designer-chosen *fraction* of the period), so the unit is stretched by
    the same ratio as the period.  The unit may become a non-integer
    :class:`~fractions.Fraction` of a picosecond — ``units_to_ps`` still
    rounds every derived time to integer picoseconds, so all downstream
    interval arithmetic stays exact.  This is the knob the Fmax solvers
    (``repro.sta.parametric``) turn to re-run a design at a trial period.
    """
    if period_ps == base.period_ps:
        return base
    unit = Fraction(base.clock_unit_ps) * period_ps / base.period_ps
    return Timebase(period_ps=period_ps, clock_unit_ps=unit)


def wrap_interval(start: int, end: int, period: int) -> list[tuple[int, int]]:
    """Split a possibly wrapping interval into non-wrapping pieces.

    ``start`` and ``end`` are arbitrary integers; the interval covers
    ``end - start`` picoseconds beginning at ``start`` (mod period).  Returns
    one or two ``(lo, hi)`` pairs with ``0 <= lo < hi <= period``.  An
    interval at least one period long covers everything.
    """
    if end < start:
        raise ValueError(f"interval end {end} precedes start {start}")
    if end - start >= period:
        return [(0, period)]
    lo = start % period
    hi = lo + (end - start)
    if hi <= period:
        return [(lo, hi)] if hi > lo else []
    return [(lo, period), (0, hi - period)]


def interval_overlap(a: tuple[int, int], b: tuple[int, int]) -> int:
    """Length of overlap of two non-wrapping intervals."""
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    return max(0, hi - lo)


def circular_distance_forward(t_from: int, t_to: int, period: int) -> int:
    """Distance travelled moving forward in time from ``t_from`` to ``t_to``."""
    return (t_to - t_from) % period
