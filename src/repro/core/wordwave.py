"""Word-valued waveforms: vectors with sparse per-bit divergence.

The thesis's Table 3-2 hinges on vector symmetry: the S-1 design needs
8 282 vector primitives where a bit-blasted representation needs 53 833,
because almost every bit of a datapath behaves identically.  A
:class:`WordWave` makes that symmetry explicit at the value level: a
width-*N* signal is one shared *base* :class:`~repro.core.waveform.Waveform`
plus a sparse ``overrides`` map holding full waveforms **only for the lanes
that differ**.  A fully uniform vector — the overwhelmingly common case —
costs exactly one scalar waveform, regardless of width.

Canonical form: the base is the *plurality* lane value (ties broken toward
the lowest lane index), and no override equals the base.  Two WordWaves
built from the same per-lane values therefore compare equal regardless of
construction order, which is what lets the engine use ``==`` as its
convergence test on vector nets exactly as it does on scalars.

Soundness: a WordWave never merges lanes by approximation — ``lane(i)`` is
always the exact scalar waveform of bit *i*, so a possible signal change on
any bit stays visible (the value-algebra soundness rule).  The per-lane
waveforms carry their own skew and eval strings unchanged.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from .waveform import Waveform


class WordWave:
    """An immutable width-``N`` vector of per-lane waveforms.

    ``base`` is the waveform shared by every lane not listed in
    ``overrides``; ``overrides`` maps lane index -> waveform for the
    (typically few) diverged lanes.  Use :meth:`uniform` /
    :meth:`from_lanes` rather than the constructor so the plurality-base
    canonicalization is applied.
    """

    __slots__ = ("width", "base", "overrides", "_hash")

    def __init__(
        self,
        width: int,
        base: Waveform,
        overrides: Mapping[int, Waveform] | None = None,
    ) -> None:
        if width < 1:
            raise ValueError(f"WordWave width must be >= 1, got {width}")
        clean: dict[int, Waveform] = {}
        for lane, wf in (overrides or {}).items():
            if not 0 <= lane < width:
                raise ValueError(
                    f"override lane {lane} outside width-{width} vector"
                )
            if wf != base:
                clean[lane] = wf
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "overrides", clean)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("WordWave is immutable")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def uniform(cls, width: int, wf: Waveform) -> "WordWave":
        """Every lane carries ``wf`` — the Table 3-2 symmetric case."""
        return cls(width, wf)

    @classmethod
    def from_lanes(cls, lanes: Sequence[Waveform]) -> "WordWave":
        """Canonicalize an explicit per-lane list.

        The base becomes the plurality waveform (ties toward the lowest
        lane index) so the representation is independent of which lane a
        caller happened to treat as "the" vector value.
        """
        if not lanes:
            raise ValueError("WordWave needs at least one lane")
        counts: dict[Waveform, int] = {}
        first_at: dict[Waveform, int] = {}
        for i, wf in enumerate(lanes):
            counts[wf] = counts.get(wf, 0) + 1
            first_at.setdefault(wf, i)
        base = max(counts, key=lambda wf: (counts[wf], -first_at[wf]))
        overrides = {i: wf for i, wf in enumerate(lanes) if wf != base}
        return cls(len(lanes), base, overrides)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    @property
    def is_uniform(self) -> bool:
        return not self.overrides

    @property
    def period(self) -> int:
        return self.base.period

    def lane(self, i: int) -> Waveform:
        """The exact scalar waveform of bit ``i % width``.

        The modulo mirrors the bit-blast convention: a narrower vector
        read by a wider primitive repeats circularly.
        """
        i %= self.width
        return self.overrides.get(i, self.base)

    def lanes(self) -> list[Waveform]:
        """All lanes, densely, lane 0 first."""
        return [self.overrides.get(i, self.base) for i in range(self.width)]

    def distinct(self) -> list[Waveform]:
        """The distinct lane waveforms, base first then by lane order."""
        out = [self.base]
        for i in sorted(self.overrides):
            wf = self.overrides[i]
            if wf not in out:
                out.append(wf)
        return out

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[Waveform], Waveform]) -> "WordWave":
        """Apply ``fn`` once per *distinct* lane waveform.

        This is the word-level evaluation contract: the cost is the number
        of divergence groups, not the vector width.  The result is
        re-canonicalized because ``fn`` may merge lanes back together.
        """
        mapped: dict[Waveform, Waveform] = {}
        for wf in self.distinct():
            mapped[wf] = fn(wf)
        return WordWave(
            self.width,
            mapped[self.base],
            {i: mapped[wf] for i, wf in self.overrides.items()},
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, WordWave):
            return NotImplemented
        return (
            self.width == other.width
            and self.base == other.base
            and self.overrides == other.overrides
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(
                (
                    self.width,
                    self.base,
                    frozenset(self.overrides.items()),
                )
            )
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        if self.is_uniform:
            return f"<WordWave w={self.width} uniform {self.base!r}>"
        return (
            f"<WordWave w={self.width} base={self.base!r} "
            f"diverged={sorted(self.overrides)}>"
        )


def lane_groups(
    words: Sequence[WordWave], width: int
) -> list[tuple[list[int], tuple[Waveform, ...]]]:
    """Group lanes ``0..width-1`` by their tuple of input lane waveforms.

    Lane ``i`` of a width-``width`` primitive reads lane ``i % w`` of each
    width-``w`` input (the bit-blast convention).  Two lanes land in the
    same group exactly when every input feeds them the same waveform, so a
    model evaluated once per group is exact — no lane's possible change is
    ever hidden behind another lane's value.

    Returns ``(lanes, input_tuple)`` pairs in order of each group's lowest
    lane, covering every lane exactly once.
    """
    groups: dict[tuple[Waveform, ...], list[int]] = {}
    for i in range(width):
        key = tuple(word.lane(i) for word in words)
        groups.setdefault(key, []).append(i)
    return [(lanes, key) for key, lanes in groups.items()]


def word_apply(
    fn: Callable[..., Waveform],
    inputs: Sequence[WordWave],
    width: int | None = None,
) -> WordWave:
    """Evaluate a scalar model over a vector, once per divergence group.

    ``fn`` takes one scalar :class:`Waveform` per input and returns the
    scalar output; ``word_apply`` lifts it to WordWaves.  With uniform
    inputs this is a single call — the 6.5x event saving of Table 3-2.
    """
    if width is None:
        width = max((w.width for w in inputs), default=1)
    lanes: list[Waveform | None] = [None] * width
    for group, key in lane_groups(inputs, width):
        out = fn(*key)
        for i in group:
            lanes[i] = out
    return WordWave.from_lanes(lanes)  # type: ignore[arg-type]
