"""Behavioural models of the Timing Verifier primitives (section 2.4).

Each model maps full-period input waveforms to full-period output waveforms.
Models receive inputs that the engine has already prepared (interconnection
delay applied, complements taken, evaluation directives consumed) and apply
the component's own propagation delay themselves.

The register and latch models follow Figures 2-1 and 2-2: the output is set
to CHANGE during the interval after the clock edge determined by the
component's minimum and maximum delays, and to the captured data value — or
STABLE when the data is not a known constant at the edge — for the rest of
the cycle.  Capturing STABLE rather than UNKNOWN is what lets the fixed
point converge from the all-UNKNOWN initial state without ever learning
signal values (section 2.9).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .algebra import combine, pointwise, wave_and, wave_chg, wave_or, wave_xor
from .values import (
    CHANGE,
    CONSTANT_VALUES,
    FALL,
    ONE,
    RISE,
    STABLE,
    UNKNOWN,
    ZERO,
    Value,
    is_changing,
    is_constant,
    is_stable,
    value_either,
    value_not,
)
from .waveform import Waveform
from .wordwave import WordWave, word_apply

GateFn = Callable[[Sequence[Waveform]], Waveform]

GATE_FUNCTIONS: dict[str, GateFn] = {
    "AND": wave_and,
    "NAND": wave_and,
    "OR": wave_or,
    "NOR": wave_or,
    "XOR": wave_xor,
    "XNOR": wave_xor,
    "CHG": wave_chg,
    "BUF": lambda wfs: wfs[0],
    "NOT": lambda wfs: wfs[0],
    "DELAY": lambda wfs: wfs[0],
}

#: The input level that makes a gate transparent to its remaining input —
#: assumed for the other inputs under the ``&A``/``&H`` directives
#: (section 2.6: "assume that the other inputs are enabling the gate").
ENABLING_LEVEL: dict[str, Value] = {
    "AND": ONE,
    "NAND": ONE,
    "OR": ZERO,
    "NOR": ZERO,
    "XOR": ZERO,
    "XNOR": ZERO,
}


def eval_gate(
    prim_name: str,
    inputs: Sequence[Waveform],
    delay: tuple[int, int],
    inverting: bool,
) -> Waveform:
    """Evaluate a combinational gate or the CHG function.

    ``inputs`` are the prepared input waveforms; ``delay`` is the effective
    gate delay in picoseconds (already zeroed by a ``Z``/``H`` directive if
    one applied); ``inverting`` complements the result (NAND/NOR/XNOR/NOT).
    """
    fn = GATE_FUNCTIONS[prim_name]
    out = fn(list(inputs))
    if inverting:
        out = out.mapped(value_not)
    return out.delayed(*delay)


def mux_value(sel: Sequence[Value], data: Sequence[Value]) -> Value:
    """The multiplexer output value for one time instant.

    With constant select lines the addressed input passes through.  With
    stable-but-unknown selects the output is *some* fixed input —
    ``value_either`` over the candidates.  A changing select may switch the
    output between inputs, which is only harmless when every input carries
    the same known constant.
    """
    if any(v is UNKNOWN for v in sel):
        return UNKNOWN
    if all(is_constant(v) for v in sel):
        index = 0
        for bit, v in enumerate(sel):
            if v is ONE:
                index |= 1 << bit
        return data[index]
    candidates = list(data)
    folded = candidates[0]
    for v in candidates[1:]:
        folded = value_either(folded, v)
    if all(is_stable(v) or is_constant(v) for v in sel):
        # Selection is frozen for the whole cycle; output is one input.
        return folded
    # Select lines are moving: the output can hop between inputs.
    if all(is_constant(v) for v in candidates) and len(set(candidates)) == 1:
        return candidates[0]
    if folded is UNKNOWN:
        return UNKNOWN
    return CHANGE


def eval_mux(
    selects: Sequence[Waveform],
    data: Sequence[Waveform],
    delay: tuple[int, int],
    select_delay: tuple[int, int],
) -> Waveform:
    """Evaluate an N-way multiplexer (Figure 3-6).

    The select input may carry an additional delay on top of the data-path
    delay, as in the 2-input multiplexer chip definition (0.3/1.2 ns extra
    on ``S``).
    """
    n_sel = len(selects)
    shifted_sel = [s.delayed(*select_delay) for s in selects]

    def fn(vals: Sequence[Value]) -> Value:
        return mux_value(vals[:n_sel], vals[n_sel:])

    out = combine(fn, [*shifted_sel, *data])
    return out.delayed(*delay)


# ---------------------------------------------------------------------------
# storage elements
# ---------------------------------------------------------------------------


def _captured_value(data: Waveform, window: tuple[int, int]) -> Value:
    """The value a storage element captures over a clock-edge window.

    A known constant throughout the window is captured exactly; anything
    else — STABLE, changing data (a separate checker reports the setup
    violation), or UNKNOWN — captures STABLE (Figure 2-1: "unless the DATA
    input is a true or false during the rising edge of CLOCK, the output
    will be set to the STABLE value for the rest of the cycle").
    """
    lo, hi = window
    seen = data.materialized().values_in_window(lo, hi)
    if len(seen) == 1:
        v = seen.pop()
        if v in CONSTANT_VALUES:
            return v
    return STABLE


def _paint_clocked_output(
    period: int,
    edges: list[tuple[int, int]],
    captured: list[Value],
    delay: tuple[int, int],
) -> Waveform:
    """Build the output waveform of an edge-triggered element.

    ``edges`` are the clock's rising windows; each produces a CHANGE
    interval ``[window_start + dmin, window_end + dmax]`` and the matching
    captured value holds from there until the next edge's CHANGE interval
    begins (wrapping around the period).
    """
    dmin, dmax = delay
    if not edges:
        return Waveform.constant(period, STABLE)
    starts = [lo + dmin for lo, _hi in edges]
    ends = [hi + dmax for _lo, hi in edges]
    intervals: list[tuple[int, int, Value]] = []
    n = len(edges)
    for k in range(n):
        next_start = starts[(k + 1) % n]
        while next_start <= ends[k]:
            next_start += period
        intervals.append((ends[k], next_start, captured[k]))
    for k in range(n):
        # Keep the change observable even with a sharp clock and a fixed
        # delay: an instantaneous S-to-S transition would otherwise vanish
        # from the canonical representation.
        span = min(max(ends[k] - starts[k], 1), period)
        intervals.append((starts[k], starts[k] + span, CHANGE))
    return Waveform.from_intervals(period, captured[-1], intervals)


def _sr_inactive(ctl: Waveform | None) -> bool:
    """True when an asynchronous SET/RESET control is tied inactive.

    A constant-ZERO control stays constant ZERO through the delay and the
    skew fold, and ``_sr_overlay_value(base, ZERO, ZERO)`` is ``base``, so
    the whole overlay is the identity and may be skipped.  Any control that
    could ever leave ZERO takes the full overlay path — worst-case is
    always safe; optimism is a bug.
    """
    return ctl is None or (ctl.is_constant and ctl.segments[0][0] is ZERO)


def _sr_overlay_value(base: Value, s: Value, r: Value) -> Value:
    """Apply the asynchronous SET/RESET behaviour of Figure 2-1 at an instant.

    Both inactive: clocked behaviour.  SET alone forces 1; RESET alone
    forces 0; both asserted give UNDEFINED; changing controls give CHANGE;
    stable-but-unknown controls leave the output possibly overridden.
    """
    if s is UNKNOWN or r is UNKNOWN:
        return UNKNOWN
    if s is ZERO and r is ZERO:
        return base
    if s is ONE and r is ONE:
        return UNKNOWN
    if s is ONE and r is ZERO:
        return ONE
    if r is ONE and s is ZERO:
        return ZERO
    if is_changing(s) or is_changing(r):
        return CHANGE
    # At least one control is STABLE: it may or may not be asserted.
    out = base
    if s in (STABLE, ONE):
        out = value_either(out, ONE)
    if r in (STABLE, ONE):
        out = value_either(out, ZERO)
    return out


def eval_register(
    clock: Waveform,
    data: Waveform,
    delay: tuple[int, int],
    set_: Waveform | None = None,
    reset: Waveform | None = None,
) -> Waveform:
    """Evaluate the edge-triggered register models of Figure 2-1."""
    period = clock.period
    if clock.is_fully_unknown:
        base = Waveform.constant(period, UNKNOWN)
    else:
        clkm = clock.materialized()
        edges = clkm.rising_windows()
        captured = [_captured_value(data, window) for window in edges]
        base = _paint_clocked_output(period, edges, captured, delay)
    if _sr_inactive(set_) and _sr_inactive(reset):
        return base
    setm = (set_ or Waveform.constant(period, ZERO)).delayed(*delay).materialized()
    resetm = (reset or Waveform.constant(period, ZERO)).delayed(*delay).materialized()
    return pointwise(
        lambda vals: _sr_overlay_value(vals[0], vals[1], vals[2]),
        [base.with_skew((0, 0)), setm, resetm],
    )


def _latch_value(en: Value, d: Value, held: Value) -> Value:
    """The transparent-latch output at one instant (Figure 2-2).

    ``en`` is the (materialized, delayed) enable, ``d`` the delayed data,
    ``held`` the value captured at the most recent enable falling edge.
    """
    if en is UNKNOWN:
        return UNKNOWN
    if en is ONE:
        return d
    if en is ZERO:
        return held
    if en is RISE or en is CHANGE:
        # The latch may be opening: output may step to the new data value.
        if d is UNKNOWN or held is UNKNOWN:
            return UNKNOWN
        if is_constant(d) and d == held:
            return d
        return CHANGE
    if en is FALL:
        # Closing: the output was already following the data; latching a
        # stable value causes no output transition.
        if d is UNKNOWN:
            return UNKNOWN
        return d if is_stable(d) else CHANGE
    # en is STABLE: the latch is frozen open or closed, we don't know which,
    # but the enable is not moving within the cycle.
    if d is UNKNOWN or held is UNKNOWN:
        return UNKNOWN
    if is_stable(d) and is_stable(held):
        return d if (is_constant(d) and d == held) else STABLE
    return CHANGE


def eval_gate_word(
    prim_name: str,
    inputs: Sequence[WordWave],
    delay: tuple[int, int],
    inverting: bool,
    width: int | None = None,
) -> WordWave:
    """Word-level gate evaluation: one model run per divergence group.

    Exactly :func:`eval_gate` applied lane-by-lane, but shared across all
    lanes whose inputs coincide — with fully uniform vectors (the common
    case) a single scalar evaluation covers the whole word.
    """
    return word_apply(
        lambda *lanes: eval_gate(prim_name, lanes, delay, inverting),
        inputs,
        width,
    )


def eval_mux_word(
    selects: Sequence[WordWave],
    data: Sequence[WordWave],
    delay: tuple[int, int],
    select_delay: tuple[int, int],
    width: int | None = None,
) -> WordWave:
    """Word-level multiplexer: :func:`eval_mux` once per divergence group."""
    n_sel = len(selects)
    return word_apply(
        lambda *lanes: eval_mux(
            lanes[:n_sel], lanes[n_sel:], delay=delay, select_delay=select_delay
        ),
        [*selects, *data],
        width,
    )


def eval_register_word(
    clock: WordWave,
    data: WordWave,
    delay: tuple[int, int],
    set_: WordWave | None = None,
    reset: WordWave | None = None,
    width: int | None = None,
) -> WordWave:
    """Word-level register: :func:`eval_register` once per divergence group."""
    period = clock.period
    zero = Waveform.constant(period, ZERO)
    inputs = [
        clock,
        data,
        set_ if set_ is not None else WordWave.uniform(1, zero),
        reset if reset is not None else WordWave.uniform(1, zero),
    ]
    return word_apply(
        lambda ck, d, s, r: eval_register(
            clock=ck,
            data=d,
            delay=delay,
            set_=None if set_ is None else s,
            reset=None if reset is None else r,
        ),
        inputs,
        width,
    )


def eval_latch_word(
    enable: WordWave,
    data: WordWave,
    delay: tuple[int, int],
    set_: WordWave | None = None,
    reset: WordWave | None = None,
    width: int | None = None,
) -> WordWave:
    """Word-level latch: :func:`eval_latch` once per divergence group."""
    period = enable.period
    zero = Waveform.constant(period, ZERO)
    inputs = [
        enable,
        data,
        set_ if set_ is not None else WordWave.uniform(1, zero),
        reset if reset is not None else WordWave.uniform(1, zero),
    ]
    return word_apply(
        lambda en, d, s, r: eval_latch(
            enable=en,
            data=d,
            delay=delay,
            set_=None if set_ is None else s,
            reset=None if reset is None else r,
        ),
        inputs,
        width,
    )


def eval_latch(
    enable: Waveform,
    data: Waveform,
    delay: tuple[int, int],
    set_: Waveform | None = None,
    reset: Waveform | None = None,
) -> Waveform:
    """Evaluate the latch models of Figure 2-2."""
    period = enable.period
    if enable.is_fully_unknown:
        base = Waveform.constant(period, UNKNOWN)
    else:
        enm = enable.delayed(*delay).materialized()
        dm = data.delayed(*delay).materialized()
        falls = enm.falling_windows()
        if falls:
            captured = [_captured_value(dm, window) for window in falls]
            intervals: list[tuple[int, int, Value]] = []
            n = len(falls)
            for k in range(n):
                start = falls[k][1]
                end = falls[(k + 1) % n][1]
                while end <= start:
                    end += period
                intervals.append((start, end, captured[k]))
            held_wf = Waveform.from_intervals(period, captured[-1], intervals)
        else:
            held_wf = Waveform.constant(period, STABLE)
        base = pointwise(
            lambda vals: _latch_value(vals[0], vals[1], vals[2]),
            [enm, dm, held_wf],
        )
        # Opening transitions at sharp enable edges are instantaneous and
        # would vanish from the canonical segment list; paint an explicit
        # (at least 1 ps) CHANGE window unless data and held value are the
        # same known constant.
        paints: list[tuple[int, int, Value]] = []
        for r0, r1 in enm.rising_windows():
            if r1 > r0:
                continue  # a widened window: the sweep already saw RISE
            d_vals = dm.values_in_window(r0, r1)
            h_vals = held_wf.values_in_window(r0, r1)
            if (
                d_vals == h_vals
                and len(d_vals) == 1
                and next(iter(d_vals)) in CONSTANT_VALUES
            ):
                continue
            value = (
                UNKNOWN if UNKNOWN in (d_vals | h_vals) else CHANGE
            )
            paints.append((r0, r0 + 1, value))
        base = base.overlaid(paints)
    if _sr_inactive(set_) and _sr_inactive(reset):
        return base
    setm = (set_ or Waveform.constant(period, ZERO)).delayed(*delay).materialized()
    resetm = (reset or Waveform.constant(period, ZERO)).delayed(*delay).materialized()
    return pointwise(
        lambda vals: _sr_overlay_value(vals[0], vals[1], vals[2]),
        [base.with_skew((0, 0)), setm, resetm],
    )
