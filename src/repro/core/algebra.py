"""Combination of waveforms through the seven-value functions.

This module implements the rule of section 2.8 governing the skew field:

* a signal that is merely **delayed** keeps its skew in the separate field
  (:meth:`Waveform.delayed` already does this);
* when **two or more changing signals are combined**, their skews can no
  longer be represented by a single field, so each operand's skew is first
  folded into its value list (RISE/FALL/CHANGE) and the fold results are
  combined pointwise.  An operand that never changes (a constant 0/1/S/U)
  imposes no transitions of its own, so a single changing operand may pass
  through a gate with its skew intact — this is what keeps a gated clock's
  pulse width exact in Figure 2-8.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from .values import (
    STABLE_VALUES,
    Value,
    transition_value,
    value_and_n,
    value_chg,
    value_or_n,
    value_xor_n,
)
from .waveform import Waveform

NaryFn = Callable[[Sequence[Value]], Value]


def _merged_cuts(waveforms: Sequence[Waveform]) -> list[int]:
    period = waveforms[0].period
    cuts = {0, period}
    for wf in waveforms:
        cuts.update(start for start, _end, _v in wf.iter_segments())
    return sorted(cuts)


def pointwise(fn: NaryFn, waveforms: Sequence[Waveform]) -> Waveform:
    """Combine skew-free waveforms pointwise through ``fn``.

    All operands must share a period.  Operands carrying skew must be
    materialized by the caller first (:func:`combine` does this); a stray
    skew here would be silently ignored, so it is rejected.

    Soundness at boundaries: an input boundary whose output value is the
    same on both sides (e.g. ``1 -> STABLE`` through an AND whose other
    input is STABLE — both sides read ``S``) can still carry a real output
    transition.  Wherever that happens the boundary is kept visible as a
    1 ps change marker, computed by pushing the inputs' *transition values*
    through ``fn``; a dominated boundary (masked by a controlling 0/1) maps
    to a stable value and gets no marker.
    """
    if not waveforms:
        raise ValueError("need at least one waveform")
    period = waveforms[0].period
    for wf in waveforms:
        if wf.period != period:
            raise ValueError("waveform periods differ")
        if wf.has_skew:
            raise ValueError("pointwise combination requires skew-free operands")
    cuts = _merged_cuts(waveforms)
    values = []
    for lo in cuts[:-1]:
        values.append(fn([wf.value_at(lo) for wf in waveforms]))
    segments: list[tuple[Value, int]] = []
    n = len(values)
    for k, (lo, hi) in enumerate(zip(cuts, cuts[1:])):
        before = values[(k - 1) % n]
        here = values[k]
        width = hi - lo
        if before == here and here in STABLE_VALUES and width > 0:
            # The boundary at `lo` would be invisible; check whether the
            # inputs' transitions can still reach the output there.
            boundary = fn(
                [
                    transition_value(
                        wf.value_at(lo - 1), wf.value_at(lo)
                    )
                    for wf in waveforms
                ]
            )
            if boundary not in STABLE_VALUES:
                segments.append((boundary, 1))
                width -= 1
        if width:
            segments.append((here, width))
    return Waveform(period, segments)


def combine(fn: NaryFn, waveforms: Sequence[Waveform]) -> Waveform:
    """Combine waveforms through ``fn`` with the section 2.8 skew rule.

    If at most one operand has transitions, that operand's skew survives in
    the result's skew field (its transitions are the only ones, so the
    result is just a reshaped copy of its timing).  Otherwise every operand
    is materialized and the result carries no separate skew.
    """
    changing = [wf for wf in waveforms if not wf.is_constant]
    if len(changing) <= 1:
        # Constants carry no transitions, so their skew is vacuous and the
        # single changing operand's skew transfers to the result intact.
        carrier_skew = changing[0].skew if changing else (0, 0)
        cleaned = [wf.with_skew((0, 0)) if wf.has_skew else wf for wf in waveforms]
        return pointwise(fn, cleaned).with_skew(carrier_skew)
    return pointwise(fn, [wf.materialized() for wf in waveforms])


def wave_or(waveforms: Sequence[Waveform]) -> Waveform:
    """N-ary worst-case OR of waveforms."""
    return combine(value_or_n, waveforms)


def wave_and(waveforms: Sequence[Waveform]) -> Waveform:
    """N-ary worst-case AND of waveforms."""
    return combine(value_and_n, waveforms)


def wave_xor(waveforms: Sequence[Waveform]) -> Waveform:
    """N-ary worst-case XOR of waveforms."""
    return combine(value_xor_n, waveforms)


def wave_chg(waveforms: Sequence[Waveform]) -> Waveform:
    """N-ary CHANGE function of waveforms (section 2.4.2)."""
    return combine(value_chg, waveforms)


def wave_apply(
    fn: Callable[..., Value], waveforms: Sequence[Waveform]
) -> Waveform:
    """Combine through an arbitrary positional value function.

    Convenience wrapper for model code (e.g. the multiplexer select
    function), with the same skew-folding rule as :func:`combine`.
    """
    return combine(lambda vals: fn(*vals), waveforms)


def all_equal_constant(waveforms: Iterable[Waveform]) -> bool:
    """True when every waveform is the same full-period constant."""
    consts = {wf.segments[0][0] if wf.is_constant else None for wf in waveforms}
    return len(consts) == 1 and None not in consts
