"""The seven-value signal algebra of the Timing Verifier (section 2.4.1).

At any instant every signal carries exactly one of seven values::

    0  false
    1  true
    S  stable, not changing (value unknown)
    C  may be changing (value and direction unknown)
    R  rising, going from zero to one
    F  falling, going from one to zero
    U  unknown; the initial value of every signal

The combinational functions over these values (section 2.4.2) are uniformly
defined to give *worst-case* results: ``S OR R`` is ``R`` because the output
is either stable or a rising edge, and the rising edge is the worst case.

The ``STABLE`` value is the heart of the thesis: by representing most signals
only as stable/changing, one symbolic evaluation of a single clock period
covers the state transitions that a conventional logic simulator would need
an exponential number of input vectors to exercise.
"""

from __future__ import annotations

import enum
from functools import reduce
from typing import Iterable


class Value(enum.Enum):
    """One of the seven signal values."""

    ZERO = "0"
    ONE = "1"
    STABLE = "S"
    CHANGE = "C"
    RISE = "R"
    FALL = "F"
    UNKNOWN = "U"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Value.{self.name}"

    def __str__(self) -> str:
        return self.value


# Short aliases used heavily by the truth tables and tests.
ZERO = Value.ZERO
ONE = Value.ONE
STABLE = Value.STABLE
CHANGE = Value.CHANGE
RISE = Value.RISE
FALL = Value.FALL
UNKNOWN = Value.UNKNOWN

#: Values during which a signal is guaranteed not to be changing.
STABLE_VALUES = frozenset({ZERO, ONE, STABLE})

#: Values during which a signal may be in transition.
CHANGING_VALUES = frozenset({CHANGE, RISE, FALL})

#: Values that carry a known boolean level.
CONSTANT_VALUES = frozenset({ZERO, ONE})


def is_stable(v: Value) -> bool:
    """True when the value denotes a signal guaranteed not to change."""
    return v in STABLE_VALUES


def is_changing(v: Value) -> bool:
    """True when the value denotes a possible transition."""
    return v in CHANGING_VALUES


def is_constant(v: Value) -> bool:
    """True for the known boolean levels 0 and 1."""
    return v in CONSTANT_VALUES


def _build_or_table() -> dict[tuple[Value, Value], Value]:
    """INCLUSIVE-OR over the seven values, worst case (section 2.4.2).

    A definite 1 on either input dominates; a definite 0 is the identity;
    otherwise uncertainty propagates, with R/F kept when only one direction
    of change is possible and C when both are.
    """
    table: dict[tuple[Value, Value], Value] = {}
    order = list(Value)
    for a in order:
        for b in order:
            if a == ONE or b == ONE:
                v = ONE
            elif a == UNKNOWN or b == UNKNOWN:
                v = UNKNOWN
            elif a == ZERO:
                v = b
            elif b == ZERO:
                v = a
            elif a == b:
                v = a
            elif STABLE in (a, b):
                # stable OR x: output is either unchanged or follows x.
                v = a if b == STABLE else b
            else:
                # two distinct changing values (R/F/C mixtures)
                v = CHANGE
            table[(a, b)] = v
    return table


def _build_and_table() -> dict[tuple[Value, Value], Value]:
    """AND over the seven values: the dual of OR (0 dominates, 1 is identity)."""
    table: dict[tuple[Value, Value], Value] = {}
    for a in Value:
        for b in Value:
            if a == ZERO or b == ZERO:
                v = ZERO
            elif a == UNKNOWN or b == UNKNOWN:
                v = UNKNOWN
            elif a == ONE:
                v = b
            elif b == ONE:
                v = a
            elif a == b:
                v = a
            elif STABLE in (a, b):
                v = a if b == STABLE else b
            else:
                v = CHANGE
            table[(a, b)] = v
    return table


def value_not(a: Value) -> Value:
    """NOT over the seven values: levels and edge directions invert."""
    return {
        ZERO: ONE,
        ONE: ZERO,
        STABLE: STABLE,
        CHANGE: CHANGE,
        RISE: FALL,
        FALL: RISE,
        UNKNOWN: UNKNOWN,
    }[a]


def _build_xor_table() -> dict[tuple[Value, Value], Value]:
    """EXCLUSIVE-OR over the seven values.

    A known 0 passes the other input through; a known 1 inverts it.  Any
    transition combined with a stable-but-unknown input yields CHANGE, since
    the output's direction of change cannot be known without the value.
    """
    table: dict[tuple[Value, Value], Value] = {}
    for a in Value:
        for b in Value:
            if a == UNKNOWN or b == UNKNOWN:
                v = UNKNOWN
            elif a == ZERO:
                v = b
            elif b == ZERO:
                v = a
            elif a == ONE:
                v = value_not(b)
            elif b == ONE:
                v = value_not(a)
            elif a == STABLE and b == STABLE:
                v = STABLE
            else:
                # At least one input is in transition and no input value is
                # known, so the output may change in either direction.
                v = CHANGE
            table[(a, b)] = v
    return table


OR_TABLE = _build_or_table()
AND_TABLE = _build_and_table()
XOR_TABLE = _build_xor_table()


def value_or(a: Value, b: Value) -> Value:
    """Binary worst-case OR."""
    return OR_TABLE[(a, b)]


def value_and(a: Value, b: Value) -> Value:
    """Binary worst-case AND."""
    return AND_TABLE[(a, b)]


def value_xor(a: Value, b: Value) -> Value:
    """Binary worst-case XOR."""
    return XOR_TABLE[(a, b)]


def value_or_n(values: Iterable[Value]) -> Value:
    """N-ary OR (associative fold over :data:`OR_TABLE`)."""
    return reduce(value_or, values)


def value_and_n(values: Iterable[Value]) -> Value:
    """N-ary AND."""
    return reduce(value_and, values)


def value_xor_n(values: Iterable[Value]) -> Value:
    """N-ary XOR."""
    return reduce(value_xor, values)


def value_chg(values: Iterable[Value]) -> Value:
    """The CHANGE function (section 2.4.2).

    UNKNOWN if any input is undefined; CHANGE if any input may be changing;
    STABLE otherwise.  This models complex combinational logic — adders,
    parity trees — where only *when* the output changes matters, which is
    the source of the factorial-level reduction in modelling effort.
    """
    vals = list(values)
    if any(v == UNKNOWN for v in vals):
        return UNKNOWN
    if any(is_changing(v) for v in vals):
        return CHANGE
    return STABLE


def value_either(a: Value, b: Value) -> Value:
    """Worst case of a signal that is *one of* ``a`` or ``b`` (unordered).

    Used for multiplexers with an unknown-but-stable select: the output is
    one of the two data inputs, we just do not know which.  Two stable
    operands give a stable (possibly unknown-level) result; one changing
    operand makes the worst case that changing value.
    """
    if a == b:
        return a
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if is_stable(a) and is_stable(b):
        return STABLE
    if is_stable(a):
        return b
    if is_stable(b):
        return a
    return CHANGE


def transition_value(before: Value, after: Value) -> Value:
    """Classify the boundary between two adjacent segment values.

    When skew is folded into a waveform (section 2.8, Figure 2-9), each
    boundary becomes an interval during which the signal holds the
    *transition* value: RISE for ``0 -> 1``, FALL for ``1 -> 0``, CHANGE
    when the direction cannot be known, and UNKNOWN when either side is
    undefined.  Boundaries flowing into or out of an edge value extend that
    edge (``0 -> R`` is still a rise in progress).
    """
    if before == after:
        return before
    if before == UNKNOWN or after == UNKNOWN:
        return UNKNOWN
    if CHANGE in (before, after):
        return CHANGE
    pair = (before, after)
    if pair == (ZERO, ONE):
        return RISE
    if pair == (ONE, ZERO):
        return FALL
    riseish = {ZERO, ONE, STABLE, RISE}
    fallish = {ZERO, ONE, STABLE, FALL}
    if RISE in pair and before in riseish and after in riseish:
        return RISE
    if FALL in pair and before in fallish and after in fallish:
        return FALL
    if RISE in pair and FALL in pair:
        return CHANGE
    # Remaining cases: a stable level meeting STABLE (0 -> S, S -> 1, ...).
    # The level may differ across the boundary, so a change is possible.
    return CHANGE


def merge_overlay(a: Value, b: Value) -> Value:
    """Combine two overlapping transition overlays, worst case.

    When the skew windows of two nearby boundaries overlap, the order of the
    transitions is uncertain: identical overlay values merge, mixed rise and
    fall collapse to CHANGE, and UNKNOWN dominates.
    """
    if a == b:
        return a
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return CHANGE


def parse_value(text: str) -> Value:
    """Parse a single-character value mnemonic (``0 1 S C R F U``)."""
    try:
        return Value(text.upper())
    except ValueError as exc:
        raise ValueError(f"not a signal value: {text!r}") from exc
