"""Typed timing-violation records (the Figure 3-11 error report).

Every checker produces :class:`Violation` records carrying enough detail to
reconstruct the thesis's error messages: which constraint, by how much it
was missed, and the value behaviour of the signals the checker saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .timeline import format_ns
from .waveform import Waveform


class ViolationKind(Enum):
    """The classes of logic-level timing error of section 1.3.2."""

    SETUP = "setup"
    HOLD = "hold"
    STABLE_WHILE_TRUE = "stable-while-true"
    MIN_PULSE_WIDTH_HIGH = "min-pulse-width-high"
    MIN_PULSE_WIDTH_LOW = "min-pulse-width-low"
    POSSIBLE_GLITCH = "possible-glitch"
    GATING_STABILITY = "gating-stability"
    ASSERTION_MISMATCH = "assertion-mismatch"
    NO_CLOCK_EDGE = "no-clock-edge"
    RECOVERY = "recovery"
    REMOVAL = "removal"
    BORROW = "borrow"


@dataclass(frozen=True)
class Violation:
    """One detected timing error.

    Attributes:
        kind: the constraint class that failed.
        component: name of the checker or gate that detected it.
        signal: the offending signal's name.
        clock: the reference clock signal's name, when applicable.
        required_ps: the constraint interval (setup time, hold time, or
            minimum width) in picoseconds.
        actual_ps: what the circuit achieved (negative slack is
            ``required_ps - actual_ps``).
        missed_by_ps: how much the constraint was missed by.
        window: the time window checked, in absolute picoseconds.
        case_index: which case analysis cycle detected it (section 2.7).
        signal_waveform / clock_waveform: the values the checker saw, for
            the two-line detail of the Figure 3-11 messages.
        note: extra human-readable context.
    """

    kind: ViolationKind
    component: str
    signal: str
    clock: str | None = None
    required_ps: int | None = None
    actual_ps: int | None = None
    missed_by_ps: int | None = None
    window: tuple[int, int] | None = None
    case_index: int = 0
    signal_waveform: Waveform | None = None
    clock_waveform: Waveform | None = None
    note: str = ""

    def message(self) -> str:
        """Render in the style of the Figure 3-11 listing."""
        lines = [self.headline()]
        if self.signal_waveform is not None:
            lines.append(f"  DATA INPUT  = {self.signal}: {self.signal_waveform.describe()}")
        if self.clock_waveform is not None and self.clock is not None:
            lines.append(f"  CLOCK INPUT = {self.clock}: {self.clock_waveform.describe()}")
        if self.note:
            lines.append(f"  {self.note}")
        return "\n".join(lines)

    def headline(self) -> str:
        k = self.kind
        parts = [f"{self.component}:"]
        if k in (ViolationKind.SETUP, ViolationKind.HOLD):
            parts.append(f"{k.value.upper()} time violated on {self.signal!r}")
            if self.required_ps is not None:
                parts.append(f"(required {format_ns(self.required_ps)} ns")
                if self.missed_by_ps is not None:
                    parts.append(f"missed by {format_ns(self.missed_by_ps)} ns)")
                else:
                    parts.append(")")
        elif k is ViolationKind.STABLE_WHILE_TRUE:
            parts.append(
                f"{self.signal!r} must be stable while {self.clock!r} is asserted"
            )
        elif k in (
            ViolationKind.MIN_PULSE_WIDTH_HIGH,
            ViolationKind.MIN_PULSE_WIDTH_LOW,
        ):
            level = "high" if k is ViolationKind.MIN_PULSE_WIDTH_HIGH else "low"
            parts.append(
                f"minimum {level} pulse width violated on {self.signal!r}: "
                f"{format_ns(self.actual_ps or 0)} ns < "
                f"{format_ns(self.required_ps or 0)} ns required"
            )
        elif k is ViolationKind.POSSIBLE_GLITCH:
            parts.append(f"possible glitch (hazard) on {self.signal!r}")
        elif k is ViolationKind.GATING_STABILITY:
            parts.append(
                f"control {self.signal!r} may change while clock "
                f"{self.clock!r} is asserted (possible false clocking)"
            )
        elif k is ViolationKind.ASSERTION_MISMATCH:
            parts.append(
                f"signal {self.signal!r} violates its stable assertion"
            )
        elif k is ViolationKind.NO_CLOCK_EDGE:
            parts.append(
                f"checker never saw a rising edge on clock {self.clock!r}"
            )
        elif k in (ViolationKind.RECOVERY, ViolationKind.REMOVAL):
            side = "before" if k is ViolationKind.RECOVERY else "after"
            parts.append(
                f"{k.value.upper()} time violated on {self.signal!r}: "
                f"control must be stable "
                f"{format_ns(self.required_ps or 0)} ns {side} the "
                f"{self.clock!r} edge"
            )
            if self.missed_by_ps is not None:
                parts.append(f"(missed by {format_ns(self.missed_by_ps)} ns)")
        elif k is ViolationKind.BORROW:
            parts.append(
                f"latch time borrowing on {self.signal!r} exceeds "
                f"{format_ns(self.required_ps or 0)} ns"
            )
            if self.actual_ps is not None:
                parts.append(f"(borrowed {format_ns(self.actual_ps)} ns)")
        if self.window is not None:
            lo, hi = self.window
            parts.append(f"[window {format_ns(lo)}..{format_ns(hi)} ns]")
        if self.case_index:
            parts.append(f"(case {self.case_index})")
        return " ".join(parts)

    def __str__(self) -> str:
        return self.headline()


@dataclass
class CheckReport:
    """All violations and informational notes from one verification run."""

    violations: list[Violation] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def extend(self, violations: list[Violation]) -> None:
        self.violations.extend(violations)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def by_kind(self, kind: ViolationKind) -> list[Violation]:
        return [v for v in self.violations if v.kind is kind]

    @property
    def ok(self) -> bool:
        return not self.violations

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self):
        return iter(self.violations)
