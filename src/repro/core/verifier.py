"""The Timing Verifier façade.

Orchestrates a complete verification (section 2.9): structural validation,
initialization from assertions, the evaluation fixed point, case-by-case
incremental re-evaluation (section 2.7), the checking pass, and result
collection.  Phase wall-times are recorded in the shape of Table 3-1 so the
benchmarks can print the same rows the thesis reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist.circuit import Circuit
from ..netlist.validate import ValidationIssue
from .config import VerifyConfig
from .engine import EngineStats
from .violations import CheckReport, Violation
from .waveform import Waveform


@dataclass
class CaseResult:
    """The converged state of one simulated case (section 2.7)."""

    index: int
    assignments: dict[str, int]
    waveforms: dict[str, Waveform]
    events: int


@dataclass
class PhaseTimes:
    """Wall-clock seconds per verification phase (Table 3-1's categories)."""

    build: float = 0.0
    cross_reference: float = 0.0
    verify: float = 0.0
    summary: float = 0.0

    @property
    def total(self) -> float:
        return self.build + self.cross_reference + self.verify + self.summary


@dataclass
class PoolStats:
    """Lifetime counters of one warm worker pool (``repro.parallel``).

    The pool owns the counters and keeps them across runs; each
    :class:`VerificationResult` carries a point-in-time copy, so two
    consecutive results from the same session show the warm reuse
    (``runs`` grows, ``pool_starts`` does not).
    """

    #: Worker processes in the pool.
    workers: int = 0
    #: Times the pool (re)forked its workers — 1 for a warm session.
    pool_starts: int = 0
    #: Pooled verification runs served (block or partition mode).
    runs: int = 0
    #: Runs served from converged worker state via the incremental path.
    warm_runs: int = 0
    #: Typed edits shipped to workers instead of re-pickling the circuit.
    edits_shipped: int = 0
    #: Distinct waveforms serialized across the pipe (codec misses).
    waveforms_shipped: int = 0
    #: Waveform references sent as bare integers (codec hits).
    waveform_refs: int = 0
    #: Full per-case snapshots fetched lazily because a listing needed one.
    snapshots_fetched: int = 0
    #: Circuit partitions of the last single-case partitioned run.
    partitions: int = 0
    #: Boundary-waveform exchange rounds until the global fixed point.
    boundary_rounds: int = 0

    def copy(self) -> "PoolStats":
        return PoolStats(**self.__dict__)


@dataclass
class VerificationResult:
    """Everything a verification run produced."""

    circuit_name: str
    report: CheckReport
    cases: list[CaseResult]
    stats: EngineStats
    phases: PhaseTimes
    xref_assumed_stable: list[str] = field(default_factory=list)
    structure_warnings: list[ValidationIssue] = field(default_factory=list)
    #: Evaluated (non-checker) primitives — the denominator of the
    #: thesis's ~2.4 events/primitive figure (section 3.3.2).
    primitive_count: int = 0
    #: The configuration the run used (reporters need it to tell a cache
    #: that was disabled apart from one that never hit).
    config: VerifyConfig | None = None
    #: CPU seconds per phase, summed across worker processes when the run
    #: was parallel (``repro.parallel``); None for serial runs, whose
    #: wall times already equal their CPU spend.
    phases_cpu: PhaseTimes | None = None
    #: Warm-pool counters at the end of this run; None for serial runs.
    pool: "PoolStats | None" = None

    @property
    def violations(self) -> list[Violation]:
        return self.report.violations

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def events_per_primitive(self) -> float:
        return self.stats.events / self.primitive_count if self.primitive_count else 0.0

    def waveform(self, signal: str, case: int = 0) -> Waveform:
        """The converged waveform of ``signal`` in the given case."""
        return self.cases[case].waveforms[signal]

    def summary_listing(self, case: int = 0) -> str:
        """The Figure 3-10 style signal-value listing."""
        from ..reporting.listing import timing_summary

        return timing_summary(self, case=case)

    def error_listing(self) -> str:
        """The Figure 3-11 style violation listing."""
        from ..reporting.listing import violation_listing

        return violation_listing(self)


class TimingVerifier:
    """Verify all timing constraints of a synchronous sequential circuit.

    Usage::

        verifier = TimingVerifier(circuit)
        result = verifier.verify()
        for violation in result.violations:
            print(violation.message())
    """

    def __init__(
        self,
        circuit: Circuit,
        config: VerifyConfig | None = None,
        constraints=None,
    ) -> None:
        self.circuit = circuit
        self.config = config or VerifyConfig()
        self.constraints = constraints

    def verify(self) -> VerificationResult:
        """Run the full verification and return the collected results.

        A one-shot :class:`repro.session.Session`: the session object owns
        every piece of run-scoped state (stored waveforms, intern table,
        memo caches, levelized ranks), and this façade simply makes a
        fresh one per call — callers who want that state to survive
        across runs (incremental re-verify) hold a Session instead.
        """
        from ..session import Session

        return Session(
            self.circuit, self.config, constraints=self.constraints
        ).verify()


def verify(
    circuit: Circuit,
    config: VerifyConfig | None = None,
    constraints=None,
) -> VerificationResult:
    """Convenience one-shot verification."""
    return TimingVerifier(circuit, config, constraints=constraints).verify()
