"""The Timing Verifier core: value algebra, waveforms, models, engine."""

from .config import EXACT, VerifyConfig
from .engine import Engine, EngineStats, OscillationError
from .timeline import Timebase, format_ns, ns_to_ps, ps_to_ns
from .values import Value
from .verifier import (
    CaseResult,
    PhaseTimes,
    TimingVerifier,
    VerificationResult,
    verify,
)
from .violations import CheckReport, Violation, ViolationKind
from .waveform import Waveform

__all__ = [
    "EXACT",
    "VerifyConfig",
    "Engine",
    "EngineStats",
    "OscillationError",
    "Timebase",
    "format_ns",
    "ns_to_ps",
    "ps_to_ns",
    "Value",
    "CaseResult",
    "PhaseTimes",
    "TimingVerifier",
    "VerificationResult",
    "verify",
    "CheckReport",
    "Violation",
    "ViolationKind",
    "Waveform",
]
