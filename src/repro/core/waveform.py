"""Periodic signal-value waveforms (sections 2.8 and 2.9, Figure 2-7).

The Timing Verifier represents the value of each signal over one circuit
clock period as a linked list of ``(value, width)`` records whose widths sum
exactly to the period.  This module implements that representation as an
immutable :class:`Waveform`, together with the two companion fields the
thesis stores in the ``VALUE BASE`` record:

* the **skew** field — when a signal is merely *delayed* by a variable
  amount (a gate with distinct min and max delays), the uncertainty is kept
  in a separate field rather than being folded into RISE/FALL values, so
  that pulse *widths* are preserved (Figure 2-8).  Only when two or more
  changing signals are combined is the skew folded into the value list using
  the RISE/FALL/CHANGE values (Figure 2-9); and

* the **evaluation string pointer** — the remaining evaluation-directive
  letters (section 2.6) that ride along with a signal value, one letter per
  subsequent level of gating.

All times are integer picoseconds; all interval arithmetic is modulo the
period.  Waveforms are canonical (no zero-width or mergeable adjacent
segments), so the evaluation engine can detect convergence with ``==``.
"""

from __future__ import annotations

import heapq
import weakref
from bisect import bisect_right
from typing import Callable, Iterable, Iterator, Sequence

from .timeline import wrap_interval
from .values import (
    CHANGE,
    CHANGING_VALUES,
    FALL,
    ONE,
    RISE,
    STABLE,
    STABLE_VALUES,
    UNKNOWN,
    ZERO,
    Value,
    transition_value,
)

Segment = tuple[Value, int]
Skew = tuple[int, int]

#: Values that may conceal a rising edge / a falling edge.
_MAY_RISE = frozenset({RISE, CHANGE})
_MAY_FALL = frozenset({FALL, CHANGE})


def _canonicalize(period: int, segments: Iterable[Segment]) -> tuple[Segment, ...]:
    """Drop zero-width segments and merge adjacent equal values.

    The result is the unique minimal representation anchored at time zero;
    note that the first and last segments may legitimately share a value
    (the anchor at ``t = 0`` keeps the representation unambiguous).
    """
    merged: list[list] = []
    total = 0
    for value, width in segments:
        if width < 0:
            raise ValueError(f"negative segment width {width}")
        if width == 0:
            continue
        total += width
        if merged and merged[-1][0] == value:
            merged[-1][1] += width
        else:
            merged.append([value, width])
    if total != period:
        raise ValueError(
            f"segment widths sum to {total} ps but the period is {period} ps"
        )
    return tuple((v, w) for v, w in merged)


def _sweep_max_rank(
    cuts: Sequence[int],
    pieces: Sequence[tuple[int, int, int, Value]],
    base_value_at: Callable[[int], Value],
) -> list[Segment]:
    """Paint rank-prioritized ``(lo, hi, rank, value)`` pieces over a base.

    One sorted sweep over ``cuts`` with a max-rank heap (lazy deletion)
    replaces the former O(cuts x pieces) scan: at each cut the covering
    piece with the highest rank wins, exactly as "later intervals override
    earlier ones".  ``cuts`` must be sorted and include every piece
    endpoint plus 0 and the period.
    """
    starts: dict[int, list[tuple[int, int, int, Value]]] = {}
    for seq, (lo, hi, rank, value) in enumerate(pieces):
        # (-rank, hi, seq) orders the heap by descending rank; seq breaks
        # ties so Value (which has no ordering) is never compared.
        starts.setdefault(lo, []).append((-rank, hi, seq, value))
    heap: list[tuple[int, int, int, Value]] = []
    segs: list[Segment] = []
    for lo, hi in zip(cuts, cuts[1:]):
        for entry in starts.get(lo, ()):
            heapq.heappush(heap, entry)
        while heap and heap[0][1] <= lo:
            heapq.heappop(heap)
        value = heap[0][3] if heap else base_value_at(lo)
        segs.append((value, hi - lo))
    return segs


class InternTable:
    """A hash-cons table for waveforms, owned by one verification session.

    Each :class:`~repro.core.engine.Engine` (and therefore each
    :class:`repro.session.Session`) owns its own table, so cross-run
    interning within a session is deterministic: waveforms stay shared
    exactly as long as the session keeps them alive, instead of depending
    on whether the garbage collector has emptied a process-global table
    between back-to-back API runs.  The table holds weak references only,
    so interning never leaks retired values.

    The engine's hot path reads :attr:`table` directly (one dict probe,
    the counters living in :class:`~repro.core.engine.EngineStats`);
    :meth:`intern` is the convenience entry point for everything else.
    """

    __slots__ = ("table",)

    def __init__(self) -> None:
        self.table: "weakref.WeakValueDictionary[tuple, Waveform]" = (
            weakref.WeakValueDictionary()
        )

    def intern(self, wf: "Waveform") -> "Waveform":
        """The canonical shared instance equal to ``wf`` in this table."""
        key = wf.canonical_key
        existing = self.table.get(key)
        if existing is not None:
            return existing
        self.table[key] = wf
        return wf

    def __len__(self) -> int:
        return len(self.table)


#: The process-global weak-value intern table.  Kept for
#: :meth:`Waveform.intern` (the pickle-restore path must intern into a
#: table shared by every engine in the process) — run-scoped interning
#: goes through a session-owned :class:`InternTable` instead.
_INTERN_TABLE: "weakref.WeakValueDictionary[tuple, Waveform]" = (
    weakref.WeakValueDictionary()
)
#: Cumulative intern-table statistics (read by the engine's counters).
_INTERN_STATS = {"hits": 0, "misses": 0}


def intern_stats() -> tuple[int, int]:
    """Cumulative ``(hits, misses)`` of the waveform intern table."""
    return _INTERN_STATS["hits"], _INTERN_STATS["misses"]


def _restore_waveform(
    period: int, segments: tuple, skew: "Skew", eval_str: str
) -> "Waveform":
    """Unpickle hook: rebuild through the constructor, then intern.

    The constructor cannot be pickle's state-restore path (the
    ``__slots__`` + ``__setattr__`` immutability guard rejects the default
    per-slot ``setattr`` walk), and the rebuilt instance must re-enter the
    intern table so that a waveform unpickled into a process that already
    holds an equal value shares that value's identity — the engine's
    identity-first convergence test and the cached derived forms stay
    sound across process boundaries.
    """
    return Waveform(period, segments, skew=skew, eval_str=eval_str).intern()


class Waveform:
    """The value of one signal over one clock period.

    Instances are immutable; all transforming methods return new waveforms.

    Attributes:
        period: the circuit clock period in picoseconds.
        segments: canonical ``(value, width_ps)`` tuple summing to ``period``.
        skew: ``(early, late)`` correlated shift uncertainty in picoseconds,
            with ``early <= 0 <= late``.  Every transition in the nominal
            segment list actually occurs somewhere in
            ``[t + early, t + late]``; the *whole waveform shifts together*,
            which is what preserves pulse widths.
        eval_str: remaining evaluation-directive letters (section 2.6).
    """

    __slots__ = (
        "period",
        "segments",
        "skew",
        "eval_str",
        "_starts",
        "_boundaries",
        "_materialized",
        "_hash",
        "__weakref__",
    )

    def __init__(
        self,
        period: int,
        segments: Iterable[Segment],
        skew: Skew = (0, 0),
        eval_str: str = "",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        early, late = skew
        if early > 0 or late < 0:
            raise ValueError(f"skew must satisfy early <= 0 <= late, got {skew}")
        object.__setattr__(self, "period", period)
        object.__setattr__(self, "segments", _canonicalize(period, segments))
        object.__setattr__(self, "skew", (early, late))
        object.__setattr__(self, "eval_str", eval_str)
        starts = []
        t = 0
        for _, width in self.segments:
            starts.append(t)
            t += width
        object.__setattr__(self, "_starts", tuple(starts))
        # Lazily computed derived forms, cached on the immutable instance
        # (and therefore shared between every user of an interned waveform).
        object.__setattr__(self, "_boundaries", None)
        object.__setattr__(self, "_materialized", None)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Waveform is immutable")

    @property
    def canonical_key(self) -> tuple:
        """The four canonical fields as an intern/dedup key.

        Two waveforms are equal exactly when their keys are; the intern
        tables and the parallel pool's digest codec both key on it.  (The
        engine's hottest store path still inlines the tuple.)
        """
        return (self.period, self.segments, self.skew, self.eval_str)

    def __reduce__(self):
        # The four canonical fields fully determine the value; the lazily
        # cached derived forms are recomputed (or inherited from an equal
        # interned instance) on the other side.
        return _restore_waveform, (
            self.period, self.segments, self.skew, self.eval_str
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def constant(cls, period: int, value: Value, eval_str: str = "") -> "Waveform":
        """A waveform holding ``value`` for the whole period."""
        return cls(period, [(value, period)], eval_str=eval_str)

    def intern(self) -> "Waveform":
        """The canonical shared instance equal to this waveform.

        Hash-consing: equal waveforms intern to one instance, so converged-
        value comparison degenerates to an identity check and the cached
        derived forms (:meth:`materialized`, :meth:`boundaries`, the hash)
        are computed once per distinct value instead of once per copy.  The
        table holds weak references only, so interning never leaks retired
        values.
        """
        key = (self.period, self.segments, self.skew, self.eval_str)
        existing = _INTERN_TABLE.get(key)
        if existing is not None:
            _INTERN_STATS["hits"] += 1
            return existing
        _INTERN_TABLE[key] = self
        _INTERN_STATS["misses"] += 1
        return self

    @classmethod
    def from_intervals(
        cls,
        period: int,
        base: Value,
        intervals: Sequence[tuple[int, int, Value]],
        skew: Skew = (0, 0),
        eval_str: str = "",
    ) -> "Waveform":
        """Paint ``(start, end, value)`` intervals over a ``base`` value.

        Interval times may lie outside ``[0, period)`` and may wrap; later
        intervals override earlier ones where they overlap.  ``end`` must
        not precede ``start``.
        """
        pieces: list[tuple[int, int, int, Value]] = []
        for rank, (start, end, value) in enumerate(intervals):
            for lo, hi in wrap_interval(start, end, period):
                pieces.append((lo, hi, rank, value))
        cuts = sorted({0, period, *(p[0] for p in pieces), *(p[1] for p in pieces)})
        segs = _sweep_max_rank(cuts, pieces, lambda _t: base)
        return cls(period, segs, skew=skew, eval_str=eval_str)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    @property
    def has_skew(self) -> bool:
        return self.skew != (0, 0)

    @property
    def skew_width(self) -> int:
        return self.skew[1] - self.skew[0]

    @property
    def is_constant(self) -> bool:
        """True when the signal never changes over the period."""
        return len(self.segments) == 1

    def value_at(self, t: int) -> Value:
        """The nominal value at time ``t`` (taken modulo the period)."""
        t %= self.period
        # _starts[0] is always 0, so the bisect index is always >= 1.
        return self.segments[bisect_right(self._starts, t) - 1][0]

    def iter_segments(self) -> Iterator[tuple[int, int, Value]]:
        """Yield ``(start, end, value)`` for each canonical segment."""
        for start, (value, width) in zip(self._starts, self.segments):
            yield start, start + width, value

    def boundaries(self) -> tuple[tuple[int, Value, Value], ...]:
        """All value-change boundaries as ``(time, before, after)``.

        Includes the wrap boundary at time zero when the last and first
        segments differ (signals are periodic, section 2.1).  Computed once
        and cached on the immutable instance.
        """
        cached = self._boundaries
        if cached is not None:
            return cached
        out: list[tuple[int, Value, Value]] = []
        n = len(self.segments)
        if n > 1:
            last_value = self.segments[-1][0]
            first_value = self.segments[0][0]
            if last_value != first_value:
                out.append((0, last_value, first_value))
            for i in range(n - 1):
                t = self._starts[i + 1]
                out.append((t, self.segments[i][0], self.segments[i + 1][0]))
        result = tuple(out)
        object.__setattr__(self, "_boundaries", result)
        return result

    def next_boundary_after(self, t: int) -> int | None:
        """The first absolute time strictly after ``t`` at which the value
        changes, or None for a constant waveform.  Boundaries repeat every
        period, so the result is at most ``t + period``."""
        times = [b for b, _before, _after in self.boundaries()]
        if not times:
            return None
        best = None
        for b in times:
            delta = (b - t) % self.period
            if delta == 0:
                delta = self.period
            if best is None or delta < best:
                best = delta
        return t + best  # type: ignore[operator]

    def values_in_window(self, lo: int, hi: int) -> set[Value]:
        """All values the signal takes in the closed interval ``[lo, hi]``."""
        if hi < lo:
            raise ValueError("window end precedes start")
        if hi - lo >= self.period:
            return {v for v, _ in self.segments}
        seen: set[Value] = set()
        t = lo
        while True:
            seen.add(self.value_at(t))
            nxt = self.next_boundary_after(t)
            if nxt is None or nxt > hi:
                break
            t = nxt
        return seen

    def values_present(self) -> frozenset[Value]:
        """The set of values appearing anywhere in the period."""
        return frozenset(v for v, _ in self.segments)

    def contains(self, value: Value) -> bool:
        return any(v == value for v, _ in self.segments)

    @property
    def is_fully_unknown(self) -> bool:
        """True when the signal is UNKNOWN for the entire period."""
        return self.is_constant and self.segments[0][0] is UNKNOWN

    def duration_of(self, value: Value) -> int:
        """Total picoseconds spent at ``value`` over one period."""
        return sum(w for v, w in self.segments if v == value)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def _replace(
        self,
        segments: Iterable[Segment] | None = None,
        skew: Skew | None = None,
        eval_str: str | None = None,
    ) -> "Waveform":
        return Waveform(
            self.period,
            list(segments) if segments is not None else list(self.segments),
            skew=skew if skew is not None else self.skew,
            eval_str=eval_str if eval_str is not None else self.eval_str,
        )

    def with_eval_str(self, eval_str: str) -> "Waveform":
        if eval_str == self.eval_str:
            return self
        return self._replace(eval_str=eval_str)

    def with_skew(self, skew: Skew) -> "Waveform":
        if tuple(skew) == self.skew:
            return self
        return self._replace(skew=skew)

    def rotated(self, dt: int) -> "Waveform":
        """Shift the waveform later in time by ``dt`` ps (modulo the period).

        ``result.value_at(t) == self.value_at(t - dt)``.
        """
        dt %= self.period
        if dt == 0 or self.is_constant:
            return self
        # Rebuild the segment list so that it is anchored at the new time 0.
        events = sorted(
            ((start + dt) % self.period, value)
            for start, _, value in self.iter_segments()
        )
        segs: list[Segment] = []
        head_value: Value | None = None
        if events[0][0] != 0:
            # The segment containing the new time 0 started before it.
            head_value = self.value_at(-dt % self.period)
            segs.append((head_value, events[0][0]))
        for (start, value), nxt in zip(events, events[1:] + [(self.period, None)]):
            segs.append((value, nxt[0] - start))
        return self._replace(segments=segs)

    def delayed(self, dmin: int, dmax: int) -> "Waveform":
        """Propagate through an element with delay in ``[dmin, dmax]`` ps.

        Per section 2.8 (Figure 2-8): the value list is shifted by the
        *minimum* delay and the difference ``dmax - dmin`` is added to the
        skew field, preserving pulse-width information.
        """
        if dmin < 0 or dmax < dmin:
            raise ValueError(f"bad delay range [{dmin}, {dmax}]")
        early, late = self.skew
        return self.rotated(dmin).with_skew((early, late + (dmax - dmin)))

    def mapped(self, fn: Callable[[Value], Value]) -> "Waveform":
        """Apply a per-value function (e.g. NOT) pointwise."""
        return self._replace(segments=[(fn(v), w) for v, w in self.segments])

    def overlaid(self, intervals: Sequence[tuple[int, int, Value]]) -> "Waveform":
        """Paint ``(start, end, value)`` intervals over this waveform.

        Later intervals win where they overlap, and all of them override
        the underlying values.  Times may wrap; skew and eval string are
        preserved.
        """
        if not intervals:
            return self
        pieces: list[tuple[int, int, int, Value]] = []
        for rank, (start, end, value) in enumerate(intervals):
            for lo, hi in wrap_interval(start, end, self.period):
                pieces.append((lo, hi, rank, value))
        cuts = sorted(
            {0, self.period, *self._starts,
             *(p[0] for p in pieces), *(p[1] for p in pieces)}
        )
        segs = _sweep_max_rank(cuts, pieces, self.value_at)
        return self._replace(segments=segs)

    # ------------------------------------------------------------------
    # skew folding (Figures 2-8 / 2-9)
    # ------------------------------------------------------------------

    def materialized(self) -> "Waveform":
        """Fold the skew field into the value list.

        Every nominal boundary at time ``t`` is widened into the interval
        ``[t + early, t + late]`` holding the boundary's transition value
        (RISE, FALL, CHANGE or UNKNOWN); overlapping widened boundaries
        combine worst-case.  The result carries zero skew.  This is the
        representation shown in Figure 2-9 for the output signal Z.
        """
        cached = self._materialized
        if cached is not None:
            return cached
        if not self.has_skew:
            object.__setattr__(self, "_materialized", self)
            return self
        if self.is_constant:
            # A constant shifted by any amount is still the same constant.
            out = self.with_skew((0, 0))
        else:
            out = self._materialize_sweep()
        object.__setattr__(self, "_materialized", out)
        # The folded form is its own fixed point; share the cache slot.
        if out._materialized is None:
            object.__setattr__(out, "_materialized", out)
        return out

    def _materialize_sweep(self) -> "Waveform":
        """One sorted-event sweep computing the skew-folded value list.

        Replaces the former O(cuts x overlays) covering scan.  The fold of
        overlapping overlays (``merge_overlay``) is commutative and
        associative — any UNKNOWN dominates, identical overlays merge, and
        any other mixture is CHANGE — so a multiset of the currently active
        overlay values is enough to produce the identical result.
        """
        early, late = self.skew
        overlays: list[tuple[int, int, Value]] = []  # non-wrapping pieces
        for t, before, after in self.boundaries():
            ov = transition_value(before, after)
            for lo, hi in wrap_interval(t + early, t + late, self.period):
                overlays.append((lo, hi, ov))
        cuts = sorted(
            {
                0,
                self.period,
                *self._starts,
                *(o[0] for o in overlays),
                *(o[1] for o in overlays),
            }
        )
        starts: dict[int, list[Value]] = {}
        ends: dict[int, list[Value]] = {}
        for lo, hi, ov in overlays:
            starts.setdefault(lo, []).append(ov)
            ends.setdefault(hi, []).append(ov)
        active: dict[Value, int] = {}
        segs: list[Segment] = []
        for lo, hi in zip(cuts, cuts[1:]):
            for ov in ends.get(lo, ()):
                count = active[ov] - 1
                if count:
                    active[ov] = count
                else:
                    del active[ov]
            for ov in starts.get(lo, ()):
                active[ov] = active.get(ov, 0) + 1
            if not active:
                value = self.value_at(lo)
            elif UNKNOWN in active:
                value = UNKNOWN
            elif len(active) == 1:
                value = next(iter(active))
            else:
                value = CHANGE
            segs.append((value, hi - lo))
        return Waveform(self.period, segs, skew=(0, 0), eval_str=self.eval_str)

    # ------------------------------------------------------------------
    # edge and stability queries (used by the checkers, section 2.4.4/2.4.5)
    # ------------------------------------------------------------------

    def _circular_runs(self, match: Callable[[Value], bool]) -> list[
        tuple[int, int, set[Value], Value, Value]
    ]:
        """Maximal circular runs of segments whose value satisfies ``match``.

        Returns ``(start, end, values_in_run, value_before, value_after)``
        with ``0 <= start < period`` and ``end`` exceeding the period for a
        run that wraps past time zero.  When *every* segment matches, one
        run ``(0, period, values, UNKNOWN, UNKNOWN)`` is returned.
        """
        segs = list(self.iter_segments())
        n = len(segs)
        if all(match(v) for _, _, v in segs):
            return [(0, self.period, {v for _, _, v in segs}, UNKNOWN, UNKNOWN)]
        # Anchor the scan at a non-matching segment so no run is split by
        # the wrap at time zero.
        anchor = next(i for i, (_, _, v) in enumerate(segs) if not match(v))
        runs: list[tuple[int, int, set[Value], Value, Value]] = []
        k = 0
        while k < n:
            i = (anchor + k) % n
            if not match(segs[i][2]):
                k += 1
                continue
            vals: set[Value] = set()
            start = segs[i][0]
            length = 0
            while match(segs[(i + length) % n][2]):
                vals.add(segs[(i + length) % n][2])
                length += 1
            last = (i + length - 1) % n
            end = segs[last][1]
            if end <= start:
                end += self.period
            before = segs[(i - 1) % n][2]
            after = segs[(i + length) % n][2]
            runs.append((start, end, vals, before, after))
            k += length
        runs.sort()
        return runs

    def _transition_runs(self) -> list[tuple[int, int, set[Value], Value, Value]]:
        """Maximal circular runs of changing values on the materialized form.

        Runs of UNKNOWN are not included (an undefined signal is reported
        through the cross-reference listing instead, section 2.5).
        """
        return self.materialized()._circular_runs(lambda v: v in CHANGING_VALUES)

    def _edge_windows(self, direction: str) -> list[tuple[int, int]]:
        """Windows during which a rising ('rise') or falling edge may occur.

        A window ``(t0, t1)`` means the edge happens at some instant in that
        closed interval; ``t1 >= t0`` and ``t1`` may exceed the period for a
        wrapping window.  Instantaneous boundaries produce ``t0 == t1``.
        """
        wf = self.materialized()
        want = _MAY_RISE if direction == "rise" else _MAY_FALL
        windows: list[tuple[int, int]] = []
        for start, end, vals, _before, _after in wf._transition_runs():
            if vals & want:
                windows.append((start, end))
        for t, before, after in wf.boundaries():
            if before in CHANGING_VALUES or after in CHANGING_VALUES:
                continue  # already covered by a run
            tv = transition_value(before, after)
            if tv in want:
                windows.append((t, t))
        windows.sort()
        return windows

    def rising_windows(self) -> list[tuple[int, int]]:
        """Windows containing a potential 0-to-1 transition."""
        return self._edge_windows("rise")

    def falling_windows(self) -> list[tuple[int, int]]:
        """Windows containing a potential 1-to-0 transition."""
        return self._edge_windows("fall")

    def level_runs(self, value: Value) -> list[tuple[int, int]]:
        """Maximal circular runs at exactly ``value`` on the nominal form.

        Used by the minimum-pulse-width checker, which deliberately works on
        the *nominal* waveform: the separately-carried skew delays both
        edges of a pulse equally and therefore does not narrow it
        (section 2.8).  For an empty result on a constant waveform at
        ``value``, the run covers the whole period and is not a pulse; such
        waveforms return ``[(0, period)]`` and callers treat a full-period
        run as unbounded.
        """
        return [
            (start, end)
            for start, end, _vals, _b, _a in self._circular_runs(lambda v: v == value)
        ]

    def instability_in(self, start: int, end: int) -> list[tuple[int, int, Value]]:
        """Intervals within ``[start, end]`` where the signal may be changing.

        ``start``/``end`` are absolute picosecond times with ``end >= start``;
        the window is interpreted modulo the period and saturates at one full
        period.  The waveform is materialized first, so skew counts against
        stability.  Returns ``(lo, hi, value)`` pieces in window-relative
        absolute coordinates (``start <= lo <= hi <= end``); instantaneous
        transitions strictly inside the window appear as zero-width entries.
        """
        if end < start:
            raise ValueError("window end precedes start")
        if end - start > self.period:
            end = start + self.period
        wf = self.materialized()
        out: list[tuple[int, int, Value]] = []
        for seg_start, seg_end, value in wf.iter_segments():
            if value in STABLE_VALUES:
                continue
            # Each unstable segment may intersect the window in up to two
            # places once both are unrolled onto the absolute time axis.
            base = (seg_start - start) % self.period + start
            for occ_start in (base - self.period, base, base + self.period):
                occ_end = occ_start + (seg_end - seg_start)
                lo = max(start, occ_start)
                hi = min(end, occ_end)
                if hi > lo:
                    out.append((lo, hi, value))
        for t, before, after in wf.boundaries():
            if before not in STABLE_VALUES or after not in STABLE_VALUES:
                continue
            tv = transition_value(before, after)
            if tv in STABLE_VALUES:
                continue
            base = (t - start) % self.period + start
            for occ in (base - self.period, base, base + self.period):
                if start < occ < end:
                    out.append((occ, occ, tv))
        out.sort()
        return out

    def is_stable_in(self, start: int, end: int) -> bool:
        """True when the signal cannot change anywhere in ``[start, end]``."""
        return not self.instability_in(start, end)

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Render in the style of the Figure 3-10 summary listing.

        Example: ``S 0.5 C 5.5 S 25.5 C 30.5 S`` — the signal is stable at
        the start of the cycle, changing from 0.5 ns to 5.5 ns, stable to
        25.5 ns, changing to 30.5 ns, then stable for the rest of the cycle.
        """
        from .timeline import format_ns

        parts = [str(self.segments[0][0])]
        for start, _end, value in list(self.iter_segments())[1:]:
            parts.append(format_ns(start))
            parts.append(str(value))
        if self.has_skew:
            early, late = self.skew
            parts.append(f"(skew {format_ns(early)}/{format_ns(late)})")
        return " ".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Waveform):
            return NotImplemented
        return (
            self.period == other.period
            and self.segments == other.segments
            and self.skew == other.skew
            and self.eval_str == other.eval_str
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.period, self.segments, self.skew, self.eval_str))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        body = " ".join(f"{v}:{w}" for v, w in self.segments)
        skew = f" skew={self.skew}" if self.has_skew else ""
        ev = f" eval={self.eval_str!r}" if self.eval_str else ""
        return f"<Waveform {body}{skew}{ev} period={self.period}>"
