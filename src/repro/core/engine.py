"""The event-driven evaluation engine (section 2.9).

The verification technique: initialize every signal from its assertion (or
to UNKNOWN), then repeatedly evaluate primitives whose inputs changed until
every signal's full-period waveform stops changing.  An *event* is an output
acquiring a new value, which schedules every primitive reading that output
for re-evaluation — the thesis processed 20 052 such events for the 6 357
chip example at about 20 ms each.

Case analysis (section 2.7) re-enters the same fixed point incrementally:
between cases only the signals whose case mapping changed are disturbed, so
"only those parts of the circuit that are affected by the case analysis are
reevaluated".
"""

from __future__ import annotations

import heapq
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Callable, Iterable

from ..netlist.circuit import Circuit, Component, Connection, Net, parse_lane_ref
from .checks import (
    check_gating_stability,
    check_max_time_borrow,
    check_min_pulse_width,
    check_recovery_removal,
    check_setup_hold,
    check_setup_hold_windows,
    check_setup_rise_hold_fall,
    check_stable_assertion,
)
from .config import VerifyConfig
from .models import (
    ENABLING_LEVEL,
    GATE_FUNCTIONS,
    eval_gate,
    eval_latch,
    eval_mux,
    eval_register,
)
from .values import CHANGE, ONE, STABLE, UNKNOWN, ZERO, Value, value_not
from .violations import CheckReport, Violation
from .waveform import InternTable, Waveform
from .wordwave import WordWave

#: Net names treated as supply rails.
_SUPPLY = {"GND": ZERO, "VSS": ZERO, "VCC": ONE, "VDD": ONE}

#: Directive letters that zero the interconnection delay at their input.
_ZERO_WIRE = frozenset("WZH")
#: Directive letters that zero the gate's own delay.
_ZERO_GATE = frozenset("ZH")
#: Directive letters that trigger the stability check / enabling assumption.
_ASSUME = frozenset("AH")

_GATE_PRIMS = frozenset(GATE_FUNCTIONS)

#: Primitives whose output breaks a combinational cycle when ranking the
#: evaluation order (every legal feedback path runs through one of these,
#: section 1.2.2).
_SEQUENTIAL_PRIMS = frozenset({"REG", "REG_RS", "LATCH", "LATCH_RS"})


class OscillationError(RuntimeError):
    """The fixed point failed to converge — an unbroken feedback loop.

    Synchronous sequential systems must contain a clocked element in every
    feedback path (section 1.2.2); a combinational loop violates that and
    makes the waveforms oscillate between passes.
    """

    def __init__(self, component: Component, evals: int) -> None:
        self.component = component
        super().__init__(
            f"evaluation did not converge: {component.prim.name} "
            f"{component.name!r} re-evaluated {evals} times — the design "
            "likely contains a feedback path with no register or latch"
        )


@dataclass
class EngineStats:
    """Counters in the shape of the section 3.3.2 discussion.

    Beyond the thesis's event/evaluation counts, the optimisation layers
    record their own effectiveness: intern-table hits (a value that already
    existed as a shared instance), evaluation-memo hits (a primitive whose
    model run was skipped entirely), prepared-input cache hits, and the
    wall time spent computing the levelized schedule.
    """

    events: int = 0
    evaluations: int = 0
    #: Events on nets of width > 1 — one such event covers the whole word.
    vector_events: int = 0
    #: Stores that left a net with diverged lanes (per-bit overrides).
    lane_splits: int = 0
    events_by_case: list[int] = field(default_factory=list)
    intern_hits: int = 0
    intern_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    prepared_hits: int = 0
    prepared_misses: int = 0
    levelize_seconds: float = 0.0
    max_rank: int = 0
    #: Incremental re-verification counters (``repro.session``): runs that
    #: re-entered the fixed point via :meth:`Engine.incremental_begin`, the
    #: size of the dirty cone those runs seeded (transitive fanout of the
    #: edited primitives), and stored waveforms carried over unchanged.
    incremental_runs: int = 0
    dirty_primitives: int = 0
    reused_waveforms: int = 0

    @property
    def events_last_case(self) -> int:
        return self.events_by_case[-1] if self.events_by_case else 0

    @property
    def evaluations_saved(self) -> int:
        """Primitive evaluations answered from the memo instead of a model run."""
        return self.memo_hits

    @property
    def memo_hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0

    @property
    def intern_hit_rate(self) -> float:
        total = self.intern_hits + self.intern_misses
        return self.intern_hits / total if total else 0.0

    @property
    def prepared_hit_rate(self) -> float:
        total = self.prepared_hits + self.prepared_misses
        return self.prepared_hits / total if total else 0.0

    @classmethod
    def merged(cls, parts: "Iterable[EngineStats]") -> "EngineStats":
        """Combine per-worker stats into one run's counters.

        Work counters (events, evaluations, cache hits/misses) are summed;
        ``events_by_case`` is concatenated in the order given, so callers
        must pass the parts in case order; ``levelize_seconds`` is
        max-reduced because the workers levelize concurrently, and
        ``max_rank`` is the same schedule everywhere (max for safety).
        """
        out = cls()
        for s in parts:
            out.events += s.events
            out.evaluations += s.evaluations
            out.vector_events += s.vector_events
            out.lane_splits += s.lane_splits
            out.events_by_case.extend(s.events_by_case)
            out.intern_hits += s.intern_hits
            out.intern_misses += s.intern_misses
            out.memo_hits += s.memo_hits
            out.memo_misses += s.memo_misses
            out.prepared_hits += s.prepared_hits
            out.prepared_misses += s.prepared_misses
            out.incremental_runs += s.incremental_runs
            out.dirty_primitives += s.dirty_primitives
            out.reused_waveforms += s.reused_waveforms
            out.levelize_seconds = max(out.levelize_seconds, s.levelize_seconds)
            out.max_rank = max(out.max_rank, s.max_rank)
        return out


def _strongly_connected(succ: list[list[int]]) -> list[int]:
    """Tarjan's strongly-connected-components, iteratively.

    Returns an SCC id per node.  Iterative because the combinational depth
    of a full-scale design (6 357 chips) comfortably exceeds Python's
    recursion limit.
    """
    n = len(succ)
    order = [-1] * n  # visitation index
    low = [0] * n
    on_stack = [False] * n
    scc_id = [-1] * n
    stack: list[int] = []
    counter = 0
    n_sccs = 0
    for root in range(n):
        if order[root] != -1:
            continue
        work: list[tuple[int, int]] = [(root, 0)]  # (node, next-child index)
        while work:
            v, child = work[-1]
            if child == 0:
                order[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            descended = False
            for k in range(child, len(succ[v])):
                w = succ[v][k]
                if order[w] == -1:
                    work[-1] = (v, k + 1)
                    work.append((w, 0))
                    descended = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], order[w])
            if descended:
                continue
            work.pop()
            if low[v] == order[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    scc_id[w] = n_sccs
                    if w == v:
                        break
                n_sccs += 1
            if work:
                u = work[-1][0]
                low[u] = min(low[u], low[v])
    return scc_id


class Engine:
    """Evaluates one circuit to a fixed point and runs its checkers."""

    def __init__(
        self,
        circuit: Circuit,
        config: VerifyConfig | None = None,
        constraints=None,
        intern_table: InternTable | None = None,
    ) -> None:
        self.circuit = circuit
        self.config = config or VerifyConfig()
        #: Optional resolved SDC :class:`~repro.constraints.ConstraintSet`.
        #: With ``None`` the engine's behaviour is byte-identical to the
        #: unconstrained thesis verifier.
        self.constraints = constraints
        #: Monotonic token bumped by :meth:`set_constraints`; part of the
        #: checker-memo key so a swapped constraint set invalidates every
        #: cached checker verdict without an ``id()`` reuse hazard.
        self._constraints_token = 0
        #: The hash-cons table for this engine's waveforms.  A caller that
        #: wants deterministic cross-run sharing (``repro.session``) passes
        #: its own; the default is a fresh per-engine table, so interning
        #: no longer depends on what the process-global table happens to
        #: still hold between back-to-back API runs.
        self._intern_table = intern_table if intern_table is not None else InternTable()
        self.period = circuit.period_ps
        self.values: dict[Net, Waveform] = {}
        self.stats = EngineStats()
        self.xref_assumed_stable: list[str] = []
        self._case_map: dict[Net, Value] = {}
        #: Word-level divergence state (section "Word-level evaluation" in
        #: DESIGN.md).  A vector net normally carries ONE waveform shared by
        #: all of its lanes; a per-lane case directive ("NAME [i]") is the
        #: only source of per-lane divergence, recorded sparsely here as
        #: overrides against the base value in :attr:`values`.
        self._lanes: dict[Net, dict[int, Waveform]] = {}
        self._lane_case: dict[Net, dict[int, Value]] = {}
        #: True when any per-lane state exists; False keeps every hot path
        #: on the scalar fast path.
        self._word_needed = False
        self._fixed: set[Net] = set()
        #: Partition scope (``repro.parallel``): when set, only components
        #: named here may enter the worklist — boundary values adopted from
        #: other partitions still store and fan out, but their loads outside
        #: the scope are someone else's work.  None means unrestricted.
        self._scope: set[str] | None = None
        self._gating: dict[str, str] = {}  # component name -> directive pin
        self._eval_counts: dict[str, int] = {}
        #: Worklist: a FIFO deque in the naive engine, a rank-keyed heap of
        #: ``(rank, seq, component)`` under levelized scheduling.
        self._queue: deque[Component] = deque()
        self._heap: list[tuple[int, int, Component]] = []
        self._seq = 0
        self._queued: set[str] = set()
        # Static topology maps.
        self._drivers: dict[Net, tuple[Component, str]] = {}
        self._loads: dict[Net, list[Component]] = {}
        # Evaluation caches (section "Performance architecture" in DESIGN.md).
        self._prepared_cache: dict[tuple, tuple[Waveform, Waveform]] = {}
        self._eval_memo: OrderedDict[tuple, Waveform] = OrderedDict()
        #: Content-keyed checker-verdict memo: the violations of one checker
        #: are a pure function of its raw inputs, connection fields, wire
        #: delays, parameters and constraints, so an incremental re-verify
        #: skips the (dominant) re-checking of untouched checkers entirely.
        self._check_memo: OrderedDict[tuple, list[Violation]] = OrderedDict()
        # Levelized schedule: topological rank per component over the
        # combinational graph, computed once per engine (and again only
        # after a topology edit, via rebuild_topology).
        self._ranks: dict[str, int] = {}
        self._levelize_seconds = 0.0
        self._max_rank = 0
        self.rebuild_topology()

    def rebuild_topology(self) -> None:
        """(Re)compute the driver/load maps and the levelized schedule.

        Called once from the constructor and again by the incremental
        layer after an edit that rewires a pin: the maps and ranks are
        pure functions of the circuit's connectivity, so recomputing them
        is always sound (ranks are a drain *order*, never a gate).
        """
        self._drivers.clear()
        self._loads.clear()
        for comp in self.circuit.iter_components():
            for pin, conn in comp.output_pins():
                self._drivers[self.circuit.find(conn.net)] = (comp, pin)
            for pin, conn in comp.input_pins():
                self._loads.setdefault(self.circuit.find(conn.net), []).append(comp)
        if self.config.levelized_scheduling:
            t0 = time.perf_counter()
            self._ranks = self._compute_ranks()
            self._levelize_seconds += time.perf_counter() - t0
            self._max_rank = max(self._ranks.values(), default=0)

    def set_constraints(self, constraints) -> None:
        """Swap the resolved constraint set, invalidating cached verdicts."""
        self.constraints = constraints
        self._constraints_token += 1

    # ------------------------------------------------------------------
    # partition support (repro.parallel single-case sharding)
    # ------------------------------------------------------------------

    def set_scope(self, names) -> None:
        """Restrict the worklist to the named components; None lifts it.

        Under a scope, adopted boundary values still store and fan out,
        but loads outside the scope never enter the worklist — they are
        another partition's responsibility.
        """
        self._scope = set(names) if names is not None else None

    def component_ranks(self) -> dict[str, int]:
        """A copy of the levelized ranks (partition planning reads them)."""
        return dict(self._ranks)

    def adopt_values(self, items) -> None:
        """Adopt externally converged net values (boundary exchange).

        ``items`` yields ``(net_name, base, lanes)`` with ``lanes`` a
        sparse ``{lane: Waveform}`` override dict or None.  Values are
        interned and stored verbatim — not re-evaluated and not passed
        through the case map, because the sending partition already
        applied its case mapping; a transfer is not an evaluation, so
        ``stats.events`` is untouched.  Loads of a changed net are
        enqueued (the scope filter applies), which is exactly how an
        adopted change propagates into this partition.
        """
        for name, base, lanes in items:
            net = self.circuit.nets.get(name)
            if net is None:
                continue
            rep = self.circuit.find(net)
            if rep in self._fixed:
                continue
            base = self._intern(base)
            new_lanes = (
                {lane: self._intern(wf) for lane, wf in lanes.items()}
                if lanes
                else None
            )
            prev = self.values.get(rep)
            if (prev is base or prev == base) and (
                self._lanes.get(rep) or None
            ) == new_lanes:
                continue
            self.values[rep] = base
            if new_lanes:
                self._lanes[rep] = new_lanes
                self._word_needed = True
            else:
                self._lanes.pop(rep, None)
            for load in self._loads.get(rep, ()):
                self._enqueue(load)

    def _compute_ranks(self) -> dict[str, int]:
        """Topological depth of every non-checker component.

        Edges run from a net's driver to its loads — through registers as
        well as gates, because a downstream pipeline stage cannot settle
        before its upstream register has — except across nets pinned by a
        clock assertion, whose value never depends on the driver.  Cycles
        are broken precisely at the feedback edges: an edge is feedback
        when it stays inside a strongly connected component and leaves a
        sequential element (every feedback path in a legal synchronous
        design runs through a register or latch, section 1.2.2).  A cycle
        with no sequential member — an illegal combinational loop — is
        ranked after everything else.  Ranks are a drain *order*, never a
        gate on evaluation, so correctness is unaffected either way.
        """
        comps = [c for c in self.circuit.iter_components() if not c.prim.is_checker]
        n = len(comps)
        index = {c.name: i for i, c in enumerate(comps)}
        succ: list[list[int]] = [[] for _ in range(n)]
        for i, comp in enumerate(comps):
            for _pin, conn in comp.output_pins():
                rep = self.circuit.find(conn.net)
                assertion = rep.assertion
                if assertion is not None and assertion.kind.is_clock:
                    continue  # the assertion pins this net; no propagation
                for load in self._loads.get(rep, ()):
                    j = index.get(load.name)
                    if j is not None:
                        succ[i].append(j)
        scc = _strongly_connected(succ)
        is_seq = [c.prim.name in _SEQUENTIAL_PRIMS for c in comps]
        indegree = [0] * n
        forward: list[list[int]] = [[] for _ in range(n)]
        for i in range(n):
            for j in succ[i]:
                if scc[i] == scc[j] and is_seq[i]:
                    continue  # feedback edge: cut
                forward[i].append(j)
                indegree[j] += 1
        rank = [0] * n
        ready = deque(i for i in range(n) if indegree[i] == 0)
        popped = 0
        while ready:
            i = ready.popleft()
            popped += 1
            for j in forward[i]:
                if rank[j] < rank[i] + 1:
                    rank[j] = rank[i] + 1
                indegree[j] -= 1
                if indegree[j] == 0:
                    ready.append(j)
        if popped != n:
            # Combinational loop: schedule its members last (the
            # oscillation valve reports them if they never converge).
            done = [i for i in range(n) if indegree[i] == 0]
            tail = 1 + max((rank[i] for i in done), default=0)
            for i in range(n):
                if indegree[i] > 0:
                    rank[i] = tail
        return {comp.name: rank[i] for i, comp in enumerate(comps)}

    # ------------------------------------------------------------------
    # preparation of input waveforms
    # ------------------------------------------------------------------

    def _wire_delay(self, conn: Connection) -> tuple[int, int]:
        if conn.wire_delay_ps is not None:
            return conn.wire_delay_ps
        rep = self.circuit.find(conn.net)
        if rep.wire_delay_ps is not None:
            return rep.wire_delay_ps
        if conn.net.wire_delay_ps is not None:
            return conn.net.wire_delay_ps
        lo, hi = self.config.default_wire_delay_ps
        per_load = self.config.wire_delay_per_load_ps
        if per_load:
            # Section 3.3's refined rule: a heavily loaded run is slower.
            extra_loads = max(0, len(self._loads.get(rep, ())) - 1)
            hi += per_load * extra_loads
        return lo, hi

    def raw_value(self, net: Net) -> Waveform:
        rep = self.circuit.find(net)
        wf = self.values.get(rep)
        if wf is None:
            wf = Waveform.constant(self.period, UNKNOWN)
        return wf

    def prepared_input(
        self, conn: Connection, zero_wire: bool = False
    ) -> Waveform:
        """The signal as seen at a component input pin.

        Applies the complement marker and the interconnection delay
        (section 2.5.3) unless a ``W``/``Z``/``H`` directive zeroed the
        wire at this input.

        Memoized per ``(connection, zero_wire)`` against the identity of
        the stored net value: a store to the net replaces the value
        instance, which invalidates the entry automatically.  The
        connection fixes the remaining inputs of the computation (invert
        flag and wire delay), so the key is complete.
        """
        raw = self.raw_value(conn.net)
        if not self.config.memoize_evaluation:
            return self._prepare(conn, raw, zero_wire)
        key = (id(conn), zero_wire)
        entry = self._prepared_cache.get(key)
        if entry is not None and entry[0] is raw:
            self.stats.prepared_hits += 1
            return entry[1]
        self.stats.prepared_misses += 1
        prepared = self._intern(self._prepare(conn, raw, zero_wire))
        self._prepared_cache[key] = (raw, prepared)
        return prepared

    def _prepare(
        self, conn: Connection, raw: Waveform, zero_wire: bool
    ) -> Waveform:
        wf = raw
        if conn.invert:
            wf = wf.mapped(value_not)
        if not zero_wire:
            dmin, dmax = self._wire_delay(conn)
            if (dmin, dmax) != (0, 0):
                wf = wf.delayed(dmin, dmax)
        return wf

    def _intern(self, wf: Waveform) -> Waveform:
        """Hash-cons ``wf`` when interning is enabled, counting hits.

        Goes through the engine's (session-owned) :class:`InternTable`,
        not the process-global table, so cross-run sharing is scoped to
        the session's lifetime and deterministic.
        """
        if not self.config.intern_waveforms:
            return wf
        key = (wf.period, wf.segments, wf.skew, wf.eval_str)
        table = self._intern_table.table
        out = table.get(key)
        if out is not None:
            self.stats.intern_hits += 1
            return out
        table[key] = wf
        self.stats.intern_misses += 1
        return wf

    def _directive_letter(self, conn: Connection, raw: Waveform) -> tuple[str, str]:
        """The directive letter governing this gate input, plus the rest.

        A string written at the connection starts a fresh directive string;
        otherwise one riding on the incoming waveform continues an earlier
        one, each gate consuming one letter (section 2.8's EVAL STR PTR).
        """
        if conn.directives:
            return conn.directives[0], conn.directives[1:]
        if raw.eval_str:
            return raw.eval_str[0], raw.eval_str[1:]
        return "", ""

    # ------------------------------------------------------------------
    # initialization (section 2.9, first step)
    # ------------------------------------------------------------------

    def initialize(self, case: dict[str, int] | None = None) -> None:
        """Set every signal to its starting value and queue all primitives."""
        self.values.clear()
        self._fixed.clear()
        self.xref_assumed_stable.clear()
        self._eval_counts.clear()
        self._gating.clear()
        self._queue.clear()
        self._heap.clear()
        self._queued.clear()
        self._prepared_cache.clear()
        self._eval_memo.clear()
        self._check_memo.clear()
        self.stats = EngineStats(
            levelize_seconds=self._levelize_seconds, max_rank=self._max_rank
        )
        self._lanes.clear()
        self._case_map, self._lane_case = self._build_case_map(case or {})
        for rep in self.circuit.representatives():
            raw, caseable = self._initial_value_raw(rep)
            base = self._apply_case(rep, raw) if caseable else raw
            self.values[rep] = base = self._intern(base)
            self._set_initial_lanes(rep, raw, base, caseable)
        self._word_needed = bool(self._lane_case)
        for comp in self.circuit.iter_components():
            if not comp.prim.is_checker:
                self._enqueue(comp)

    def _build_case_map(
        self, case: dict[str, int]
    ) -> tuple[dict[Net, Value], dict[Net, dict[int, Value]]]:
        out: dict[Net, Value] = {}
        lanes: dict[Net, dict[int, Value]] = {}
        for name, bit in case.items():
            value = ONE if bit else ZERO
            net = self.circuit.nets.get(name)
            if net is not None:
                out[self.circuit.find(net)] = value
                continue
            ref = parse_lane_ref(self.circuit, name)
            if ref is None:
                raise KeyError(f"case references unknown signal {name!r}")
            rep, lane = ref
            lanes.setdefault(rep, {})[lane] = value
        return out, lanes

    def _apply_case(self, rep: Net, wf: Waveform) -> Waveform:
        """Map STABLE to the case constant for case-analysis signals.

        Section 2.7: the Verifier sets the signal to the case value
        "whenever the circuit would normally set it to the value STABLE".
        """
        target = self._case_map.get(rep)
        if target is None:
            return wf
        return wf.mapped(lambda v: target if v is STABLE else v)

    def _lane_target(self, rep: Net, lane: int) -> Value | None:
        """The case constant governing one lane: lane key beats whole-net."""
        lc = self._lane_case.get(rep)
        if lc is not None:
            target = lc.get(lane)
            if target is not None:
                return target
        return self._case_map.get(rep)

    def _apply_lane_case(self, rep: Net, lane: int, wf: Waveform) -> Waveform:
        target = self._lane_target(rep, lane)
        if target is None:
            return wf
        return wf.mapped(lambda v: target if v is STABLE else v)

    def _set_initial_lanes(
        self, rep: Net, raw: Waveform, base: Waveform, caseable: bool
    ) -> None:
        """Record per-lane initial overrides where a lane case key differs."""
        lc = self._lane_case.get(rep)
        if not lc or not caseable:
            return
        over: dict[int, Waveform] = {}
        for lane in sorted(lc):
            wf = self._intern(self._apply_lane_case(rep, lane, raw))
            if wf != base:
                over[lane] = wf
        if over:
            self._lanes[rep] = over

    def _initial_value_raw(self, rep: Net) -> tuple[Waveform, bool]:
        """The pre-case initial value, plus whether case mapping applies.

        The raw waveform is what a lane case key re-maps per lane; the
        ``caseable`` flag is False exactly for the branches the scalar path
        never case-mapped (supplies, clock assertions, driven-UNKNOWN).
        """
        name = rep.base_name.upper()
        if name in _SUPPLY:
            self._fixed.add(rep)
            return Waveform.constant(self.period, _SUPPLY[name]), False
        assertion = rep.assertion
        driven = rep in self._drivers
        if assertion is not None and assertion.kind.is_clock:
            # Clock assertions pin the signal for the whole run.
            self._fixed.add(rep)
            skew = self.config.clock_skew_ns(
                assertion.kind.name == "PRECISION_CLOCK"
            )
            return assertion.waveform(self.circuit.timebase, skew), False
        if driven:
            return Waveform.constant(self.period, UNKNOWN), False
        if assertion is not None:
            # Interface signal: the designer's assertion drives it until
            # hardware generates it (section 2.5.2).
            self._fixed.add(rep)
            return assertion.waveform(self.circuit.timebase), True
        if self.constraints is not None:
            spec = self.constraints.input_delay_for(rep.name)
            if spec is not None:
                # set_input_delay: the port changes inside the declared
                # windows around its reference clock edge and is stable
                # elsewhere.  The static analysis synthesizes its arrival
                # windows from the very same spans (input_delay_spans), so
                # enclosure holds by construction.
                from ..constraints import input_delay_spans

                spans = input_delay_spans(spec, self.circuit, self.config)
                if spans:
                    self._fixed.add(rep)
                    wf = Waveform.from_intervals(
                        self.period,
                        STABLE,
                        [(lo, hi, CHANGE) for lo, hi in spans],
                    )
                    return wf, True
        # Undefined signal with no assertion: taken to be always stable and
        # put on a special cross-reference listing (section 2.5).
        self._fixed.add(rep)
        self.xref_assumed_stable.append(rep.name)
        return Waveform.constant(self.period, STABLE), True

    # ------------------------------------------------------------------
    # fixed point
    # ------------------------------------------------------------------

    def _enqueue(self, comp: Component) -> None:
        if comp.prim.is_checker or comp.name in self._queued:
            return
        if self._scope is not None and comp.name not in self._scope:
            return
        if self.config.levelized_scheduling:
            heapq.heappush(
                self._heap, (self._ranks.get(comp.name, 0), self._seq, comp)
            )
            self._seq += 1
        else:
            self._queue.append(comp)
        self._queued.add(comp.name)

    def _pop(self) -> Component | None:
        if self.config.levelized_scheduling:
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]
        return self._queue.popleft() if self._queue else None

    def _store(self, conn: Connection, wf: Waveform) -> None:
        rep = self.circuit.find(conn.net)
        if rep in self._fixed:
            return  # assertion or supply wins over the driver
        wf = self._intern(self._apply_case(rep, wf))
        prev = self.values.get(rep)
        # With interning, equal values share one instance, so convergence
        # detection is an identity check first and an ``==`` walk only for
        # non-interned values.
        if prev is wf or prev == wf:
            return
        self.values[rep] = wf
        self.stats.events += 1
        if rep.width > 1:
            self.stats.vector_events += 1
        for load in self._loads.get(rep, ()):
            self._enqueue(load)

    def _store_word(self, conn: Connection, lane_out: list[Waveform]) -> None:
        """Store a per-lane evaluation result as base + sparse overrides."""
        rep = self.circuit.find(conn.net)
        if rep in self._fixed:
            return  # assertion or supply wins over the driver
        width = rep.width
        n = len(lane_out)
        finals = [
            self._intern(
                self._apply_lane_case(
                    rep, lane, lane_out[lane] if lane < n else lane_out[lane % n]
                )
            )
            for lane in range(width)
        ]
        word = WordWave.from_lanes(finals)
        base, over = word.base, word.overrides
        prev_base = self.values.get(rep)
        if (prev_base is base or prev_base == base) and self._lanes.get(
            rep, {}
        ) == over:
            return
        self.values[rep] = base
        if over:
            self._lanes[rep] = dict(over)
            self.stats.lane_splits += 1
        else:
            self._lanes.pop(rep, None)
        self.stats.events += 1
        if width > 1:
            self.stats.vector_events += 1
        for load in self._loads.get(rep, ()):
            self._enqueue(load)

    def run(self) -> int:
        """Drain the worklist to a fixed point; returns events processed."""
        start_events = self.stats.events
        limit = self.config.max_evals_per_component
        while True:
            comp = self._pop()
            if comp is None:
                break
            self._queued.discard(comp.name)
            count = self._eval_counts.get(comp.name, 0) + 1
            self._eval_counts[comp.name] = count
            if count > limit:
                raise OscillationError(comp, count)
            self.stats.evaluations += 1
            self._evaluate(comp)
        events = self.stats.events - start_events
        self.stats.events_by_case.append(events)
        return events

    def apply_case(self, case: dict[str, int]) -> None:
        """Switch to the next case, disturbing only affected signals."""
        new_map, new_lanes = self._build_case_map(case)
        affected = {
            rep
            for rep in (
                set(new_map)
                | set(self._case_map)
                | set(new_lanes)
                | set(self._lane_case)
            )
            if new_map.get(rep) is not self._case_map.get(rep)
            or new_lanes.get(rep) != self._lane_case.get(rep)
        }
        self._case_map = new_map
        self._lane_case = new_lanes
        self._word_needed = bool(self._lane_case)
        for rep in affected:
            if rep in self._drivers:
                # Re-evaluating the driver re-stores the value through the
                # new case mapping (the word path also refreshes any stale
                # lane overrides at that store).
                self._enqueue(self._drivers[rep][0])
            else:
                raw, caseable = self._case_change_raw(rep)
                base = self._intern(self._apply_case(rep, raw)) if caseable else raw
                over: dict[int, Waveform] = {}
                lc = self._lane_case.get(rep)
                if lc and caseable:
                    for lane in sorted(lc):
                        wf = self._intern(self._apply_lane_case(rep, lane, raw))
                        if wf != base:
                            over[lane] = wf
                if self.values.get(rep) != base or self._lanes.get(rep, {}) != over:
                    self.values[rep] = base
                    if over:
                        self._lanes[rep] = over
                        self.stats.lane_splits += 1
                    else:
                        self._lanes.pop(rep, None)
                    self.stats.events += 1
                    if rep.width > 1:
                        self.stats.vector_events += 1
                    for load in self._loads.get(rep, ()):
                        self._enqueue(load)

    def _case_change_raw(self, rep: Net) -> tuple[Waveform, bool]:
        assertion = rep.assertion
        if assertion is not None and not assertion.kind.is_clock:
            return assertion.waveform(self.circuit.timebase), True
        if assertion is None and rep.base_name.upper() not in _SUPPLY:
            return Waveform.constant(self.period, STABLE), True
        return self.values[rep], False

    # ------------------------------------------------------------------
    # incremental re-verification (repro.session / repro.incremental)
    # ------------------------------------------------------------------

    def forget_connections(self, conns: Iterable[Connection]) -> None:
        """Drop prepared-input cache entries for retired/edited connections.

        The prepared cache validates by identity of the stored *raw*
        waveform only, so an edit that changes a connection's effective
        wire delay without disturbing the raw value (or that replaces the
        Connection object entirely, freeing its ``id()`` for reuse) must
        purge its entries explicitly.
        """
        ids = {id(c) for c in conns}
        if not ids:
            return
        stale = [key for key in self._prepared_cache if key[0] in ids]
        for key in stale:
            del self._prepared_cache[key]

    def _dirty_cone(self, seeds: Iterable[Component]) -> set[str]:
        """Names of every evaluated primitive in the seeds' transitive fanout.

        This is reporting/pre-screen scoping only — the worklist is seeded
        with the *directly* dirty components and the event propagation IS
        the cone traversal — so the walk follows the same edges the
        levelizer does: fanout stops at nets pinned by a clock assertion,
        whose value never depends on the driver.
        """
        seen: set[str] = set()
        stack = [c for c in seeds if not c.prim.is_checker]
        while stack:
            comp = stack.pop()
            if comp.name in seen:
                continue
            seen.add(comp.name)
            for _pin, conn in comp.output_pins():
                rep = self.circuit.find(conn.net)
                assertion = rep.assertion
                if assertion is not None and assertion.kind.is_clock:
                    continue
                for load in self._loads.get(rep, ()):
                    if not load.prim.is_checker and load.name not in seen:
                        stack.append(load)
        return seen

    def incremental_begin(
        self, case: dict[str, int] | None, dirty: Iterable[Component]
    ) -> None:
        """Re-enter the fixed point after circuit edits, reusing state.

        The alternative to :meth:`initialize` for a circuit already
        verified by this engine: stored waveforms, the intern table, the
        evaluation memo and the prepared-input cache all survive; only
        the ``dirty`` components (plus anything the reclassification scan
        below disturbs) are enqueued.  Correctness rests on the same
        argument as :meth:`apply_case` and the parallel case blocks: for
        a legal synchronous design the fixed point is unique, so any
        starting state converges to the same waveforms provided every
        component whose inputs differ from the converged state is queued.

        Three steps:

        1. ``apply_case`` switches from the last run's final case mapping
           back to ``case`` (normally ``cases[0]``), disturbing exactly
           the case-affected signals.
        2. A reclassification scan re-derives the initial-value class of
           every representative (supply / clock assertion / driven /
           asserted / input-delay / assumed-stable) — edits can move nets
           between classes — re-storing fixed-class nets whose waveform
           changed and rebuilding the assumed-stable cross-reference.
           Driven nets keep their stored waveforms (counted as
           ``reused_waveforms``).
        3. The ``dirty`` components are enqueued to seed the worklist.
        """
        if not self.values:
            raise RuntimeError(
                "incremental_begin needs a previously converged run; "
                "call initialize() + run() first"
            )
        dirty = list(dirty)
        self._eval_counts.clear()
        self._queue.clear()
        self._heap.clear()
        self._queued.clear()
        self.stats = EngineStats(
            levelize_seconds=self._levelize_seconds,
            max_rank=self._max_rank,
            incremental_runs=1,
        )
        self.apply_case(case or {})
        reused = 0
        self._fixed.clear()
        self.xref_assumed_stable.clear()
        for rep in self.circuit.representatives():
            raw, caseable = self._initial_value_raw(rep)
            if rep not in self._fixed:
                # Driven net: its stored waveform is the converged value
                # unless an upstream evaluation stores a new one.
                reused += 1
                continue
            base = self._intern(self._apply_case(rep, raw) if caseable else raw)
            over: dict[int, Waveform] = {}
            lc = self._lane_case.get(rep)
            if lc and caseable:
                for lane in sorted(lc):
                    wf = self._intern(self._apply_lane_case(rep, lane, raw))
                    if wf != base:
                        over[lane] = wf
            if self.values.get(rep) == base and self._lanes.get(rep, {}) == over:
                reused += 1
                continue
            self.values[rep] = base
            if over:
                self._lanes[rep] = over
                self.stats.lane_splits += 1
            else:
                self._lanes.pop(rep, None)
            self.stats.events += 1
            if rep.width > 1:
                self.stats.vector_events += 1
            for load in self._loads.get(rep, ()):
                self._enqueue(load)
        for comp in dirty:
            self._enqueue(comp)
        self.stats.reused_waveforms = reused
        self.stats.dirty_primitives = len(self._dirty_cone(dirty))

    # ------------------------------------------------------------------
    # primitive evaluation
    # ------------------------------------------------------------------

    def _memoized(self, key: tuple, thunk) -> Waveform:
        """LRU-memoize one primitive model evaluation.

        Soundness rule: ``key`` must include *everything* that can affect
        the model's output — the primitive identity, every (interned)
        input waveform (whose equality covers segments, skew and eval
        string), and every delay parameter.  The models themselves are
        pure functions of those inputs.
        """
        if not self.config.memoize_evaluation:
            return thunk()
        memo = self._eval_memo
        out = memo.get(key)
        if out is not None:
            self.stats.memo_hits += 1
            memo.move_to_end(key)
            return out
        self.stats.memo_misses += 1
        out = self._intern(thunk())
        memo[key] = out
        if len(memo) > self.config.eval_memo_size:
            memo.popitem(last=False)
        return out

    def _raw_of(self, conn: Connection) -> Waveform:
        return self.raw_value(conn.net)

    def _comp_diverged(self, comp: Component) -> bool:
        """Does any pin of ``comp`` touch a net with per-lane state?"""
        lanes = self._lanes
        lane_case = self._lane_case
        for conn in comp.pins.values():
            rep = self.circuit.find(conn.net)
            if rep in lanes or rep in lane_case:
                return True
        return False

    def _input_conns(self, comp: Component) -> list[Connection]:
        """Every non-output connection, in pin declaration order."""
        out_pins = {pin for pin, _conn in comp.output_pins()}
        return [conn for pin, conn in comp.pins.items() if pin not in out_pins]

    def _lane_raw(self, conn: Connection, lane: int) -> Waveform:
        return self._net_lane_value(conn.net, lane)

    def _net_lane_value(self, net: Net, lane: int) -> Waveform:
        """One lane of a net: the sparse override if present, else the base."""
        rep = self.circuit.find(net)
        over = self._lanes.get(rep)
        if over:
            wf = over.get(lane % rep.width)
            if wf is not None:
                return wf
        return self.raw_value(net)

    def _lane_prepared(
        self, conn: Connection, lane: int, zero_wire: bool = False
    ) -> Waveform:
        """Per-lane :meth:`prepared_input`, sharing the scalar cache.

        A lane whose raw value is the net's base waveform prepares through
        the ordinary per-connection cache; only overridden lanes pay for a
        lane-keyed entry.
        """
        rep = self.circuit.find(conn.net)
        idx = lane % rep.width
        over = self._lanes.get(rep)
        raw = over.get(idx) if over else None
        if raw is None:
            return self.prepared_input(conn, zero_wire)
        if not self.config.memoize_evaluation:
            return self._prepare(conn, raw, zero_wire)
        key = (id(conn), zero_wire, idx)
        entry = self._prepared_cache.get(key)
        if entry is not None and entry[0] is raw:
            self.stats.prepared_hits += 1
            return entry[1]
        self.stats.prepared_misses += 1
        prepared = self._intern(self._prepare(conn, raw, zero_wire))
        self._prepared_cache[key] = (raw, prepared)
        return prepared

    def _evaluate(self, comp: Component) -> None:
        if self._word_needed and self._comp_diverged(comp):
            self._evaluate_word(comp)
            return
        out = self._model_output(comp, self._raw_of, self.prepared_input)
        self._store(comp.pins["OUT"], out)

    def _evaluate_word(self, comp: Component) -> None:
        """Per-lane evaluation of a primitive with diverged inputs.

        Lanes whose input tuples agree share one model run (and the runs
        themselves share the content-addressed memo with the scalar path),
        so a word primitive costs one evaluation per *divergence group*,
        not one per bit.
        """
        in_conns = self._input_conns(comp)
        cache: dict[tuple[Waveform, ...], Waveform] = {}
        lane_out: list[Waveform] = []
        for lane in range(comp.width):
            key = tuple(self._lane_raw(conn, lane) for conn in in_conns)
            out = cache.get(key)
            if out is None:

                def raw_of(conn: Connection, _lane: int = lane) -> Waveform:
                    return self._lane_raw(conn, _lane)

                def prepared_of(
                    conn: Connection,
                    zero_wire: bool = False,
                    _lane: int = lane,
                ) -> Waveform:
                    return self._lane_prepared(conn, _lane, zero_wire)

                out = cache[key] = self._model_output(comp, raw_of, prepared_of)
            lane_out.append(out)
        self._store_word(comp.pins["OUT"], lane_out)

    def _model_output(
        self,
        comp: Component,
        raw_of: Callable[[Connection], Waveform],
        prepared_of: Callable[..., Waveform],
    ) -> Waveform:
        prim = comp.prim.name
        if prim in _GATE_PRIMS:
            return self._evaluate_gate(comp, raw_of, prepared_of)
        if prim in ("REG", "REG_RS"):
            clock = prepared_of(comp.pins["CLOCK"])
            data = prepared_of(comp.pins["DATA"])
            delay = comp.delay_ps()
            set_ = self._optional_input(comp, "SET", prepared_of)
            reset = self._optional_input(comp, "RESET", prepared_of)
            return self._memoized(
                ("REG", clock, data, delay, set_, reset),
                lambda: eval_register(
                    clock=clock, data=data, delay=delay, set_=set_, reset=reset
                ),
            )
        if prim in ("LATCH", "LATCH_RS"):
            enable = prepared_of(comp.pins["ENABLE"])
            data = prepared_of(comp.pins["DATA"])
            delay = comp.delay_ps()
            set_ = self._optional_input(comp, "SET", prepared_of)
            reset = self._optional_input(comp, "RESET", prepared_of)
            return self._memoized(
                ("LATCH", enable, data, delay, set_, reset),
                lambda: eval_latch(
                    enable=enable, data=data, delay=delay, set_=set_, reset=reset
                ),
            )
        if prim.startswith("MUX"):
            n = int(prim[3:])
            n_sel = max(1, n.bit_length() - 1)
            selects = tuple(
                prepared_of(comp.pins[f"S{i}"]) for i in range(n_sel)
            )
            data = tuple(prepared_of(comp.pins[f"I{i}"]) for i in range(n))
            delay = comp.delay_ps()
            select_delay = comp.delay_ps("select_delay")
            return self._memoized(
                ("MUX", selects, data, delay, select_delay),
                lambda: eval_mux(
                    selects, data, delay=delay, select_delay=select_delay
                ),
            )
        # pragma: no cover - registry covers everything else
        raise AssertionError(f"no model for primitive {prim}")

    def _optional_input(
        self, comp: Component, pin: str, prepared_of: Callable[..., Waveform]
    ) -> Waveform | None:
        conn = comp.pins.get(pin)
        return prepared_of(conn) if conn is not None else None

    def _evaluate_gate(
        self,
        comp: Component,
        raw_of: Callable[[Connection], Waveform],
        prepared_of: Callable[..., Waveform],
    ) -> Waveform:
        """Gate evaluation with directive handling (section 2.6)."""
        conns = [conn for _pin, conn in comp.input_pins()]
        pins = [pin for pin, _conn in comp.input_pins()]
        raws = [raw_of(c) for c in conns]
        letters: list[str] = []
        rests: list[str] = []
        for conn, raw in zip(conns, raws):
            letter, rest = self._directive_letter(conn, raw)
            letters.append(letter)
            rests.append(rest)
        prepared = [
            prepared_of(conn, zero_wire=(letter in _ZERO_WIRE))
            for conn, letter in zip(conns, letters)
        ]
        delay = comp.delay_ps()
        gate_zeroed = any(letter in _ZERO_GATE for letter in letters)
        if gate_zeroed:
            delay = (0, 0)
        assume_idx = next(
            (i for i, letter in enumerate(letters) if letter in _ASSUME), None
        )
        if assume_idx is not None:
            self._gating[comp.name] = pins[assume_idx]
            enabling = ENABLING_LEVEL.get(comp.prim.name, STABLE)
            enabling_wf = Waveform.constant(self.period, enabling)
            prepared = [
                wf if i == assume_idx else enabling_wf
                for i, wf in enumerate(prepared)
            ]
        else:
            self._gating.pop(comp.name, None)
        rise = comp.params.get("rise_delay")
        fall = comp.params.get("fall_delay")
        inputs = tuple(wf.with_eval_str("") for wf in prepared)
        if (rise or fall) and not gate_zeroed:
            # Asymmetric technology (section 4.2.2): combine at zero delay,
            # then apply the per-edge ranges to the *output* transitions.
            # Inversions need no special handling — the zero-delay output
            # already carries the inverted edge directions, so alternating
            # rise/fall roles through multiple inverting levels (the
            # thesis's adjustment) falls out automatically.
            from .risefall import rise_fall_delayed

            rise = rise or delay
            fall = fall or delay
            out = self._memoized(
                ("GATE_RF", comp.prim.name, inputs, rise, fall),
                lambda: rise_fall_delayed(
                    eval_gate(
                        comp.prim.name, inputs, (0, 0), comp.prim.inverting
                    ),
                    rise,
                    fall,
                ),
            )
        else:
            out = self._memoized(
                ("GATE", comp.prim.name, inputs, delay),
                lambda: eval_gate(
                    comp.prim.name, inputs, delay, comp.prim.inverting
                ),
            )
        remaining = next((r for r in rests if r), "")
        return out.with_eval_str(remaining)

    # ------------------------------------------------------------------
    # checking phase (section 2.9, third step)
    # ------------------------------------------------------------------

    def check(self, case_index: int = 0) -> list[Violation]:
        """Evaluate every checker against the converged signal values."""
        violations: list[Violation] = []
        for comp in self.circuit.iter_components():
            if not comp.prim.is_checker:
                continue
            violations.extend(self._check_one(comp, case_index))
        violations.extend(self._check_gating(case_index))
        if self.config.check_assertions:
            violations.extend(self._check_assertions(case_index))
        if self.constraints is not None:
            violations.extend(self._check_constraints(case_index))
        return violations

    def _suffix_name(self, name: str, lane: int) -> str:
        """Lane-qualify a signal name when its net is a vector.

        Matches the :func:`~repro.netlist.bitblast.bit_blast` naming
        contract — ``"NAME [i]"`` with ``i`` modulo the net's width, scalar
        nets untouched, a clock's ``-`` prefix preserved.
        """
        invert = name.startswith("-")
        bare = name[1:] if invert else name
        net = self.circuit.nets.get(bare)
        if net is None:
            return name
        rep = self.circuit.find(net)
        if rep.width == 1:
            return name
        return ("-" if invert else "") + f"{bare} [{lane % rep.width}]"

    def _relabel(self, comp: Component, v: Violation, lane: int) -> Violation:
        fields: dict[str, str] = {"signal": self._suffix_name(v.signal, lane)}
        if comp.width > 1:
            fields["component"] = f"{comp.name} [{lane}]"
        if v.clock is not None:
            fields["clock"] = self._suffix_name(v.clock, lane)
        return _dc_replace(v, **fields)

    def _lane_variants(
        self, comp: Component, case_index: int, impl
    ) -> list[Violation]:
        """Run a checker body once per divergence group, relabelled per lane.

        ``impl(comp, case_index, raw_of, prepared_of)`` must produce records
        with unsuffixed names; lanes whose inputs agree reuse one run.  When
        every lane lands in the same group the word has not really diverged
        at this checker, and the single run's records come back unsuffixed —
        byte-identical to the scalar path (the per-bit comparison expands an
        unsuffixed record over the full width, so blast parity holds).
        """
        in_conns = self._input_conns(comp)
        cache: dict[tuple[Waveform, ...], tuple[int, list[Violation]]] = {}
        lanes: list[tuple[int, list[Violation]]] = []
        for lane in range(comp.width):
            key = tuple(self._lane_raw(conn, lane) for conn in in_conns)
            entry = cache.get(key)
            if entry is None:

                def raw_of(conn: Connection, _lane: int = lane) -> Waveform:
                    return self._lane_raw(conn, _lane)

                def prepared_of(
                    conn: Connection,
                    zero_wire: bool = False,
                    _lane: int = lane,
                ) -> Waveform:
                    return self._lane_prepared(conn, _lane, zero_wire)

                entry = cache[key] = (
                    lane,
                    impl(comp, case_index, raw_of, prepared_of),
                )
            lanes.append((lane, entry[1]))
        if len(cache) == 1:
            return list(lanes[0][1])
        out: list[Violation] = []
        for lane, records in lanes:
            out.extend(self._relabel(comp, v, lane) for v in records)
        return out

    def _checker_key(self, comp: Component, case_index: int) -> tuple:
        """A content key covering everything a checker's verdict depends on.

        Soundness rule (as for :meth:`_memoized`): the key must include
        *everything* that can change the records — the checker identity
        and parameters, per-pin the net name (records embed it), invert
        flag, directives, effective wire delay and raw waveform, the case
        index (records embed it too), and the constraints token (checker
        mods are looked up live).  ``period``, ``glitch_warnings`` and
        ``check_assertions`` are fixed per engine.
        """
        inputs = tuple(
            (
                pin,
                conn.net.name,
                conn.invert,
                conn.directives,
                self._wire_delay(conn),
                self.raw_value(conn.net),
            )
            for pin, conn in sorted(comp.pins.items())
        )
        return (
            comp.name,
            case_index,
            self._constraints_token,
            tuple(sorted(comp.params.items())),
            inputs,
        )

    def _check_one(self, comp: Component, case_index: int) -> list[Violation]:
        if self._word_needed and self._comp_diverged(comp):
            return self._lane_variants(comp, case_index, self._check_one_impl)
        if not self.config.memoize_evaluation:
            return self._check_one_impl(
                comp, case_index, self._raw_of, self.prepared_input
            )
        key = self._checker_key(comp, case_index)
        memo = self._check_memo
        cached = memo.get(key)
        if cached is not None:
            memo.move_to_end(key)
            return list(cached)
        records = self._check_one_impl(
            comp, case_index, self._raw_of, self.prepared_input
        )
        memo[key] = records
        if len(memo) > self.config.eval_memo_size:
            memo.popitem(last=False)
        return list(records)

    def _check_one_impl(
        self, comp: Component, case_index: int, raw_of, prepared_of
    ) -> list[Violation]:
        prim = comp.prim.name
        if prim == "MIN_PULSE_WIDTH":
            conn = comp.pins["I"]
            return check_min_pulse_width(
                comp.name,
                conn.net.name,
                prepared_of(conn),
                comp.params.get("min_high"),
                comp.params.get("min_low"),
                case_index=case_index,
                glitch_warnings=self.config.glitch_warnings,
            )
        i_conn, ck_conn = comp.pins["I"], comp.pins["CK"]
        data = prepared_of(i_conn)
        clock = prepared_of(ck_conn)
        clock_name = ("-" if ck_conn.invert else "") + ck_conn.net.name
        mods = (
            self.constraints.mods_for(comp.name)
            if self.constraints is not None
            else None
        )
        if mods is not None:
            if mods.waived:
                return []  # false path: pruned at the checker boundary
            s_eff, h_eff = mods.effective(
                comp.params["setup"], comp.params["hold"], self.period
            )
            if prim == "SETUP_HOLD_CHK":
                return check_setup_hold_windows(
                    comp.name,
                    i_conn.net.name,
                    data,
                    clock_name,
                    clock,
                    setup_eff_ps=s_eff,
                    hold_eff_ps=h_eff,
                    setup_req_ps=comp.params["setup"],
                    hold_req_ps=comp.params["hold"],
                    case_index=case_index,
                    clock_shift_ps=mods.clock_shift_ps,
                )
            # Rise/fall checker: the three windows anchor on different
            # edges, so the effective extents are clamped at zero (a waived
            # side checks nothing) and fed to the nominal checker against
            # the latency-shifted clock.  The static side mirrors this
            # clamped construction exactly.
            return check_setup_rise_hold_fall(
                comp.name,
                i_conn.net.name,
                data,
                clock_name,
                clock.rotated(mods.clock_shift_ps),
                max(0, s_eff),
                max(0, h_eff),
                case_index=case_index,
            )
        checker = (
            check_setup_hold
            if prim == "SETUP_HOLD_CHK"
            else check_setup_rise_hold_fall
        )
        return checker(
            comp.name,
            i_conn.net.name,
            data,
            clock_name,
            clock,
            comp.params["setup"],
            comp.params["hold"],
            case_index=case_index,
        )

    def _check_constraints(self, case_index: int) -> list[Violation]:
        """Checks that exist only when an SDC constraint demands them.

        Each has a static twin in ``sta/slack.py`` producing the same-keyed
        record, so ``crosscheck.check_encloses`` can compare verdicts
        per (component, kind, signal).
        """
        cs = self.constraints
        out: list[Violation] = []
        for comp in self.circuit.iter_components():
            prim = comp.prim.name
            has_rs = (
                prim in ("REG_RS", "LATCH_RS")
                and cs.rs_for(comp.name) is not None
            )
            has_borrow = (
                prim in ("LATCH", "LATCH_RS")
                and cs.borrow_for(comp.name) is not None
            )
            if not has_rs and not has_borrow:
                continue
            diverged = self._word_needed and self._comp_diverged(comp)
            if has_rs:
                if diverged:
                    out.extend(
                        self._lane_variants(comp, case_index, self._check_rs_impl)
                    )
                else:
                    out.extend(
                        self._check_rs_impl(
                            comp, case_index, self._raw_of, self.prepared_input
                        )
                    )
            if has_borrow:
                if diverged:
                    out.extend(
                        self._lane_variants(
                            comp, case_index, self._check_borrow_impl
                        )
                    )
                else:
                    out.extend(
                        self._check_borrow_impl(
                            comp, case_index, self._raw_of, self.prepared_input
                        )
                    )
        for spec in cs.output_delays:
            out.extend(self._check_output_delay(spec, case_index))
        return out

    def _check_rs_impl(
        self, comp: Component, case_index: int, raw_of, prepared_of
    ) -> list[Violation]:
        spec = self.constraints.rs_for(comp.name)
        prim = comp.prim.name
        clock_pin = "CLOCK" if prim == "REG_RS" else "ENABLE"
        clock_conn = comp.pins[clock_pin]
        clock = prepared_of(clock_conn)
        out: list[Violation] = []
        for pin in ("SET", "RESET"):
            conn = comp.pins.get(pin)
            if conn is None:
                continue
            out.extend(
                check_recovery_removal(
                    comp.name,
                    conn.net.name,
                    prepared_of(conn),
                    clock_conn.net.name,
                    clock,
                    spec.recovery_ps,
                    spec.removal_ps,
                    case_index=case_index,
                )
            )
        return out

    def _check_borrow_impl(
        self, comp: Component, case_index: int, raw_of, prepared_of
    ) -> list[Violation]:
        borrow = self.constraints.borrow_for(comp.name)
        enable_conn = comp.pins["ENABLE"]
        data_conn = comp.pins["DATA"]
        return check_max_time_borrow(
            comp.name,
            data_conn.net.name,
            prepared_of(data_conn),
            enable_conn.net.name,
            prepared_of(enable_conn),
            borrow,
            case_index=case_index,
        )

    def _check_output_delay(self, spec, case_index: int) -> list[Violation]:
        """set_output_delay as a setup/hold check on the port's raw value.

        Resolves per-bit clones (``"NET [i]"``) when the exact name is
        absent — the bit-blasted twin of a vector port — and expands by
        lane when the word-level run diverged the port or its clock.
        """
        out: list[Violation] = []
        net = self.circuit.nets.get(spec.net)
        clock_net = self.circuit.nets.get(spec.clock)
        if net is None:
            # Bit-blasted circuit: check each per-bit clone of the port.
            i = 0
            while True:
                n = self.circuit.nets.get(f"{spec.net} [{i}]")
                if n is None:
                    break
                cn = clock_net or self.circuit.nets.get(f"{spec.clock} [{i}]")
                if cn is not None:
                    out.extend(
                        check_setup_hold(
                            f"sdc@{spec.net}",
                            n.name,
                            self.raw_value(n),
                            cn.name,
                            self.raw_value(cn),
                            spec.setup_ps,
                            spec.hold_ps,
                            case_index=case_index,
                        )
                    )
                i += 1
            return out
        if clock_net is None:
            return out
        rep = self.circuit.find(net)
        crep = self.circuit.find(clock_net)
        if self._lanes.get(rep) or self._lanes.get(crep):
            cache: dict[tuple[Waveform, Waveform], list[Violation]] = {}
            for lane in range(rep.width):
                data = self._net_lane_value(net, lane)
                clock = self._net_lane_value(clock_net, lane)
                records = cache.get((data, clock))
                if records is None:
                    records = cache[(data, clock)] = check_setup_hold(
                        f"sdc@{spec.net}",
                        spec.net,
                        data,
                        spec.clock,
                        clock,
                        spec.setup_ps,
                        spec.hold_ps,
                        case_index=case_index,
                    )
                out.extend(
                    _dc_replace(
                        v,
                        signal=self._suffix_name(v.signal, lane),
                        clock=self._suffix_name(v.clock, lane)
                        if v.clock is not None
                        else None,
                    )
                    for v in records
                )
            return out
        return check_setup_hold(
            f"sdc@{spec.net}",
            spec.net,
            self.raw_value(net),
            spec.clock,
            self.raw_value(clock_net),
            spec.setup_ps,
            spec.hold_ps,
            case_index=case_index,
        )

    def _check_gating(self, case_index: int) -> list[Violation]:
        """The ``&A``/``&H`` stability checks recorded during evaluation."""
        out: list[Violation] = []
        for comp_name, directive_pin in sorted(self._gating.items()):
            comp = self.circuit.components[comp_name]
            if self._word_needed and self._comp_diverged(comp):

                def impl(
                    c, ci, raw_of, prepared_of, _pin: str = directive_pin
                ) -> list[Violation]:
                    return self._check_gating_impl(c, _pin, ci, raw_of, prepared_of)

                out.extend(self._lane_variants(comp, case_index, impl))
            else:
                out.extend(
                    self._check_gating_impl(
                        comp,
                        directive_pin,
                        case_index,
                        self._raw_of,
                        self.prepared_input,
                    )
                )
        return out

    def _check_gating_impl(
        self, comp: Component, directive_pin: str, case_index: int, raw_of, prepared_of
    ) -> list[Violation]:
        out: list[Violation] = []
        clock_conn = comp.pins[directive_pin]
        raw = raw_of(clock_conn)
        letter, _rest = self._directive_letter(clock_conn, raw)
        clock = prepared_of(clock_conn, zero_wire=(letter in _ZERO_WIRE))
        for pin, conn in comp.input_pins():
            if pin == directive_pin:
                continue
            control = prepared_of(conn)
            out.extend(
                check_gating_stability(
                    comp.name,
                    conn.net.name,
                    control,
                    clock_conn.net.name,
                    clock,
                    case_index=case_index,
                )
            )
        return out

    def _check_assertions(self, case_index: int) -> list[Violation]:
        """Generated signals must honour their stable assertions."""
        out: list[Violation] = []
        for rep in self.circuit.representatives():
            assertion = rep.assertion
            if (
                assertion is None
                or assertion.kind.is_clock
                or rep not in self._drivers
            ):
                continue
            asserted = assertion.waveform(self.circuit.timebase)
            over = self._lanes.get(rep)
            if over:
                cache: dict[Waveform, list[Violation]] = {}
                for lane in range(rep.width):
                    wf = over.get(lane, self.values[rep])
                    records = cache.get(wf)
                    if records is None:
                        records = cache[wf] = check_stable_assertion(
                            rep.name, wf, asserted, case_index=case_index
                        )
                    out.extend(
                        _dc_replace(v, signal=self._suffix_name(v.signal, lane))
                        for v in records
                    )
            else:
                out.extend(
                    check_stable_assertion(
                        rep.name, self.values[rep], asserted, case_index=case_index
                    )
                )
        return out

    # ------------------------------------------------------------------
    # results access
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Waveform]:
        """The converged waveform of every representative signal, by name."""
        return {rep.name: self.values[rep] for rep in self.circuit.representatives()}

    def waveform_of(self, name: str) -> Waveform:
        net = self.circuit.nets.get(name)
        if net is None:
            raise KeyError(f"no signal named {name!r}")
        return self.raw_value(net)

    def word_value(self, name: str) -> WordWave:
        """The full word on a net: base waveform plus per-lane overrides."""
        net = self.circuit.nets.get(name)
        if net is None:
            raise KeyError(f"no signal named {name!r}")
        rep = self.circuit.find(net)
        return WordWave(rep.width, self.raw_value(net), self._lanes.get(rep, {}))
