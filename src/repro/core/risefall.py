"""Different rising and falling delays (section 4.2.2 — future work).

nMOS-style technologies have greatly differing rising and falling delays,
and "it is overly pessimistic to just use the longer of the two delays".
The thesis sketches the solution implemented here:

* where the signal's *level* is known (clocks and case-mapped controls),
  each edge is delayed by its own range — a rising edge by the rise delay,
  a falling edge by the fall delay;
* where it is not (STABLE/CHANGE signals), the conservative combined range
  ``(min(rise, fall), max(rise, fall))`` applies — "in all cases except for
  multiple inverting levels of logic, merely using the maximum of the
  rising and falling delays is the correct choice";
* inverting gates swap the roles: an input rise causes an output *fall*,
  so the engine applies the fall delay to it — the "recognize multiple
  inverting levels and adjust" rule.

Gates take the optional ``rise_delay``/``fall_delay`` parameters; when
present they replace the symmetric ``delay``.
"""

from __future__ import annotations

from .values import (
    CHANGE,
    FALL,
    RISE,
    UNKNOWN,
    Value,
    transition_value,
)
from .waveform import Waveform

Delay = tuple[int, int]


def combined_range(rise: Delay, fall: Delay) -> Delay:
    """The value-independent fallback range."""
    return (min(rise[0], fall[0]), max(rise[1], fall[1]))


def _directional(tv: Value, rise: Delay, fall: Delay) -> Delay:
    if tv is RISE:
        return rise
    if tv is FALL:
        return fall
    return combined_range(rise, fall)


def rise_fall_delayed(wf: Waveform, rise: Delay, fall: Delay) -> Waveform:
    """Propagate a waveform through an element with per-edge delay ranges.

    Known-level waveforms get each boundary delayed by its own range; each
    boundary becomes an explicit transition window (like folded skew), so
    the result carries no separate skew field.  Waveforms containing
    STABLE/CHANGE/UNKNOWN fall back to the symmetric combined range with
    the ordinary skew-field treatment.

    Edge windows that cross (a short pulse whose slow leading edge may
    overtake its fast trailing edge) merge into CHANGE — the pulse may
    vanish, which is exactly what a worst-case analysis must report.
    """
    if rise == fall:
        return wf.delayed(*rise)
    if wf.is_constant:
        return wf
    known = all(
        v in (Value.ZERO, Value.ONE, RISE, FALL) for v, _w in wf.segments
    )
    if not known or wf.has_skew:
        return wf.delayed(*combined_range(rise, fall))

    # Each edge *window* (an instantaneous boundary or an R/F segment)
    # moves as a unit: its start by the direction's minimum delay and its
    # end by the maximum.
    events = []
    for a, b in wf.rising_windows():
        events.append((a + rise[0], b + rise[1], RISE, Value.ONE))
    for a, b in wf.falling_windows():
        events.append((a + fall[0], b + fall[1], FALL, Value.ZERO))
    if not events:
        return wf
    events.sort()
    period = wf.period
    intervals: list[tuple[int, int, Value]] = []
    n = len(events)
    for k, (e_lo, e_hi, tv, after) in enumerate(events):
        nxt_lo = events[(k + 1) % n][0]
        while nxt_lo <= e_hi:
            nxt_lo += period
        # Level segment after this edge settles, then the next edge window.
        intervals.append((e_hi, nxt_lo, after))
    for e_lo, e_hi, tv, _after in events:
        span = max(e_hi - e_lo, 1)
        intervals.append((e_lo, e_lo + min(span, period), tv))
    out = Waveform.from_intervals(period, events[-1][3], intervals)
    # Crossed windows: when the next edge's window opens before this one
    # closes, the order of the edges is uncertain and the pulse between
    # them may vanish — mark the overlap CHANGE.
    crossings: list[tuple[int, int, Value]] = []
    for k in range(n):
        e_lo, e_hi = events[k][0], events[k][1]
        nxt_lo = events[(k + 1) % n][0]
        while nxt_lo <= e_lo:
            nxt_lo += period
        if nxt_lo < e_hi:
            crossings.append((nxt_lo, e_hi, CHANGE))
    if crossings:
        out = out.overlaid(crossings)
    return out


def invert_roles(rise: Delay, fall: Delay) -> tuple[Delay, Delay]:
    """Delay roles through an inverting gate: input rise -> output fall."""
    return fall, rise
