"""Constraint checkers (sections 2.4.4, 2.4.5 and 2.6).

Checkers run after the evaluation fixed point (section 2.9): they read the
final signal values and report violations; they never drive outputs.

All functions here operate on prepared waveforms (interconnection delay
applied, complements taken) and absolute picosecond parameters.
"""

from __future__ import annotations

from .values import ONE, STABLE_VALUES, UNKNOWN, ZERO, Value
from .violations import Violation, ViolationKind
from .waveform import Waveform


def check_setup_hold(
    component: str,
    signal_name: str,
    data: Waveform,
    clock_name: str,
    clock: Waveform,
    setup_ps: int,
    hold_ps: int,
    case_index: int = 0,
) -> list[Violation]:
    """The SETUP HOLD CHK primitive (Figure 2-3, upper).

    The input must be stable for ``setup`` before the rising edge of the
    clock and remain stable for ``hold`` after it.  With clock skew the
    edge is a window ``[r0, r1]`` and the stable requirement spans
    ``[r0 - setup, r1 + hold]``.
    """
    out: list[Violation] = []
    if data.is_fully_unknown or clock.is_fully_unknown:
        return out  # undefined signals are reported via the cross-reference
    clockm = clock.materialized()
    edges = clockm.rising_windows()
    if not edges:
        out.append(
            Violation(
                kind=ViolationKind.NO_CLOCK_EDGE,
                component=component,
                signal=signal_name,
                clock=clock_name,
                case_index=case_index,
                clock_waveform=clockm,
            )
        )
        return out
    datam = data.materialized()
    for edge in edges:
        out.extend(
            _check_edge_window(
                component,
                signal_name,
                datam,
                clock_name,
                clockm,
                edge=edge,
                setup_ps=setup_ps,
                hold_ps=hold_ps,
                case_index=case_index,
            )
        )
    return out


def check_setup_rise_hold_fall(
    component: str,
    signal_name: str,
    data: Waveform,
    clock_name: str,
    clock: Waveform,
    setup_ps: int,
    hold_ps: int,
    case_index: int = 0,
) -> list[Violation]:
    """The SETUP RISE HOLD FALL CHK primitive (Figure 2-3, lower).

    Checks the setup interval before the *rising* edge, the hold interval
    after the *falling* edge, and that the input is stable for the entire
    time the clock is true — the constraint shape of write-enable pulses on
    memory parts (Figure 3-5 uses it for the RAM address lines).
    """
    out: list[Violation] = []
    if data.is_fully_unknown or clock.is_fully_unknown:
        return out
    clockm = clock.materialized()
    rises = clockm.rising_windows()
    falls = clockm.falling_windows()
    if not rises or not falls:
        out.append(
            Violation(
                kind=ViolationKind.NO_CLOCK_EDGE,
                component=component,
                signal=signal_name,
                clock=clock_name,
                case_index=case_index,
                clock_waveform=clockm,
            )
        )
        return out
    datam = data.materialized()
    period = clock.period
    for r0, r1 in rises:
        # Pair this rise with the first fall that begins at or after the
        # rise window starts (circularly) — the end of this assertion pulse.
        def fall_key(fw: tuple[int, int]) -> int:
            return (fw[0] - r0) % period
        f0, f1 = min(falls, key=fall_key)
        f0 = r0 + ((f0 - r0) % period)
        f1 = f0 + (f1 - f0 if f1 >= f0 else 0)
        span_setup = (r0 - setup_ps, r1)
        span_high = (r1, f0)
        span_hold = (f0, f1 + hold_ps)
        for window, kind, required in (
            (span_setup, ViolationKind.SETUP, setup_ps),
            (span_high, ViolationKind.STABLE_WHILE_TRUE, None),
            (span_hold, ViolationKind.HOLD, hold_ps),
        ):
            lo, hi = window
            if hi <= lo:
                continue
            bad = datam.instability_in(lo, hi)
            if not bad:
                continue
            if kind is ViolationKind.SETUP:
                missed = max(h for _l, h, _v in bad) - lo
            elif kind is ViolationKind.HOLD:
                missed = hi - min(l for l, _h, _v in bad)
            else:
                missed = None
            out.append(
                Violation(
                    kind=kind,
                    component=component,
                    signal=signal_name,
                    clock=clock_name,
                    required_ps=required,
                    missed_by_ps=missed,
                    window=window,
                    case_index=case_index,
                    signal_waveform=datam,
                    clock_waveform=clockm,
                )
            )
    return out


def _check_edge_window(
    component: str,
    signal_name: str,
    datam: Waveform,
    clock_name: str,
    clockm: Waveform,
    edge: tuple[int, int],
    setup_ps: int,
    hold_ps: int,
    case_index: int,
) -> list[Violation]:
    """Check one clock-edge window ``edge = (r0, r1)``.

    The input must be stable throughout ``[r0 - setup, r1 + hold]``.  The
    hold time may be negative (Figure 3-5 checks -1.0 ns on the register
    file's data inputs), shrinking the window from the right.  Instability
    that begins before the edge window ends is attributed to setup;
    instability that persists past the edge window start is attributed to
    hold — instability right at the edge therefore reports as both.
    """
    r0, r1 = edge
    w_lo, w_hi = r0 - setup_ps, r1 + hold_ps
    if w_hi <= w_lo:
        return []
    bad = datam.instability_in(w_lo, w_hi)
    if not bad:
        return []
    out: list[Violation] = []
    setup_side = [iv for iv in bad if iv[0] < r1 or iv[0] == iv[1] == r1]
    hold_side = [iv for iv in bad if iv[1] > r0 or iv[0] == iv[1] == r0]
    if setup_side and setup_ps > 0:
        # "The data didn't go stable until 47.5 ns into the cycle and the
        # clock starts rising at 49.0, thereby missing the specified setup
        # interval of 2.5 ns by 1.0 ns" (Figure 3-11).  Data that is not
        # stable at all before the edge misses "by the full" setup time.
        missed = min(max(hi for _lo, hi, _v in setup_side) - w_lo, setup_ps)
        out.append(
            Violation(
                kind=ViolationKind.SETUP,
                component=component,
                signal=signal_name,
                clock=clock_name,
                required_ps=setup_ps,
                missed_by_ps=missed,
                window=(w_lo, r1),
                case_index=case_index,
                signal_waveform=datam,
                clock_waveform=clockm,
            )
        )
    if hold_side and w_hi > r0:
        missed = w_hi - min(lo for lo, _hi, _v in hold_side)
        if hold_ps > 0:
            missed = min(missed, hold_ps)
        out.append(
            Violation(
                kind=ViolationKind.HOLD,
                component=component,
                signal=signal_name,
                clock=clock_name,
                required_ps=hold_ps,
                missed_by_ps=missed,
                window=(r0, w_hi),
                case_index=case_index,
                signal_waveform=datam,
                clock_waveform=clockm,
            )
        )
    return out


def check_setup_hold_windows(
    component: str,
    signal_name: str,
    data: Waveform,
    clock_name: str,
    clock: Waveform,
    setup_eff_ps: int,
    hold_eff_ps: int,
    setup_req_ps: int,
    hold_req_ps: int,
    case_index: int = 0,
    clock_shift_ps: int = 0,
) -> list[Violation]:
    """Setup/hold check with *independent* effective guard windows.

    The constrained form of :func:`check_setup_hold`: effective extents
    come from :meth:`CheckerMods.effective` and may differ wildly from the
    nominal values (a multicycle setup relaxation makes ``setup_eff``
    deeply negative on the folded axis).  The two sides are therefore
    checked as separate windows rather than one merged span:

    * setup window ``[r0 - setup_eff, r1]`` — only when ``setup_eff > 0``
      (a non-positive effective setup means the side is waived);
    * hold window ``[r0, r1 + hold_eff]`` — only when it has extent.

    ``clock_shift_ps`` (clock latency) moves the checker's view of the
    clock edges without touching the circuit fixed point.  The *reported*
    required times are the nominal ``setup_req``/``hold_req`` so messages
    stay meaningful to the designer.
    """
    out: list[Violation] = []
    if data.is_fully_unknown or clock.is_fully_unknown:
        return out
    clockm = clock.rotated(clock_shift_ps).materialized()
    edges = clockm.rising_windows()
    if not edges:
        out.append(
            Violation(
                kind=ViolationKind.NO_CLOCK_EDGE,
                component=component,
                signal=signal_name,
                clock=clock_name,
                case_index=case_index,
                clock_waveform=clockm,
            )
        )
        return out
    datam = data.materialized()
    for r0, r1 in edges:
        for lo, hi, kind, required in (
            (r0 - setup_eff_ps, r1, ViolationKind.SETUP, setup_req_ps),
            (r0, r1 + hold_eff_ps, ViolationKind.HOLD, hold_req_ps),
        ):
            if kind is ViolationKind.SETUP and setup_eff_ps <= 0:
                continue
            if hi <= lo:
                continue
            bad = datam.instability_in(lo, hi)
            if not bad:
                continue
            if kind is ViolationKind.SETUP:
                missed = max(h for _l, h, _v in bad) - lo
            else:
                missed = hi - min(l for l, _h, _v in bad)
            missed = min(missed, hi - lo)
            out.append(
                Violation(
                    kind=kind,
                    component=component,
                    signal=signal_name,
                    clock=clock_name,
                    required_ps=required,
                    missed_by_ps=missed,
                    window=(lo, hi),
                    case_index=case_index,
                    signal_waveform=datam,
                    clock_waveform=clockm,
                )
            )
    return out


def check_recovery_removal(
    component: str,
    control_name: str,
    control: Waveform,
    clock_name: str,
    clock: Waveform,
    recovery_ps: int | None,
    removal_ps: int | None,
    case_index: int = 0,
) -> list[Violation]:
    """Recovery/removal check on an asynchronous SET/RESET overlay.

    The deasserting edge of an asynchronous control must not race the
    active clock edge: the control must be stable for ``recovery`` before
    each clock-edge window and stay stable for ``removal`` after it —
    exactly the setup/hold shape, applied to the control pin instead of
    the data pin.  The thesis's set/reset overlays (section 2.4.5) predate
    this vocabulary; the check is driven entirely by ``set_recovery`` /
    ``set_removal`` constraints.
    """
    out: list[Violation] = []
    if control.is_fully_unknown or clock.is_fully_unknown:
        return out
    clockm = clock.materialized()
    edges = clockm.rising_windows()
    if not edges:
        return out  # no-edge reporting belongs to the main setup/hold check
    controlm = control.materialized()
    for r0, r1 in edges:
        for lo, hi, kind, required in (
            (
                None if recovery_ps is None else r0 - recovery_ps,
                r1,
                ViolationKind.RECOVERY,
                recovery_ps,
            ),
            (
                r0,
                None if removal_ps is None else r1 + removal_ps,
                ViolationKind.REMOVAL,
                removal_ps,
            ),
        ):
            if lo is None or hi is None or required is None or hi <= lo:
                continue
            bad = controlm.instability_in(lo, hi)
            if not bad:
                continue
            if kind is ViolationKind.RECOVERY:
                missed = max(h for _l, h, _v in bad) - lo
            else:
                missed = hi - min(l for l, _h, _v in bad)
            out.append(
                Violation(
                    kind=kind,
                    component=component,
                    signal=control_name,
                    clock=clock_name,
                    required_ps=required,
                    missed_by_ps=min(missed, required),
                    window=(lo, hi),
                    case_index=case_index,
                    signal_waveform=controlm,
                    clock_waveform=clockm,
                )
            )
    return out


def check_max_time_borrow(
    component: str,
    signal_name: str,
    data: Waveform,
    clock_name: str,
    enable: Waveform,
    max_borrow_ps: int,
    case_index: int = 0,
) -> list[Violation]:
    """The ``set_max_time_borrow`` check on a transparent latch.

    While the latch is open (between the enable's rise and the next fall)
    late-arriving data "borrows" time from the transparency window.  The
    constraint caps that: data must settle within ``max_borrow`` of the
    latch opening, i.e. it must be stable throughout
    ``[r1 + max_borrow, f0]`` (from the worst-case end of the opening edge
    to the earliest start of the closing edge).
    """
    out: list[Violation] = []
    if data.is_fully_unknown or enable.is_fully_unknown:
        return out
    enablem = enable.materialized()
    rises = enablem.rising_windows()
    falls = enablem.falling_windows()
    if not rises or not falls:
        return out
    datam = data.materialized()
    period = enable.period
    for r0, r1 in rises:
        # Pair with the first fall at or after this rise, circularly — the
        # same pulse-pairing rule as check_setup_rise_hold_fall.
        def fall_key(fw: tuple[int, int]) -> int:
            return (fw[0] - r0) % period

        f0, _f1 = min(falls, key=fall_key)
        f0 = r0 + ((f0 - r0) % period)
        lo, hi = r1 + max_borrow_ps, f0
        if hi <= lo:
            continue
        bad = datam.instability_in(lo, hi)
        if not bad:
            continue
        borrowed = max(h for _l, h, _v in bad) - r1
        out.append(
            Violation(
                kind=ViolationKind.BORROW,
                component=component,
                signal=signal_name,
                clock=clock_name,
                required_ps=max_borrow_ps,
                actual_ps=borrowed,
                missed_by_ps=borrowed - max_borrow_ps,
                window=(lo, hi),
                case_index=case_index,
                signal_waveform=datam,
                clock_waveform=enablem,
            )
        )
    return out


def check_min_pulse_width(
    component: str,
    signal_name: str,
    signal: Waveform,
    min_high_ps: int | None,
    min_low_ps: int | None,
    case_index: int = 0,
    glitch_warnings: bool = True,
) -> list[Violation]:
    """The MIN PULSE WIDTH checker (Figure 2-4).

    Works on the *nominal* waveform: separately-carried skew delays both
    pulse edges equally and must not narrow the pulse (the entire reason
    the skew field exists, section 2.8).  Skew already folded into
    RISE/FALL values *does* narrow the guaranteed level runs — exactly the
    pessimism the thesis describes for combined signals.

    Additionally flags level runs of CHANGE bounded by the same level on
    both sides as possible glitches (the Figure 1-5 hazard, when the runt
    pulse is entirely uncertain).
    """
    out: list[Violation] = []
    if signal.is_fully_unknown:
        return out
    for level, minimum, kind in (
        (ONE, min_high_ps, ViolationKind.MIN_PULSE_WIDTH_HIGH),
        (ZERO, min_low_ps, ViolationKind.MIN_PULSE_WIDTH_LOW),
    ):
        if minimum is None:
            continue
        for start, end in signal.level_runs(level):
            width = end - start
            if width >= signal.period:
                continue  # constant level: not a pulse
            if width < minimum:
                out.append(
                    Violation(
                        kind=kind,
                        component=component,
                        signal=signal_name,
                        required_ps=minimum,
                        actual_ps=width,
                        window=(start, end),
                        case_index=case_index,
                        signal_waveform=signal,
                    )
                )
    if glitch_warnings and (min_high_ps is not None or min_low_ps is not None):
        for start, end, vals, before, after in signal.materialized()._circular_runs(
            lambda v: v not in STABLE_VALUES and v is not UNKNOWN
        ):
            if before == after and before in (ZERO, ONE) and end > start:
                out.append(
                    Violation(
                        kind=ViolationKind.POSSIBLE_GLITCH,
                        component=component,
                        signal=signal_name,
                        window=(start, end),
                        case_index=case_index,
                        signal_waveform=signal,
                        note=(
                            "signal may pulse away from its resting level "
                            "within this window; pulse width cannot be "
                            "guaranteed"
                        ),
                    )
                )
    return out


def check_gating_stability(
    component: str,
    control_name: str,
    control: Waveform,
    clock_name: str,
    clock: Waveform,
    case_index: int = 0,
) -> list[Violation]:
    """The ``&A``/``&H`` directive check (section 2.6).

    Every control signal gated with a clock must be stable during the
    entire interval in which the clock is asserted, so that the gate output
    is either a clean clock pulse or no pulse at all — never a runt pulse
    clocking a register unexpectedly (the Figure 1-5 hazard).
    """
    out: list[Violation] = []
    if control.is_fully_unknown or clock.is_fully_unknown:
        return out
    clockm = clock.materialized()
    controlm = control.materialized()
    from .values import CHANGING_VALUES

    # The asserted window is everywhere the clock *may* be high: each
    # guaranteed-high run together with the transition windows flanking it
    # (the clock may already be high during its rise window).
    maybe_high = clockm._circular_runs(
        lambda v: v is ONE or v in CHANGING_VALUES
    )
    for lo, hi, vals, _before, _after in maybe_high:
        if ONE not in vals or hi - lo >= clock.period:
            continue
        bad = controlm.instability_in(lo, hi)
        if bad:
            out.append(
                Violation(
                    kind=ViolationKind.GATING_STABILITY,
                    component=component,
                    signal=control_name,
                    clock=clock_name,
                    window=(lo, hi),
                    case_index=case_index,
                    signal_waveform=controlm,
                    clock_waveform=clockm,
                )
            )
    return out


def check_stable_assertion(
    signal_name: str,
    computed: Waveform,
    asserted: Waveform,
    case_index: int = 0,
) -> list[Violation]:
    """Check a generated signal against its designer stable assertion.

    Section 2.5.2: "the designer's initial timing assertion is checked
    against the timing of the actual signal, and an error is given if the
    assertion is violated."  The computed signal must be stable throughout
    every STABLE range of the assertion.
    """
    out: list[Violation] = []
    if computed.is_fully_unknown:
        return out
    from .values import STABLE

    for start, end in asserted.level_runs(STABLE):
        bad = computed.instability_in(start, end)
        if bad:
            out.append(
                Violation(
                    kind=ViolationKind.ASSERTION_MISMATCH,
                    component="assertion",
                    signal=signal_name,
                    window=(bad[0][0], bad[-1][1]),
                    case_index=case_index,
                    signal_waveform=computed.materialized(),
                    note=(
                        "asserted stable "
                        f"{start / 1000:.1f}..{end / 1000:.1f} ns but may change"
                    ),
                )
            )
    return out
