"""Command-line entry point: ``scald-sta design.scald [...]``.

Static timing analysis without running the verifier: clock domains,
arrival windows, and setup/hold slack bounds straight from the dataflow
passes.  Exit status: 0 when every checker has non-negative static slack,
1 when some slack bound is negative, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scald-sta",
        description="static arrival-window and clock-domain analysis",
    )
    parser.add_argument(
        "designs", nargs="*", metavar="DESIGN",
        help="one or more .scald source files",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if not args.designs:
        print("scald-sta: no design files given", file=sys.stderr)
        return 2

    from ..hdl.expander import MacroExpander
    from ..reporting.stafmt import sta_json, sta_text
    from . import analyze

    status = 0
    for path in args.designs:
        try:
            circuit = MacroExpander.from_file(path).expand()
        except OSError as exc:
            print(f"scald-sta: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"scald-sta: {path}: {exc}", file=sys.stderr)
            return 2
        analysis = analyze(circuit)
        if args.format == "json":
            print(sta_json(analysis))
        else:
            if len(args.designs) > 1:
                print(f"== {path} ==")
            print(sta_text(analysis))
        if not analysis.ok:
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
