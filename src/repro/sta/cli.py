"""Command-line entry point: ``scald-sta design.scald [...]``.

Static timing analysis without running the verifier: clock domains,
arrival windows, and setup/hold slack bounds straight from the dataflow
passes.

Exit status (documented contract, mirrored by ``scald-tv``):

* 0 — every check has non-negative static slack, no unsynchronized
  clock-domain crossing, no constraint-file errors;
* 1 — negative static slack, an unsynchronized crossing, or an ``.sdc``
  error finding;
* 2 — usage errors (no designs, unreadable/unparsable files).

With ``--json`` (or ``--format json``) stdout carries *only* JSON — one
object for a single design, an array for several — and every
human-readable line moves to stderr, so the stream stays
machine-parseable (the same envelope as ``scald-tv --json``).
"""

from __future__ import annotations

import argparse
import sys


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scald-sta",
        description="static arrival-window and clock-domain analysis",
    )
    parser.add_argument(
        "designs", nargs="*", metavar="DESIGN",
        help="one or more .scald source files",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="shorthand for --format json; stdout stays pure JSON",
    )
    parser.add_argument(
        "--sdc", metavar="FILE", default=None,
        help="apply an SDC-subset constraint file to every design",
    )
    parser.add_argument(
        "--bit-blast", action="store_true",
        help="analyze the per-bit scalar expansion of every vector "
        "(the word-level analysis' differential oracle)",
    )
    parser.add_argument(
        "--fmax", action="store_true",
        help="solve for the fastest clock period analytically: propagate "
        "period-affine window bounds, intersect min-slack(T) = 0, and "
        "confirm the boundary with the engine (repro.sta.parametric)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.json:
        args.format = "json"
    if not args.designs:
        print("scald-sta: no design files given", file=sys.stderr)
        return 2

    from ..hdl.expander import MacroExpander
    from ..reporting.stafmt import fmax_doc, fmax_text, sta_doc, sta_json, sta_text
    from . import analyze

    json_mode = args.format == "json"
    human = sys.stderr if json_mode else sys.stdout

    status = 0
    docs = []
    for path in args.designs:
        try:
            circuit = MacroExpander.from_file(path).expand()
        except OSError as exc:
            print(f"scald-sta: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"scald-sta: {path}: {exc}", file=sys.stderr)
            return 2
        constraints = None
        if args.sdc:
            from ..constraints import load_constraints

            try:
                constraints = load_constraints(args.sdc, circuit)
            except OSError as exc:
                print(f"scald-sta: {exc}", file=sys.stderr)
                return 2
            for finding in constraints.findings:
                print(str(finding), file=human)
            if constraints.errors:
                status = 1
        if args.bit_blast:
            # Constraints resolve against the vector circuit first; the
            # lane-suffix lookup fallbacks map them onto the clones.
            from ..netlist import bit_blast

            circuit = bit_blast(circuit)
        analysis = analyze(circuit, constraints=constraints)
        fmax = None
        if args.fmax:
            from .parametric import solve_fmax

            fmax = solve_fmax(circuit, constraints=constraints)
        if json_mode:
            doc = sta_doc(analysis)
            if fmax is not None:
                doc["fmax"] = fmax_doc(fmax)
            docs.append(doc)
        else:
            if len(args.designs) > 1:
                print(f"== {path} ==")
            print(sta_text(analysis))
            if fmax is not None:
                print()
                print(fmax_text(fmax))
        if not analysis.ok or analysis.cdc_errors:
            status = 1
    if json_mode:
        import json

        payload = docs[0] if len(docs) == 1 else docs
        print(json.dumps(payload, indent=2, sort_keys=True))
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
