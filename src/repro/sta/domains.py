"""Clock-domain inference over the expanded circuit graph.

Clock trees are traced forward from the asserted periodic inputs (the
``.P`` / ``.C`` assertions of section 2.5.1) through combinational parts —
buffers, gates, multiplexers — to every storage element's clock or enable
pin.  Each register and latch is assigned the set of clock *roots* that can
reach it and the assertion phase of each root; storage reached through a
multi-input gate is flagged *gated*, and storage reached by two or more
distinct roots is flagged *convergent* (the classic glitch-prone
clock-mux/clock-OR shape).

A second, identical propagation traces *launch* domains: every storage
output launches data in its own clock domain, and the launch sets flow
through the combinational logic to the next storage element's DATA pin.  A
clock-domain crossing is a storage element whose DATA may be launched by a
root outside its own domain set.  The thesis's verifier has no metastability
model — its seven-value algebra simply reports the data changing inside the
setup/hold guard — so crossings are reported as design-rule findings here
rather than timing violations.

Everything is a monotone fixpoint over frozensets, so the pass terminates
and is insensitive to component order; feedback through combinational loops
simply converges to the union.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist.circuit import Circuit, Component, Net
from .windows import WindowAnalysis

#: Storage primitives and the pin that clocks them.
_CLOCK_PIN = {"REG": "CLOCK", "REG_RS": "CLOCK",
              "LATCH": "ENABLE", "LATCH_RS": "ENABLE"}

#: Single-input combinational primitives that can never gate a clock.
_TRANSPARENT = frozenset({"BUF", "NOT", "DELAY"})


@dataclass(frozen=True)
class ClockRoot:
    """One asserted periodic input — the identity of a clock domain."""

    net: str        #: representative net name
    phase: str      #: assertion text, e.g. ``.P2-3``
    precision: bool


@dataclass(frozen=True)
class StorageDomain:
    """The clock-domain assignment of one register or latch."""

    component: str
    prim: str
    clock_net: str
    roots: frozenset[str]          #: root net names reaching the clock pin
    gated: bool                    #: path passes through a multi-input gate
    convergent: bool               #: two or more distinct roots converge
    unclocked: bool                #: no root and statically quiet clock
    origin: tuple[str, int] | None


@dataclass(frozen=True)
class Crossing:
    """Data launched in one domain captured by storage in another."""

    component: str
    prim: str
    data_net: str
    clock_net: str
    launch_roots: frozenset[str]   #: domains that may launch the data
    capture_roots: frozenset[str]  #: domains of the capturing storage
    synchronized: bool             #: looks like the first flop of a 2-FF sync
    origin: tuple[str, int] | None

    @property
    def foreign_roots(self) -> frozenset[str]:
        return self.launch_roots - self.capture_roots


@dataclass
class DomainAnalysis:
    """Result of :func:`infer_domains`."""

    circuit: Circuit
    roots: list[ClockRoot] = field(default_factory=list)
    storage: list[StorageDomain] = field(default_factory=list)
    crossings: list[Crossing] = field(default_factory=list)
    #: clock roots reaching each net (representative -> root net names)
    net_roots: dict[Net, frozenset[str]] = field(default_factory=dict)
    #: domains that may have launched the data on each net
    net_launch: dict[Net, frozenset[str]] = field(default_factory=dict)

    def of_component(self, name: str) -> StorageDomain | None:
        for entry in self.storage:
            if entry.component == name:
                return entry
        return None


def _propagate(
    circuit: Circuit,
    seeds: dict[Net, frozenset[str]],
    comps: list[Component],
    comp_inputs: list[list[Net]],
    comp_outputs: list[list[Net]],
    loads: dict[Net, list[int]],
    gate_like: list[bool],
    gated_seed: dict[Net, bool] | None = None,
) -> tuple[dict[Net, frozenset[str]], dict[Net, bool]]:
    """Forward union-fixpoint of root sets through combinational components.

    ``gate_like[i]`` marks components with two or more connected inputs
    (anything that can gate or select); a set that flows through one has its
    *gated* flag raised on the output.
    """
    sets: dict[Net, frozenset[str]] = dict(seeds)
    gated: dict[Net, bool] = dict(gated_seed or {})
    empty: frozenset[str] = frozenset()
    work = list(range(len(comps)))
    on_work = [True] * len(comps)
    while work:
        next_work: list[int] = []
        for i in work:
            on_work[i] = False
        for i in work:
            merged: frozenset[str] = empty
            any_gated = False
            for rep in comp_inputs[i]:
                s = sets.get(rep)
                if s:
                    merged |= s
                    if gated.get(rep):
                        any_gated = True
            if not merged:
                continue
            out_gated = any_gated or gate_like[i]
            for rep in comp_outputs[i]:
                cur = sets.get(rep, empty)
                new = cur | merged
                changed = new != cur
                if out_gated and not gated.get(rep):
                    gated[rep] = True
                    changed = True
                if changed:
                    sets[rep] = new
                    for j in loads.get(rep, ()):
                        if not on_work[j]:
                            on_work[j] = True
                            next_work.append(j)
        work = next_work
    return sets, gated


def infer_domains(
    circuit: Circuit, windows: WindowAnalysis | None = None
) -> DomainAnalysis:
    """Assign every storage element a clock domain and find the crossings.

    ``windows`` (when given) sharpens the *unclocked* verdict: a storage
    element with no traced root is only reported unclocked if its clock
    net's static change windows are empty too — a clock synthesized by
    logic the tracer cannot follow still moves, and the soundness rule
    (never let a possible change become invisible) applies to diagnostics
    as much as to values.
    """
    analysis = DomainAnalysis(circuit=circuit)
    find = circuit.find

    # Roots: every net pinned by a clock assertion.
    root_of: dict[Net, ClockRoot] = {}
    for rep in circuit.representatives():
        assertion = rep.assertion
        if assertion is not None and assertion.kind.is_clock:
            root = ClockRoot(
                net=rep.name,
                phase=assertion.text,
                precision=assertion.kind.name == "PRECISION_CLOCK",
            )
            root_of[rep] = root
            analysis.roots.append(root)
    analysis.roots.sort(key=lambda r: r.net)

    # Combinational skeleton: everything except storage and checkers
    # propagates; storage cuts the trace (its output is a new launch point).
    comps: list[Component] = []
    comp_inputs: list[list[Net]] = []
    comp_outputs: list[list[Net]] = []
    gate_like: list[bool] = []
    loads: dict[Net, list[int]] = {}
    storage_comps: list[Component] = []
    all_loads: dict[Net, list[Component]] = {}
    for comp in circuit.iter_components():
        prim = comp.prim.name
        in_reps = [find(conn.net) for _p, conn in comp.input_pins()]
        for rep in in_reps:
            all_loads.setdefault(rep, []).append(comp)
        if comp.prim.is_checker:
            continue
        if prim in _CLOCK_PIN:
            storage_comps.append(comp)
            continue
        i = len(comps)
        comps.append(comp)
        comp_inputs.append(in_reps)
        comp_outputs.append([find(conn.net) for _p, conn in comp.output_pins()])
        gate_like.append(len(in_reps) >= 2 and prim not in _TRANSPARENT)
        for rep in in_reps:
            loads.setdefault(rep, []).append(i)

    seeds = {rep: frozenset({root.net}) for rep, root in root_of.items()}
    net_roots, net_gated = _propagate(
        circuit, seeds, comps, comp_inputs, comp_outputs, loads, gate_like
    )
    analysis.net_roots = net_roots

    # Storage domain assignment.
    domain_of: dict[str, StorageDomain] = {}
    for comp in storage_comps:
        clk_conn = comp.pins[_CLOCK_PIN[comp.prim.name]]
        clk_rep = find(clk_conn.net)
        roots = net_roots.get(clk_rep, frozenset())
        unclocked = not roots
        if unclocked and windows is not None:
            rise, fall = windows.of(clk_rep)
            unclocked = rise.is_empty and fall.is_empty
        entry = StorageDomain(
            component=comp.name,
            prim=comp.prim.name,
            clock_net=clk_rep.name,
            roots=roots,
            gated=bool(net_gated.get(clk_rep)),
            convergent=len(roots) >= 2,
            unclocked=unclocked,
            origin=comp.origin,
        )
        domain_of[comp.name] = entry
        analysis.storage.append(entry)

    # Launch propagation: storage outputs carry their own domain forward.
    launch_seeds: dict[Net, frozenset[str]] = {}
    for comp in storage_comps:
        entry = domain_of[comp.name]
        if not entry.roots:
            continue
        for _p, conn in comp.output_pins():
            rep = find(conn.net)
            launch_seeds[rep] = launch_seeds.get(rep, frozenset()) | entry.roots
    net_launch, _ = _propagate(
        circuit, launch_seeds, comps, comp_inputs, comp_outputs, loads,
        gate_like,
    )
    analysis.net_launch = net_launch

    # Crossings: foreign launch domains arriving at a storage DATA pin.
    for comp in storage_comps:
        entry = domain_of[comp.name]
        if not entry.roots:
            continue
        data_conn = comp.pins.get("DATA")
        if data_conn is None:
            continue
        data_rep = find(data_conn.net)
        launch = net_launch.get(data_rep, frozenset())
        if launch <= entry.roots:
            continue
        analysis.crossings.append(
            Crossing(
                component=comp.name,
                prim=comp.prim.name,
                data_net=data_rep.name,
                clock_net=entry.clock_net,
                launch_roots=launch,
                capture_roots=entry.roots,
                synchronized=_looks_synchronized(
                    circuit, comp, entry, domain_of, all_loads
                ),
                origin=comp.origin,
            )
        )
    return analysis


def _looks_synchronized(
    circuit: Circuit,
    comp: Component,
    entry: StorageDomain,
    domain_of: dict[str, StorageDomain],
    all_loads: dict[Net, list[Component]],
) -> bool:
    """First-flop-of-a-synchronizer heuristic.

    A crossing register whose output feeds nothing but the DATA pins of
    storage clocked by the same root set (plus any checkers) is the front
    of a multi-flop synchronizer chain, and the crossing is by design.
    Any combinational consumer or same-stage fanout breaks the pattern.
    """
    find = circuit.find
    fed_any = False
    for _p, conn in comp.output_pins():
        rep = find(conn.net)
        for load in all_loads.get(rep, ()):
            if load.prim.is_checker:
                continue
            follower = domain_of.get(load.name)
            if follower is None or follower.roots != entry.roots:
                return False  # combinational logic or a different domain
            data_conn = load.pins.get("DATA")
            if data_conn is None or find(data_conn.net) is not rep:
                return False  # feeds a clock/set/reset pin, not data
            fed_any = True
    return fed_any
