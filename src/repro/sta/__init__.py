"""Static arrival-window and clock-domain analysis (no event loop).

The `sta` package is the block-oriented counterpart to the event-driven
verifier: a handful of dataflow passes over the expanded circuit graph
that bound every net's behaviour without running the fixed point.

* :mod:`repro.sta.windows` — per-net may-rise/may-fall arrival intervals,
  integer picoseconds on the circular clock-period axis.
* :mod:`repro.sta.domains` — clock trees traced from the asserted periodic
  inputs; every register/latch gets a domain, crossings are reported.
* :mod:`repro.sta.slack` — setup/hold slack bounds at every checker.
* :mod:`repro.sta.crosscheck` — enclosure check against engine waveforms,
  the machine-checked soundness contract between the two analyses.
* :mod:`repro.sta.parametric` — window bounds affine in the clock period;
  solves min-slack(T) = 0 for Fmax in closed form, anchored by engine
  confirmation, with an independent engine-bisection oracle.

:func:`analyze` bundles the three static passes into one result, sharing
the window computation they all feed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import VerifyConfig
from ..netlist.circuit import Circuit
from .crosscheck import (
    CrosscheckResult,
    EnclosureFailure,
    VerdictFailure,
    check_encloses,
)
from .domains import ClockRoot, Crossing, DomainAnalysis, StorageDomain, infer_domains
from .parametric import (
    FmaxResult,
    StaticFmax,
    WitnessHop,
    bisect_fmax,
    solve_fmax,
    solve_static_fmax,
)
from .slack import SlackRecord, compute_slack
from .windows import FeedbackCut, IntervalSet, WindowAnalysis, compute_windows, waveform_windows

__all__ = [
    "ClockRoot",
    "Crossing",
    "CrosscheckResult",
    "DomainAnalysis",
    "EnclosureFailure",
    "FeedbackCut",
    "FmaxResult",
    "IntervalSet",
    "SlackRecord",
    "StaAnalysis",
    "StaticFmax",
    "StorageDomain",
    "VerdictFailure",
    "WindowAnalysis",
    "WitnessHop",
    "analyze",
    "bisect_fmax",
    "check_encloses",
    "compute_slack",
    "compute_windows",
    "infer_domains",
    "solve_fmax",
    "solve_static_fmax",
    "waveform_windows",
]


@dataclass
class StaAnalysis:
    """All three static passes over one circuit."""

    circuit: Circuit
    windows: WindowAnalysis
    domains: DomainAnalysis
    slack: list[SlackRecord] = field(default_factory=list)
    #: Resolved SDC constraints the passes honoured (None = unconstrained).
    constraints: object | None = None

    @property
    def ok(self) -> bool:
        """No negative static slack anywhere."""
        return all(r.ok for r in self.slack)

    @property
    def cdc_errors(self) -> list[Crossing]:
        """Clock-domain crossings that do not look synchronized."""
        return [c for c in self.domains.crossings if not c.synchronized]


def analyze(
    circuit: Circuit,
    config: VerifyConfig | None = None,
    constraints=None,
) -> StaAnalysis:
    """Run window propagation, domain inference and slack in one pass."""
    windows = compute_windows(circuit, config, constraints=constraints)
    return StaAnalysis(
        circuit=circuit,
        windows=windows,
        domains=infer_domains(circuit, windows),
        slack=compute_slack(circuit, windows, constraints=constraints),
        constraints=constraints,
    )
