"""Static arrival-window propagation (no event loop).

Where the engine computes exact seven-value waveforms by fixed-point
iteration, this pass computes, for every net, a *superset* of the times at
which the signal may rise and may fall — closed interval sets on the
circular time axis ``[0, period)`` in integer picoseconds.  One topological
sweep over the expanded circuit suffices because the dependency graph is cut
exactly where the engine's models are insensitive to an input's timing (a
register's output windows depend on its CLOCK and SET/RESET, never on when
DATA moves), and every remaining cycle is conservatively widened to the
full period.

Soundness contract (checked by ``repro.sta.crosscheck``): for every
converged engine waveform, every CHANGE/RISE/FALL/UNKNOWN instant lies
inside the static window of the matching direction.  Worst-case is always
safe; optimism is a bug — every transfer function here is a documented
superset of the corresponding model in ``core/models.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.config import VerifyConfig
from ..core.engine import _SUPPLY, _strongly_connected
from ..core.values import (
    CHANGE,
    FALL,
    ONE,
    RISE,
    STABLE,
    UNKNOWN,
    ZERO,
    Value,
    transition_value,
)
from ..core.waveform import Waveform
from ..netlist.circuit import Circuit, Component, Connection, Net, parse_lane_ref

#: Directive letters, mirrored from the engine (section 2.6).
_ZERO_WIRE = frozenset("WZH")
_ZERO_GATE = frozenset("ZH")
_ASSUME = frozenset("AH")

#: Values that may be (or hide) a rising / falling transition.  UNKNOWN is
#: counted on both sides: statically it only arises where the analysis has
#: already widened to the full period, and on the engine side it must be
#: covered like any other possible change.
_RISEISH = frozenset({RISE, CHANGE, UNKNOWN})
_FALLISH = frozenset({FALL, CHANGE, UNKNOWN})

#: Gate families whose output transition direction follows the input's
#: (AND/OR keep a rising input rising; the inverting flag swaps afterward).
_DIRECTIONAL = frozenset({"AND", "NAND", "OR", "NOR", "BUF", "NOT", "DELAY"})


#: Interned empty sets, one per period — the overwhelmingly common window.
_EMPTY_SETS: dict[int, "IntervalSet"] = {}


class IntervalSet:
    """An immutable set of closed intervals on the circular axis [0, period).

    Stored spans are normalized: start in ``[0, period)``, ``start <= end <
    start + period`` (an interval may wrap past the period), sorted,
    non-overlapping, and merged when touching.  A set covering the whole
    circle collapses to the canonical *full* set.  All arithmetic is integer
    picoseconds — never floats.
    """

    __slots__ = ("period", "spans", "is_full", "_hash")

    def __init__(
        self,
        period: int,
        raw_spans: Iterable[tuple[int, int]] = (),
        full: bool = False,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        spans: list[list[int]] = []
        if not full:
            for lo, hi in raw_spans:
                if hi < lo:
                    raise ValueError(f"interval end {hi} before start {lo}")
                if hi - lo >= period:
                    full = True
                    break
                shifted = lo % period
                spans.append([shifted, hi + (shifted - lo)])
        merged: list[list[int]] = []
        if not full and spans:
            spans.sort()
            for span in spans:
                if merged and span[0] <= merged[-1][1]:
                    if span[1] > merged[-1][1]:
                        merged[-1][1] = span[1]
                else:
                    merged.append(span)
            # The last span may wrap past the period and touch the front.
            while not full and len(merged) > 1 and merged[-1][1] >= period:
                if merged[0][0] <= merged[-1][1] - period:
                    if merged[0][1] + period > merged[-1][1]:
                        merged[-1][1] = merged[0][1] + period
                    merged.pop(0)
                    if merged[-1][1] - merged[-1][0] >= period:
                        full = True
                else:
                    break
            if not full and len(merged) == 1 and merged[0][1] - merged[0][0] >= period:
                full = True
        self.is_full = full
        self.spans = () if full else tuple(map(tuple, merged))
        self._hash = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls, period: int) -> "IntervalSet":
        cached = _EMPTY_SETS.get(period)
        if cached is None:
            cached = _EMPTY_SETS[period] = cls(period)
        return cached

    @classmethod
    def everywhere(cls, period: int) -> "IntervalSet":
        return cls(period, full=True)

    # -- predicates -----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.is_full and not self.spans

    def covers(self, lo: int, hi: int) -> bool:
        """True when the closed interval ``[lo, hi]`` lies inside the set."""
        if hi < lo:
            raise ValueError(f"interval end {hi} before start {lo}")
        if self.is_full:
            return True
        if hi - lo >= self.period:
            return False
        length = hi - lo
        lo = lo % self.period
        hi = lo + length
        for a, b in self.spans:
            if a <= lo and hi <= b:
                return True
            if a <= lo + self.period and hi + self.period <= b:
                return True
        return False

    def contains_set(self, other: "IntervalSet") -> bool:
        """True when every point of ``other`` lies inside this set."""
        if other.period != self.period:
            raise ValueError("interval sets have different periods")
        if other.is_full:
            return self.is_full
        return all(self.covers(lo, hi) for lo, hi in other.spans)

    def uncovered(self, other: "IntervalSet") -> list[tuple[int, int]]:
        """The spans of ``other`` not fully inside this set."""
        if other.is_full:
            return [] if self.is_full else [(0, self.period)]
        return [(lo, hi) for lo, hi in other.spans if not self.covers(lo, hi)]

    # -- algebra --------------------------------------------------------

    def union(self, *others: "IntervalSet") -> "IntervalSet":
        if self.is_full or any(o.is_full for o in others):
            return IntervalSet.everywhere(self.period)
        raw = list(self.spans)
        for o in others:
            if o.period != self.period:
                raise ValueError("interval sets have different periods")
            raw.extend(o.spans)
        if len(raw) == len(self.spans):
            return self
        if not self.spans and len(others) == 1:
            return others[0]
        return IntervalSet(self.period, raw)

    def shift(self, dmin: int, dmax: int) -> "IntervalSet":
        """Widen every span by a ``[dmin, dmax]`` delay range."""
        if dmax < dmin:
            raise ValueError(f"delay range inverted: {dmin}:{dmax}")
        if self.is_full or not self.spans or (dmin == 0 and dmax == 0):
            return self
        return IntervalSet(
            self.period, [(lo + dmin, hi + dmax) for lo, hi in self.spans]
        )

    def measure(self) -> int:
        """Total covered time in picoseconds."""
        if self.is_full:
            return self.period
        return sum(hi - lo for lo, hi in self.spans)

    # -- plumbing -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return (
            self.period == other.period
            and self.is_full == other.is_full
            and self.spans == other.spans
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.period, self.is_full, self.spans))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_full:
            return f"IntervalSet(full, period={self.period})"
        body = ", ".join(f"[{lo},{hi}]" for lo, hi in self.spans)
        return f"IntervalSet({{{body}}}, period={self.period})"


def waveform_windows(wf: Waveform) -> tuple[IntervalSet, IntervalSet]:
    """The (may-rise, may-fall) window sets of one waveform.

    Skew is folded in first (``materialized``), so the windows measure real
    time.  Segments carrying a changing value contribute their full extent;
    every boundary additionally contributes the instant of its own
    transition value — this is what makes an instantaneous stable-to-STABLE
    step (which the engine's checkers also treat as a change) visible.
    """
    m = wf.materialized()
    period = m.period
    rise: list[tuple[int, int]] = []
    fall: list[tuple[int, int]] = []
    for start, end, value in m.iter_segments():
        if value in _RISEISH:
            rise.append((start, end))
        if value in _FALLISH:
            fall.append((start, end))
    for t, before, after in m.boundaries():
        tv = transition_value(before, after)
        if tv in _RISEISH:
            rise.append((t, t))
        if tv in _FALLISH:
            fall.append((t, t))
    return IntervalSet(period, rise), IntervalSet(period, fall)


@dataclass(frozen=True)
class FeedbackCut:
    """A net conservatively widened to the full period at a feedback cycle."""

    component: str
    net: str
    prim: str
    origin: tuple[str, int] | None = None


@dataclass
class WindowAnalysis:
    """Per-net static arrival windows for one circuit."""

    circuit: Circuit
    config: VerifyConfig
    period: int
    windows: dict[Net, tuple[IntervalSet, IntervalSet]]
    feedback: list[FeedbackCut] = field(default_factory=list)
    #: Resolved SDC constraints the sweep honoured (input-delay sources).
    #: False paths never narrow stored windows — they are pruned at the
    #: checker boundary (``slack.py``) so this enclosure stays intact.
    constraints: object | None = None

    def of(self, net: Net) -> tuple[IntervalSet, IntervalSet]:
        return self.windows[self.circuit.find(net)]

    def _of_conn(self, conn: Connection) -> tuple[IntervalSet, IntervalSet]:
        rep = self._rep_of.get(id(conn))
        if rep is None:
            rep = self.circuit.find(conn.net)
        return self.windows[rep]

    def by_name(self, name: str) -> tuple[IntervalSet, IntervalSet]:
        net = self.circuit.nets.get(name)
        if net is None:
            raise KeyError(f"no signal named {name!r}")
        return self.of(net)

    def prepared(
        self, conn: Connection, zero_wire: bool = False
    ) -> tuple[IntervalSet, IntervalSet]:
        """Windows as seen at a component input (invert + wire delay).

        Memoized per connection: the sweep only asks for a net's windows
        after its driver has been processed, so the entry never goes stale.
        """
        cache = self._prepared_zero if zero_wire else self._prepared_cache
        key = id(conn)
        entry = cache.get(key)
        if entry is not None:
            return entry
        rep = self._rep_of.get(key)
        if rep is None:
            rep = self.circuit.find(conn.net)
        if zero_wire or conn.wire_delay_ps is not None:
            rise, fall = self.windows[rep]
            if not zero_wire and not (rise.is_empty and fall.is_empty):
                dmin, dmax = conn.wire_delay_ps
                if dmin or dmax:
                    rise = rise.shift(dmin, dmax)
                    fall = fall.shift(dmin, dmax)
        else:
            # Without a per-connection override the wire delay depends only
            # on the net, so the shifted windows are shared per net.
            pair = self._rep_prepared.get(id(rep))
            if pair is None:
                rise, fall = self.windows[rep]
                if not (rise.is_empty and fall.is_empty):
                    dmin, dmax = self._wire_delay(conn, rep)
                    if dmin or dmax:
                        rise = rise.shift(dmin, dmax)
                        fall = fall.shift(dmin, dmax)
                pair = (rise, fall)
                self._rep_prepared[id(rep)] = pair
            rise, fall = pair
        if conn.invert:
            rise, fall = fall, rise
        cache[key] = (rise, fall)
        return rise, fall

    # Populated by compute_windows; declared here for the helpers above.
    _loads: dict[Net, int] = field(default_factory=dict, repr=False)
    _prepared_cache: dict = field(default_factory=dict, repr=False)
    _prepared_zero: dict = field(default_factory=dict, repr=False)
    _rep_prepared: dict = field(default_factory=dict, repr=False)
    _rep_of: dict = field(default_factory=dict, repr=False)
    _default_wire: tuple[int, int] | None = field(default=None, repr=False)
    _per_load: int | None = field(default=None, repr=False)

    def _wire_delay(self, conn: Connection, rep: Net) -> tuple[int, int]:
        # Mirrors Engine._wire_delay exactly; the config-derived defaults
        # are snapshotted once (they go through Fraction conversions).
        if conn.wire_delay_ps is not None:
            return conn.wire_delay_ps
        if rep.wire_delay_ps is not None:
            return rep.wire_delay_ps
        if conn.net.wire_delay_ps is not None:
            return conn.net.wire_delay_ps
        lo, hi = self._default_wire
        if self._per_load:
            extra_loads = self._loads.get(rep, 1) - 1
            if extra_loads > 0:
                hi += self._per_load * extra_loads
        return lo, hi


# ---------------------------------------------------------------------------
# sources (mirror of Engine._initial_value)
# ---------------------------------------------------------------------------


def _is_fixed_source(rep: Net, driven: bool) -> bool:
    """True when the net's converged value never depends on a driver."""
    if rep.base_name.upper() in _SUPPLY:
        return True
    assertion = rep.assertion
    if assertion is not None and assertion.kind.is_clock:
        return True  # a clock assertion pins the net even against a driver
    return not driven


def _source_windows(
    circuit: Circuit,
    config: VerifyConfig,
    rep: Net,
    period: int,
    constraints=None,
) -> tuple[IntervalSet, IntervalSet]:
    """Windows of a fixed-source net (supply, assertion, assumed stable)."""
    if rep.base_name.upper() in _SUPPLY:
        return IntervalSet.empty(period), IntervalSet.empty(period)
    assertion = rep.assertion
    if assertion is not None and assertion.kind.is_clock:
        skew = config.clock_skew_ns(assertion.kind.name == "PRECISION_CLOCK")
        return waveform_windows(assertion.waveform(circuit.timebase, skew))
    if assertion is not None:
        return waveform_windows(assertion.waveform(circuit.timebase))
    if constraints is not None:
        spec = constraints.input_delay_for(rep.name)
        if spec is not None:
            # set_input_delay: the port changes inside the declared spans.
            # The engine paints CHANGE over the *same* spans
            # (Engine._initial_value uses input_delay_spans too), so the
            # windows enclose it by construction.
            from ..constraints import input_delay_spans

            spans = input_delay_spans(spec, circuit, config)
            if spans:
                win = IntervalSet(period, spans)
                return win, win
    # Assumed stable (section 2.5); the case mapping replaces STABLE with a
    # constant, which has no transitions either.
    return IntervalSet.empty(period), IntervalSet.empty(period)


def _case_values(circuit: Circuit) -> dict[Net, set[Value]]:
    """The constants each net can be case-mapped to, across all cases."""
    out: dict[Net, set[Value]] = {}
    for case in circuit.cases:
        for name, bit in case.items():
            net = circuit.nets.get(name)
            if net is None:
                # Per-lane case key ("NAME [i]"): fold the lane's constant
                # into the whole net's possible values — conservative for
                # the only consumer (_may_hold_value).
                ref = parse_lane_ref(circuit, name)
                if ref is None:
                    continue
                net = ref[0]
            out.setdefault(circuit.find(net), set()).add(ONE if bit else ZERO)
    return out


def _may_hold_value(
    rep: Net,
    target: Value,
    driven: bool,
    case_values: dict[Net, set[Value]],
    circuit: Circuit,
) -> bool:
    """Could the net's converged waveform ever equal ``target`` (0 or 1)?

    Used only to decide whether an asynchronous SET/RESET pair can be
    simultaneously asserted (which the model turns into UNKNOWN).  Driven
    nets answer True — worst-case is always safe.
    """
    name = rep.base_name.upper()
    if name in _SUPPLY:
        return _SUPPLY[name] is target
    assertion = rep.assertion
    if assertion is not None and assertion.kind.is_clock:
        return True  # a clock takes both levels
    if driven:
        return True
    # Undriven: assertion waveform (STABLE/CHANGE) or assumed stable, with
    # STABLE case-mapped to a constant for case-analysis signals.
    return target in case_values.get(rep, set())


# ---------------------------------------------------------------------------
# directive-letter certainty (mirror of Engine._directive_letter)
# ---------------------------------------------------------------------------


def _may_carry_eval_str(
    circuit: Circuit,
    comps: Sequence[Component],
    gate_prims: frozenset[str],
) -> dict[Net, bool]:
    """Which nets may carry a riding evaluation string (section 2.8).

    Only gate outputs propagate eval strings; a connection-level directive
    of two or more letters starts one, and a directive-free input forwards
    whatever its net carries.  Monotone boolean fixpoint, conservative
    (True means *may* carry).
    """
    carry: dict[Net, bool] = {}
    changed = True
    while changed:
        changed = False
        for comp in comps:
            if comp.prim.name not in gate_prims:
                continue
            out = False
            for _pin, conn in comp.input_pins():
                if len(conn.directives) >= 2:
                    out = True
                elif not conn.directives and carry.get(circuit.find(conn.net)):
                    out = True
            if out:
                for _pin, conn in comp.output_pins():
                    rep = circuit.find(conn.net)
                    if not carry.get(rep):
                        carry[rep] = True
                        changed = True
    return carry


def _static_letter(
    circuit: Circuit, conn: Connection, carry: dict[Net, bool]
) -> tuple[str, bool]:
    """The directive letter at this input, and whether it is certain."""
    if conn.directives:
        return conn.directives[0], True
    if carry.get(circuit.find(conn.net)):
        return "", False  # some letter may ride in on the waveform
    return "", True


# ---------------------------------------------------------------------------
# the topological sweep
# ---------------------------------------------------------------------------


def _used_input_conns(
    comp: Component,
    inputs: Sequence[Connection],
    letters: Sequence[tuple[str, bool]] | None,
) -> Sequence[Connection]:
    """The inputs whose *timing* the component's output windows depend on.

    Registers capture DATA only as a held constant between clock edges
    (``_captured_value`` never yields a changing value), so DATA is not a
    timing dependency — this is the cut that makes pipelined feedback
    (counters, shift registers) acyclic without any widening.  A gate whose
    directives certainly select an assume input depends only on that input;
    everything else depends on all inputs.
    """
    prim = comp.prim.name
    if prim in ("REG", "REG_RS"):
        conns = [comp.pins["CLOCK"]]
        for pin in ("SET", "RESET"):
            conn = comp.pins.get(pin)
            if conn is not None:
                conns.append(conn)
        return conns
    if letters is not None and all(certain for _l, certain in letters):
        for (letter, _c), conn in zip(letters, inputs):
            if letter in _ASSUME:
                return [conn]  # other inputs are assumed enabling
    return inputs


def compute_windows(
    circuit: Circuit,
    config: VerifyConfig | None = None,
    constraints=None,
    *,
    source_windows=None,
) -> WindowAnalysis:
    """One-pass static arrival-window analysis of an expanded circuit.

    ``source_windows`` replaces the fixed-source window builder
    (:func:`_source_windows`, same signature).  The parametric Fmax pass
    (``repro.sta.parametric``) injects a builder that yields windows whose
    bounds are affine in the clock period; everything downstream of the
    sources — transfers, feedback widening, slack — is plain interval
    arithmetic and works unchanged over either bound type.
    """
    config = config or VerifyConfig()
    if source_windows is None:
        source_windows = _source_windows
    period = circuit.period_ps
    gate_prims = _gate_prims()

    # One pass over every component builds all the indexed structure the
    # sweep needs: alias representatives per connection, drivers/loads,
    # per-component input lists and output representatives.
    drivers: dict[Net, tuple[Component, str]] = {}
    driver_idx: dict[Net, int] = {}
    loads: dict[Net, int] = {}
    rep_of: dict[int, Net] = {}
    find = circuit.find
    comps: list[Component] = []
    comp_inputs: list[list[Connection]] = []
    comp_out_reps: list[list[Net]] = []
    comp_has_dir: list[bool] = []
    comp_kind: list[int] = []  # 0 gate, 1 register, 2 latch, 3 mux, -1 other
    has_multi_letter = False
    loads_get = loads.get
    for comp in circuit.iter_components():
        prim = comp.prim
        pins = comp.pins
        checker = prim.is_checker
        if not checker:
            j = len(comps)
            comps.append(comp)
            name = prim.name
            if name in gate_prims:
                comp_kind.append(0)
            elif name in ("REG", "REG_RS"):
                comp_kind.append(1)
            elif name in ("LATCH", "LATCH_RS"):
                comp_kind.append(2)
            elif name.startswith("MUX"):
                comp_kind.append(3)
            else:
                comp_kind.append(-1)
        out_reps = []
        for pin in prim.outputs:
            conn = pins.get(pin)
            if conn is None:
                continue
            rep = find(conn.net)
            rep_of[id(conn)] = rep
            drivers[rep] = (comp, pin)
            if not checker:
                driver_idx[rep] = j
                out_reps.append(rep)
        inputs = []
        has_dir = False
        # Fixed input pins first, then the variadic family in order —
        # the same order input_pins() yields.
        pin_names = [p for p in prim.inputs if p in pins]
        if prim.variadic_input:
            prefix = prim.variadic_input
            k = 1
            while f"{prefix}{k}" in pins:
                pin_names.append(f"{prefix}{k}")
                k += 1
        for pin in pin_names:
            conn = pins[pin]
            rep = find(conn.net)
            rep_of[id(conn)] = rep
            loads[rep] = loads_get(rep, 0) + 1
            if conn.directives:
                has_dir = True
                if len(conn.directives) >= 2:
                    has_multi_letter = True
            inputs.append(conn)
        if not checker:
            comp_inputs.append(inputs)
            comp_out_reps.append(out_reps)
            comp_has_dir.append(has_dir)
    n = len(comps)

    analysis = WindowAnalysis(
        circuit=circuit,
        config=config,
        period=period,
        windows={},
        constraints=constraints,
        _loads=loads,
        _rep_of=rep_of,
    )
    # Snapshot the config-derived defaults once; they go through Fraction
    # conversions that are far too slow for a per-connection call.
    analysis._default_wire = config.default_wire_delay_ps
    analysis._per_load = config.wire_delay_per_load_ps

    # Uncertainty only originates at multi-letter directive strings; when
    # none exist, nothing can carry a letter on its waveform.
    carry = (
        _may_carry_eval_str(circuit, comps, gate_prims)
        if has_multi_letter
        else {}
    )
    case_values = _case_values(circuit)

    reps = circuit.representatives()
    fixed: set[Net] = set()
    for rep in reps:
        driven = rep in drivers
        if _is_fixed_source(rep, driven):
            fixed.add(rep)
            analysis.windows[rep] = source_windows(
                circuit, config, rep, period, constraints
            )

    # Directive letters per gate input (None when certainly absent).
    comp_letters: list[list[tuple[str, bool]] | None] = [None] * n
    for j in range(n):
        if not (comp_has_dir[j] or carry):
            continue
        if comps[j].prim.name not in gate_prims:
            continue
        letters = []
        for conn in comp_inputs[j]:
            if conn.directives:
                letters.append((conn.directives[0], True))
            elif carry.get(rep_of[id(conn)]):
                letters.append(("", False))  # a letter may ride in
            else:
                letters.append(("", True))
        comp_letters[j] = letters

    # Dependency graph between components, cut where timing cannot flow.
    succ: list[list[int]] = [[] for _ in range(n)]
    for j, comp in enumerate(comps):
        letters = comp_letters[j]
        if letters is None and comp_kind[j] != 1:
            conns = comp_inputs[j]
        else:
            conns = _used_input_conns(comp, comp_inputs[j], letters)
        for conn in conns:
            rep = rep_of[id(conn)]
            if rep in fixed:
                continue
            i = driver_idx.get(rep)
            if i is not None and j not in succ[i]:
                succ[i].append(j)

    # Kahn's toposort doubles as the cycle detector: on an acyclic graph
    # (the overwhelmingly common case once registers cut their DATA edges)
    # it orders every node and Tarjan never runs.  Any leftover nodes sit
    # in or downstream of a cycle; only then are SCCs computed to find the
    # exact members to widen.
    indegree = [0] * n
    for row in succ:
        for j in row:
            indegree[j] += 1
    ready = deque(i for i in range(n) if indegree[i] == 0)
    order: list[int] = []
    while ready:
        i = ready.popleft()
        order.append(i)
        for j in succ[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                ready.append(j)

    widened: set[int] = set()
    if len(order) < n:
        scc = _strongly_connected(succ)
        scc_sizes: dict[int, int] = {}
        for cid in scc:
            scc_sizes[cid] = scc_sizes.get(cid, 0) + 1
        for i in range(n):
            if scc_sizes[scc[i]] > 1 or i in succ[i]:
                widened.add(i)
        for i in sorted(widened):
            comp = comps[i]
            for rep in comp_out_reps[i]:
                if rep in fixed:
                    continue
                full = IntervalSet.everywhere(period)
                analysis.windows[rep] = (full, full)
                analysis.feedback.append(
                    FeedbackCut(
                        component=comp.name,
                        net=rep.name,
                        prim=comp.prim.name,
                        origin=comp.origin,
                    )
                )
        # Re-run Kahn over the condensation (intra-SCC edges dropped) so
        # nodes beyond the widened cycles still get swept in order.
        indegree = [0] * n
        for i in range(n):
            for j in succ[i]:
                if scc[i] != scc[j]:
                    indegree[j] += 1
        ready = deque(i for i in range(n) if indegree[i] == 0)
        order = []
        while ready:
            i = ready.popleft()
            order.append(i)
            for j in succ[i]:
                if scc[i] != scc[j]:
                    indegree[j] -= 1
                    if indegree[j] == 0:
                        ready.append(j)

    # The sweep.  Identical macro instances fed by identical windows are
    # everywhere in a synchronous design, so transfers are memoized on
    # (primitive, delays, input windows) — the static counterpart of the
    # engine's evaluation memo.
    memo: dict = {}
    empty = IntervalSet.empty(period)
    windows = analysis.windows
    for i in order:
        if i in widened:
            continue
        comp = comps[i]
        kind = comp_kind[i]
        if kind < 0:
            continue
        out = _transfer(
            comp, kind, comp_inputs[i], comp_letters[i], analysis, circuit,
            case_values, drivers, period, memo,
        )
        if out is None:
            continue
        for rep in comp_out_reps[i]:
            if rep in fixed:
                continue
            prev = windows.get(rep)
            if prev is None:
                windows[rep] = out
            else:
                # Multiple drivers (a lint error in itself): keep the union.
                windows[rep] = (
                    prev[0].union(out[0]),
                    prev[1].union(out[1]),
                )

    # Stay total even for nets no path above reached.
    pair = (empty, empty)
    for rep in reps:
        if rep not in windows:
            windows[rep] = pair
    return analysis


def _gate_prims() -> frozenset[str]:
    from ..core.models import GATE_FUNCTIONS

    return frozenset(GATE_FUNCTIONS)


# ---------------------------------------------------------------------------
# transfer functions (supersets of core/models.py)
# ---------------------------------------------------------------------------


def _both(sets: tuple[IntervalSet, IntervalSet]) -> IntervalSet:
    return sets[0].union(sets[1])


def _shifted_union(
    period: int, parts: Sequence[IntervalSet], dmin: int, dmax: int
) -> IntervalSet:
    """Union of ``parts`` widened by ``[dmin, dmax]``, built in one pass.

    Equivalent to chaining ``union`` and ``shift`` but normalizes once,
    which keeps the sweep linear in the number of component inputs.
    """
    raw: list[tuple[int, int]] = []
    for part in parts:
        if part.is_full:
            return IntervalSet.everywhere(period)
        raw.extend((lo + dmin, hi + dmax) for lo, hi in part.spans)
    if not raw:
        return IntervalSet.empty(period)
    return IntervalSet(period, raw)


def _transfer(
    comp: Component,
    kind: int,
    inputs: Sequence[Connection],
    letters: Sequence[tuple[str, bool]] | None,
    analysis: WindowAnalysis,
    circuit: Circuit,
    case_values: dict[Net, set[Value]],
    drivers: dict[Net, tuple[Component, str]],
    period: int,
    memo: dict,
) -> tuple[IntervalSet, IntervalSet] | None:
    """Static output windows of one component.

    Every result is padded by one extra picosecond of maximum delay: the
    models keep instantaneous transitions observable with explicit 1 ps
    change markers (``pointwise`` boundary markers, ``_paint_clocked_output``,
    the latch's opening paints), and the pad covers their width.
    """
    if kind == 0:
        return _transfer_gate(comp, inputs, letters, analysis, period, memo)
    if kind == 1:
        return _transfer_register(
            comp, analysis, circuit, case_values, drivers, period
        )
    if kind == 2:
        return _transfer_latch(
            comp, analysis, circuit, case_values, drivers, period
        )
    return _transfer_mux(comp, analysis, period, memo)


def _transfer_gate(
    comp: Component,
    inputs: Sequence[Connection],
    letters: Sequence[tuple[str, bool]] | None,
    analysis: WindowAnalysis,
    period: int,
    memo: dict,
) -> tuple[IntervalSet, IntervalSet]:
    """Superset of ``Engine._evaluate_gate`` + ``eval_gate``.

    Direction rule, from the value tables: AND/OR pass a changing input's
    direction through (``S OR R = R``); mixing distinct directions yields
    CHANGE, which lands in both output sets — covered because each input
    contributes to the set of its own direction and CHANGE instants lie in
    the intersection of the contributing inputs' windows.  XOR/XNOR/CHG can
    redirect an edge (``1 XOR RISE = FALL``), so every input feeds both
    output sets.  The inverting flag swaps the sets afterward, mirroring
    ``mapped(value_not)``.
    """
    prim = comp.prim
    if letters is None:
        gate_zeroed = False
        maybe_zeroed = False
        prepared = [analysis.prepared(conn) for conn in inputs]
        # Empty windows are interned, so "every input is statically
        # quiet" reduces to identity checks — and a quiet gate is quiet.
        empty = IntervalSet.empty(period)
        for in_r, in_f in prepared:
            if in_r is not empty or in_f is not empty:
                break
        else:
            return empty, empty
    else:
        all_certain = all(certain for _l, certain in letters)
        gate_zeroed = any(
            certain and letter in _ZERO_GATE for letter, certain in letters
        )
        maybe_zeroed = gate_zeroed or not all_certain
        assume_idx = None
        if all_certain:
            for k, (letter, _c) in enumerate(letters):
                if letter in _ASSUME:
                    assume_idx = k  # other inputs are assumed enabling
                    break
        chosen = range(len(inputs)) if assume_idx is None else (assume_idx,)
        prepared = []
        for k in chosen:
            letter, certain = letters[k]
            zero_wire = certain and letter in _ZERO_WIRE
            in_r, in_f = analysis.prepared(inputs[k], zero_wire=zero_wire)
            if not certain:
                # The letter may also zero this wire; widen the early bound.
                zr, zf = analysis.prepared(inputs[k], zero_wire=True)
                in_r = in_r.union(zr)
                in_f = in_f.union(zf)
            prepared.append((in_r, in_f))

    delay = (0, 0) if gate_zeroed else comp.delay_ps()
    rise_p = comp.params.get("rise_delay")
    fall_p = comp.params.get("fall_delay")
    if (rise_p or fall_p) and not gate_zeroed:
        # Asymmetric edges: crossed rise/fall windows overlay CHANGE in
        # either direction (core/risefall.py), so both directions take the
        # combined range rather than per-edge routing.
        rise_p = rise_p or delay
        fall_p = fall_p or delay
        dmin = min(rise_p[0], fall_p[0])
        dmax = max(rise_p[1], fall_p[1])
    else:
        dmin, dmax = delay
    if maybe_zeroed:
        dmin = 0

    key = (prim.name, prim.inverting, dmin, dmax, tuple(prepared))
    hit = memo.get(key)
    if hit is not None:
        return hit
    if prim.name in _DIRECTIONAL:
        rise_parts = [pair[0] for pair in prepared]
        fall_parts = [pair[1] for pair in prepared]
        if prim.inverting:
            rise_parts, fall_parts = fall_parts, rise_parts
        out = (
            _shifted_union(period, rise_parts, dmin, dmax + 1),
            _shifted_union(period, fall_parts, dmin, dmax + 1),
        )
    else:  # XOR / XNOR / CHG: an edge may come out either way
        parts = [s for pair in prepared for s in pair]
        both = _shifted_union(period, parts, dmin, dmax + 1)
        out = (both, both)
    memo[key] = out
    return out


def _sr_windows(
    comp: Component,
    analysis: WindowAnalysis,
    circuit: Circuit,
    case_values: dict[Net, set[Value]],
    drivers: dict[Net, tuple[Component, str]],
    delay: tuple[int, int],
    period: int,
) -> tuple[IntervalSet, IntervalSet | None]:
    """The asynchronous SET/RESET contribution to a storage element.

    Returns ``(windows, full_or_none)``: the change windows contributed by
    moving controls, and a full set when both controls may simultaneously
    sit at ONE — ``_sr_overlay_value`` then yields UNKNOWN over stretches no
    change window describes.
    """
    set_conn = comp.pins.get("SET")
    reset_conn = comp.pins.get("RESET")
    parts: list[IntervalSet] = []
    for conn in (set_conn, reset_conn):
        if conn is not None:
            parts.extend(analysis.prepared(conn))
    contribution = _shifted_union(period, parts, delay[0], delay[1] + 1)

    def may_be_one(conn: Connection | None) -> bool:
        if conn is None:
            return False
        rep = circuit.find(conn.net)
        target = ZERO if conn.invert else ONE
        return _may_hold_value(rep, target, rep in drivers, case_values, circuit)

    if may_be_one(set_conn) and may_be_one(reset_conn):
        return contribution, IntervalSet.everywhere(period)
    return contribution, None


def _transfer_register(
    comp: Component,
    analysis: WindowAnalysis,
    circuit: Circuit,
    case_values: dict[Net, set[Value]],
    drivers: dict[Net, tuple[Component, str]],
    period: int,
) -> tuple[IntervalSet, IntervalSet]:
    """Superset of ``eval_register``.

    The output changes only inside the delayed clock rising windows
    (``_paint_clocked_output``); between edges it holds a captured constant
    or STABLE, never a changing value — which is why DATA contributes
    nothing here and the dependency cut in ``_used_input_conns`` is sound.
    """
    delay = comp.delay_ps()
    clk_r, _clk_f = analysis.prepared(comp.pins["CLOCK"])
    sr, full = _sr_windows(
        comp, analysis, circuit, case_values, drivers, delay, period
    )
    if full is not None:
        return full, full
    out = clk_r.shift(delay[0], delay[1] + 1).union(sr)
    return out, out


def _transfer_latch(
    comp: Component,
    analysis: WindowAnalysis,
    circuit: Circuit,
    case_values: dict[Net, set[Value]],
    drivers: dict[Net, tuple[Component, str]],
    period: int,
) -> tuple[IntervalSet, IntervalSet]:
    """Superset of ``eval_latch``.

    A transparent latch can move whenever its (delayed) enable moves — the
    opening/closing cases of ``_latch_value``, including the 1 ps opening
    paints — or whenever the delayed data moves (transparency, and the
    ``en is STABLE`` case still answers CHANGE for changing data).  Held
    values are captured constants, whose boundaries coincide with enable
    fall ends.  Both directions are kept: the latch output direction is the
    data's value step, not the enable's edge direction.
    """
    delay = comp.delay_ps()
    sr, full = _sr_windows(
        comp, analysis, circuit, case_values, drivers, delay, period
    )
    if full is not None:
        return full, full
    parts = [
        *analysis.prepared(comp.pins["ENABLE"]),
        *analysis.prepared(comp.pins["DATA"]),
    ]
    out = _shifted_union(period, parts, delay[0], delay[1] + 1).union(sr)
    return out, out


def _transfer_mux(
    comp: Component, analysis: WindowAnalysis, period: int, memo: dict
) -> tuple[IntervalSet, IntervalSet]:
    """Superset of ``eval_mux``.

    Data inputs pass through with their directions (constant selects index
    one input; stable selects fold with ``value_either``, which preserves a
    single mover's direction).  A moving select can switch the output
    between inputs in either direction, so select windows land in both sets
    after the extra select delay.
    """
    n = int(comp.prim.name[3:])
    n_sel = max(1, n.bit_length() - 1)
    delay = comp.delay_ps()
    select_delay = comp.delay_ps("select_delay")

    sels = tuple(analysis.prepared(comp.pins[f"S{k}"]) for k in range(n_sel))
    datas = tuple(analysis.prepared(comp.pins[f"I{k}"]) for k in range(n))
    key = ("MUX", n, delay, select_delay, sels, datas)
    hit = memo.get(key)
    if hit is not None:
        return hit

    sel_parts = [s for pair in sels for s in pair]
    sel_both = _shifted_union(period, sel_parts, *select_delay)
    rise_parts = [sel_both]
    fall_parts = [sel_both]
    for in_r, in_f in datas:
        rise_parts.append(in_r)
        fall_parts.append(in_f)
    out = (
        _shifted_union(period, rise_parts, delay[0], delay[1] + 1),
        _shifted_union(period, fall_parts, delay[0], delay[1] + 1),
    )
    memo[key] = out
    return out
