"""Static setup/hold slack bounds at every checker component.

The engine's checkers (``core/checks.py``) test converged waveforms against
guard windows built around each clock edge.  The static analogue works on
arrival-window sets instead: a clock rise *span* ``[r0, r1]`` is the
interval inside which the rise may occur, so the guarded region for a
``SETUP HOLD CHK`` is ``[r0 - setup, r1 + hold]`` — any possible data
change inside it is a potential violation no matter where in the span the
edge actually lands.  Slack is then a pure interval computation:

* negative slack = the deepest overlap of a data-change window with any
  guard (how far into the forbidden region the data can reach);
* positive slack = the smallest circular gap between the data windows and
  the nearest guard (how much the delays can grow before trouble).

Because arrival windows are over-approximations, static slack is a *lower
bound* on the engine's margin: static-positive implies engine-clean, while
static-negative only means the conservative windows overlap — the engine
run decides whether a real path does.  That one-sided relationship is the
same soundness contract the crosscheck enforces on values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist.circuit import Circuit, Component
from .windows import WindowAnalysis

_CHECKERS = frozenset({"SETUP_HOLD_CHK", "SETUP_RISE_HOLD_FALL_CHK"})


@dataclass(frozen=True)
class SlackRecord:
    """Static slack at one checker component (all times integer ps)."""

    component: str
    prim: str
    signal: str                 #: guarded data net
    clock: str                  #: clock net (with ``-`` prefix if inverted)
    setup_ps: int
    hold_ps: int
    slack_ps: int | None        #: None when indeterminate (see flags)
    no_edge: bool               #: clock has no static rise window
    overflow: bool              #: clock window widened to the full period
    origin: tuple[str, int] | None

    @property
    def ok(self) -> bool:
        return self.slack_ps is None or self.slack_ps >= 0


def compute_slack(
    circuit: Circuit, analysis: WindowAnalysis
) -> list[SlackRecord]:
    """Bound the setup/hold slack of every checker from the static windows."""
    records: list[SlackRecord] = []
    for comp in circuit.iter_components():
        if comp.prim.name not in _CHECKERS:
            continue
        records.append(_checker_slack(comp, analysis))
    records.sort(key=lambda r: (r.slack_ps is None, r.slack_ps or 0, r.component))
    return records


def _checker_slack(comp: Component, analysis: WindowAnalysis) -> SlackRecord:
    period = analysis.period
    i_conn, ck_conn = comp.pins["I"], comp.pins["CK"]
    setup = int(comp.params["setup"])
    hold = int(comp.params["hold"])

    clk_rise, clk_fall = analysis.prepared(ck_conn)
    if ck_conn.invert:
        clk_rise, clk_fall = clk_fall, clk_rise
    data_rise, data_fall = analysis.prepared(i_conn)
    changes = data_rise.union(data_fall)

    def record(slack: int | None, *, no_edge: bool = False,
               overflow: bool = False) -> SlackRecord:
        return SlackRecord(
            component=comp.name,
            prim=comp.prim.name,
            signal=i_conn.net.name,
            clock=("-" if ck_conn.invert else "") + ck_conn.net.name,
            setup_ps=setup,
            hold_ps=hold,
            slack_ps=slack,
            no_edge=no_edge,
            overflow=overflow,
            origin=comp.origin,
        )

    if clk_rise.is_empty:
        # Mirrors the engine's NO_CLOCK_EDGE violation: nothing to guard.
        return record(None, no_edge=True)
    if clk_rise.is_full or changes.is_full:
        # A feedback cut (or unconstrained input) widened something to the
        # whole period; any slack number would be meaningless pessimism.
        return record(None, overflow=True)

    if comp.prim.name == "SETUP_HOLD_CHK":
        guards = [(r0 - setup, r1 + hold) for r0, r1 in clk_rise.spans]
    else:
        # SETUP RISE HOLD FALL: the guard runs from setup-before-rise to
        # hold-after the *following* fall (checks.py pairs them circularly).
        guards = []
        falls = clk_fall.spans
        for r0, r1 in clk_rise.spans:
            if falls:
                f0, f1 = min(
                    falls, key=lambda s, _r0=r0: (s[0] - _r0) % period
                )
                f1 = r0 + ((f1 - r0) % period)
            else:
                f1 = r1  # no fall window: degrade to the plain guard
            guards.append((r0 - setup, max(r1, f1) + hold))

    if changes.is_empty:
        # Statically stable data: slack is the full distance to the guard,
        # bounded by what the period can express.
        return record(max(0, period - max(g1 - g0 for g0, g1 in guards)))

    slack = _interval_slack(guards, changes.spans, period)
    return record(slack)


def _interval_slack(
    guards: list[tuple[int, int]],
    changes: tuple[tuple[int, int], ...],
    period: int,
) -> int:
    """Signed circular distance between change windows and guard windows.

    Positive: the smallest gap from any change span to any guard.
    Negative: minus the deepest penetration of a change span into a guard.
    """
    worst_overlap: int | None = None
    best_gap: int | None = None
    for g0, g1 in guards:
        for c0, c1 in changes:
            # Compare on an unrolled axis: the change span shifted by one
            # period either way covers every circular alignment, since both
            # spans are shorter than the period here.
            for d in (-period, 0, period):
                lo = max(g0, c0 + d)
                hi = min(g1, c1 + d)
                if hi >= lo:  # hi == lo is a boundary touch: zero slack
                    if worst_overlap is None or hi - lo > worst_overlap:
                        worst_overlap = hi - lo
                else:
                    gap = lo - hi
                    best_gap = gap if best_gap is None else min(best_gap, gap)
    if worst_overlap is not None:
        return -worst_overlap
    return best_gap if best_gap is not None else 0
