"""Static setup/hold slack bounds at every checker component.

The engine's checkers (``core/checks.py``) test converged waveforms against
guard windows built around each clock edge.  The static analogue works on
arrival-window sets instead: a clock rise *span* ``[r0, r1]`` is the
interval inside which the rise may occur, so the guarded region for a
``SETUP HOLD CHK`` is ``[r0 - setup, r1 + hold]`` — any possible data
change inside it is a potential violation no matter where in the span the
edge actually lands.  Slack is then a pure interval computation:

* negative slack = the deepest overlap of a data-change window with any
  guard (how far into the forbidden region the data can reach);
* positive slack = the smallest circular gap between the data windows and
  the nearest guard (how much the delays can grow before trouble).

Because arrival windows are over-approximations, static slack is a *lower
bound* on the engine's margin: static-positive implies engine-clean, while
static-negative only means the conservative windows overlap — the engine
run decides whether a real path does.  That one-sided relationship is the
same soundness contract the crosscheck enforces on values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist.circuit import Circuit, Component
from .windows import WindowAnalysis

_CHECKERS = frozenset({"SETUP_HOLD_CHK", "SETUP_RISE_HOLD_FALL_CHK"})


@dataclass(frozen=True)
class SlackRecord:
    """Static slack at one checker component (all times integer ps).

    ``kind`` distinguishes the check families the constraint front-end
    added: ``"setup-hold"`` (the thesis checkers), ``"recovery"`` /
    ``"removal"`` (asynchronous SET/RESET margins), ``"borrow"`` (latch
    time borrowing — always reported, pass/fail only under a
    ``set_max_time_borrow`` constraint) and ``"output"`` (virtual
    ``set_output_delay`` boundary checks).  The engine's matching checks
    produce violations keyed by the same (component, kind, signal), which
    is what the per-check crosscheck verdict compares.
    """

    component: str
    prim: str
    signal: str                 #: guarded data net
    clock: str                  #: clock net (with ``-`` prefix if inverted)
    setup_ps: int
    hold_ps: int
    slack_ps: int | None        #: None when indeterminate (see flags)
    no_edge: bool               #: clock has no static rise window
    overflow: bool              #: clock window widened to the full period
    origin: tuple[str, int] | None
    kind: str = "setup-hold"
    waived: bool = False        #: false path pruned this check
    setup_eff_ps: int | None = None  #: effective guard extents after SDC mods
    hold_eff_ps: int | None = None
    borrow_ps: int | None = None     #: latch borrow depth (kind="borrow")

    @property
    def ok(self) -> bool:
        return self.slack_ps is None or self.slack_ps >= 0


def compute_slack(
    circuit: Circuit, analysis: WindowAnalysis, constraints=None
) -> list[SlackRecord]:
    """Bound the slack of every check from the static windows.

    Without constraints this is exactly the thesis checker sweep plus the
    informational latch-borrow report.  A :class:`ConstraintSet` adds the
    modern vocabulary: multicycle/uncertainty/latency-adjusted guards,
    false-path waivers, recovery/removal records and output-delay records —
    each mirroring the engine check that consumes the same constraint.
    """
    records: list[SlackRecord] = []
    for comp in circuit.iter_components():
        prim = comp.prim.name
        if prim in _CHECKERS:
            mods = (
                constraints.mods_for(comp.name)
                if constraints is not None
                else None
            )
            records.append(_checker_slack(comp, analysis, mods))
        if prim in ("REG_RS", "LATCH_RS") and constraints is not None:
            spec = constraints.rs_for(comp.name)
            if spec is not None:
                records.extend(_rs_slack(comp, analysis, spec))
        if prim in ("LATCH", "LATCH_RS"):
            borrow_cap = (
                constraints.borrow_for(comp.name)
                if constraints is not None
                else None
            )
            records.append(_borrow_slack(comp, analysis, borrow_cap))
    if constraints is not None:
        for spec in constraints.output_delays:
            records.extend(_output_slack_all(spec, analysis))
    records.sort(key=lambda r: (r.slack_ps is None, r.slack_ps or 0, r.component))
    return records


def _checker_slack(
    comp: Component, analysis: WindowAnalysis, mods=None
) -> SlackRecord:
    period = analysis.period
    i_conn, ck_conn = comp.pins["I"], comp.pins["CK"]
    setup = int(comp.params["setup"])
    hold = int(comp.params["hold"])

    clk_rise, clk_fall = analysis.prepared(ck_conn)
    if ck_conn.invert:
        clk_rise, clk_fall = clk_fall, clk_rise
    data_rise, data_fall = analysis.prepared(i_conn)
    changes = data_rise.union(data_fall)

    s_eff = h_eff = None
    if mods is not None and not mods.waived:
        s_eff, h_eff = mods.effective(setup, hold, period)
        if mods.clock_shift_ps:
            # set_clock_latency: this checker sees its clock edges later
            # (mirrors Engine rotating the clock before materializing).
            shift = mods.clock_shift_ps
            clk_rise = clk_rise.shift(shift, shift)
            clk_fall = clk_fall.shift(shift, shift)

    def record(slack: int | None, *, no_edge: bool = False,
               overflow: bool = False, waived: bool = False) -> SlackRecord:
        return SlackRecord(
            component=comp.name,
            prim=comp.prim.name,
            signal=i_conn.net.name,
            clock=("-" if ck_conn.invert else "") + ck_conn.net.name,
            setup_ps=setup,
            hold_ps=hold,
            slack_ps=slack,
            no_edge=no_edge,
            overflow=overflow,
            origin=comp.origin,
            waived=waived,
            setup_eff_ps=s_eff,
            hold_eff_ps=h_eff,
        )

    if mods is not None and mods.waived:
        # set_false_path: the engine skips this checker; record the waiver
        # (pruned at the checker boundary — stored windows are untouched).
        return record(None, waived=True)

    if clk_rise.is_empty:
        # Mirrors the engine's NO_CLOCK_EDGE violation: nothing to guard.
        return record(None, no_edge=True)
    if clk_rise.is_full or changes.is_full:
        # A feedback cut (or unconstrained input) widened something to the
        # whole period; any slack number would be meaningless pessimism.
        return record(None, overflow=True)

    if comp.prim.name == "SETUP_HOLD_CHK":
        if s_eff is None:
            guards = [(r0 - setup, r1 + hold) for r0, r1 in clk_rise.spans]
        else:
            # Constrained: the two sides become independent guards exactly
            # as in check_setup_hold_windows — a non-positive effective
            # setup waives the setup side; a deeply negative effective hold
            # can empty the hold side per span.
            guards = []
            for r0, r1 in clk_rise.spans:
                if s_eff > 0:
                    guards.append((r0 - s_eff, r1))
                if r1 + h_eff > r0:
                    guards.append((r0, r1 + h_eff))
            if not guards:
                return record(None, waived=True)
    else:
        # SETUP RISE HOLD FALL: the guard runs from setup-before-rise to
        # hold-after the *following* fall (checks.py pairs them circularly).
        # Constrained extents are clamped at zero, mirroring the engine's
        # dispatch of the clamped values into the nominal checker.
        g_setup = setup if s_eff is None else max(0, s_eff)
        g_hold = hold if h_eff is None else max(0, h_eff)
        guards = []
        falls = clk_fall.spans
        for r0, r1 in clk_rise.spans:
            if falls:
                f0, f1 = min(
                    falls, key=lambda s, _r0=r0: (s[0] - _r0) % period
                )
                f1 = r0 + ((f1 - r0) % period)
            else:
                f1 = r1  # no fall window: degrade to the plain guard
            guards.append((r0 - g_setup, max(r1, f1) + g_hold))

    if changes.is_empty:
        # Statically stable data: slack is the full distance to the guard,
        # bounded by what the period can express.
        return record(max(0, period - max(g1 - g0 for g0, g1 in guards)))

    slack = _interval_slack(guards, changes.spans, period)
    return record(slack)


def _rs_slack(comp: Component, analysis: WindowAnalysis, spec) -> list[SlackRecord]:
    """Static recovery/removal slack on a REG_RS / LATCH_RS (per control pin).

    Mirror of ``check_recovery_removal``: guard windows ``[r0 - R, r1]``
    and ``[r0, r1 + M]`` around each clock/enable rise span, compared
    against the control pin's change windows.
    """
    period = analysis.period
    clock_conn = comp.pins["CLOCK" if comp.prim.name == "REG_RS" else "ENABLE"]
    clk_rise, _clk_fall = analysis.prepared(clock_conn)
    records: list[SlackRecord] = []
    for pin in ("SET", "RESET"):
        conn = comp.pins.get(pin)
        if conn is None:
            continue
        ctl_rise, ctl_fall = analysis.prepared(conn)
        changes = ctl_rise.union(ctl_fall)
        for kind, margin in (
            ("recovery", spec.recovery_ps),
            ("removal", spec.removal_ps),
        ):
            if margin is None:
                continue

            def record(slack, *, no_edge=False, overflow=False):
                return SlackRecord(
                    component=comp.name,
                    prim=comp.prim.name,
                    signal=conn.net.name,
                    clock=clock_conn.net.name,
                    setup_ps=margin if kind == "recovery" else 0,
                    hold_ps=margin if kind == "removal" else 0,
                    slack_ps=slack,
                    no_edge=no_edge,
                    overflow=overflow,
                    origin=comp.origin,
                    kind=kind,
                )

            if clk_rise.is_empty:
                records.append(record(None, no_edge=True))
                continue
            if clk_rise.is_full or changes.is_full:
                records.append(record(None, overflow=True))
                continue
            if kind == "recovery":
                guards = [(r0 - margin, r1) for r0, r1 in clk_rise.spans]
            else:
                guards = [(r0, r1 + margin) for r0, r1 in clk_rise.spans]
            guards = [(g0, g1) for g0, g1 in guards if g1 > g0]
            if not guards:
                records.append(record(None, no_edge=True))
                continue
            if changes.is_empty:
                records.append(
                    record(max(0, period - max(g1 - g0 for g0, g1 in guards)))
                )
                continue
            records.append(record(_interval_slack(guards, changes.spans, period)))
    return records


def _borrow_slack(
    comp: Component, analysis: WindowAnalysis, borrow_cap: int | None
) -> SlackRecord:
    """Latch time-borrowing: how deep data arrivals reach into transparency.

    ``borrow_ps`` is the worst-case settle time of the data input after the
    latch opens (0 when data is quiet before every opening).  Without a
    ``set_max_time_borrow`` cap the record is informational
    (``slack_ps=None``); with a cap it mirrors ``check_max_time_borrow``:
    guard ``[r1 + cap, f0]`` over each transparency window.
    """
    period = analysis.period
    enable_conn = comp.pins["ENABLE"]
    data_conn = comp.pins["DATA"]
    en_rise, en_fall = analysis.prepared(enable_conn)
    data_rise, data_fall = analysis.prepared(data_conn)
    changes = data_rise.union(data_fall)

    def record(slack, *, borrow=None, no_edge=False, overflow=False):
        return SlackRecord(
            component=comp.name,
            prim=comp.prim.name,
            signal=data_conn.net.name,
            clock=enable_conn.net.name,
            setup_ps=borrow_cap or 0,
            hold_ps=0,
            slack_ps=slack,
            no_edge=no_edge,
            overflow=overflow,
            origin=comp.origin,
            kind="borrow",
            borrow_ps=borrow,
        )

    if en_rise.is_empty or en_fall.is_empty:
        return record(None, no_edge=True)
    if en_rise.is_full or en_fall.is_full or changes.is_full:
        return record(None, overflow=True)

    falls = en_fall.spans
    transparency: list[tuple[int, int]] = []
    for r0, r1 in en_rise.spans:
        f0, _f1 = min(falls, key=lambda s, _r0=r0: (s[0] - _r0) % period)
        f0 = r0 + ((f0 - r0) % period)
        if f0 > r1:
            transparency.append((r1, f0))

    borrow = 0
    for t0, t1 in transparency:
        for c0, c1 in changes.spans:
            for d in (-period, 0, period):
                lo, hi = max(t0, c0 + d), min(t1, c1 + d)
                if hi >= lo:
                    borrow = max(borrow, hi - t0)

    if borrow_cap is None:
        return record(None, borrow=borrow)
    guards = [(t0 + borrow_cap, t1) for t0, t1 in transparency if t1 > t0 + borrow_cap]
    if not guards:
        return record(None, borrow=borrow, no_edge=not transparency)
    if changes.is_empty:
        return record(
            max(0, period - max(g1 - g0 for g0, g1 in guards)), borrow=borrow
        )
    return record(
        _interval_slack(guards, changes.spans, period), borrow=borrow
    )


def _output_slack_all(spec, analysis: WindowAnalysis) -> list[SlackRecord]:
    """Every record of one ``set_output_delay`` spec.

    One record normally; on a bit-blasted circuit (the port name resolves
    only as per-bit clones) one record per clone, matching the engine's
    per-bit fallback in ``_check_output_delay``.
    """
    circuit = analysis.circuit
    if circuit.nets.get(spec.net) is not None:
        rec = _output_slack(spec, analysis)
        return [rec] if rec is not None else []
    out: list[SlackRecord] = []
    i = 0
    while True:
        n = circuit.nets.get(f"{spec.net} [{i}]")
        if n is None:
            break
        rec = _output_slack(spec, analysis, net_name=n.name)
        if rec is not None:
            out.append(rec)
        i += 1
    return out


def _output_slack(
    spec, analysis: WindowAnalysis, net_name: str | None = None
) -> SlackRecord | None:
    """Static twin of the engine's virtual ``set_output_delay`` check.

    Uses the *stored* net windows (no wire delay), matching the engine's
    use of the raw converged value, and the reference clock's own source
    windows for the capture edges.
    """
    period = analysis.period
    circuit = analysis.circuit
    net_name = net_name or spec.net
    net = circuit.nets.get(net_name)
    clock_net = circuit.nets.get(spec.clock)
    if net is None or clock_net is None:
        return None
    clk_rise, _clk_fall = analysis.of(clock_net)
    data_rise, data_fall = analysis.of(net)
    changes = data_rise.union(data_fall)

    def record(slack, *, no_edge=False, overflow=False):
        return SlackRecord(
            component=f"sdc@{spec.net}",
            prim="SETUP_HOLD_CHK",
            signal=net_name,
            clock=spec.clock,
            setup_ps=spec.setup_ps,
            hold_ps=spec.hold_ps,
            slack_ps=slack,
            no_edge=no_edge,
            overflow=overflow,
            origin=None,
            kind="output",
        )

    if clk_rise.is_empty:
        return record(None, no_edge=True)
    if clk_rise.is_full or changes.is_full:
        return record(None, overflow=True)
    guards = [
        (r0 - spec.setup_ps, r1 + spec.hold_ps) for r0, r1 in clk_rise.spans
    ]
    guards = [(g0, g1) for g0, g1 in guards if g1 > g0]
    if not guards:
        return record(None, no_edge=True)
    if changes.is_empty:
        return record(max(0, period - max(g1 - g0 for g0, g1 in guards)))
    return record(_interval_slack(guards, changes.spans, period))


def _interval_slack(
    guards: list[tuple[int, int]],
    changes: tuple[tuple[int, int], ...],
    period: int,
) -> int:
    """Signed circular distance between change windows and guard windows.

    Positive: the smallest gap from any change span to any guard.
    Negative: minus the deepest penetration of a change span into a guard.
    """
    worst_overlap: int | None = None
    best_gap: int | None = None
    for g0, g1 in guards:
        for c0, c1 in changes:
            # Compare on an unrolled axis: the change span shifted by one
            # period either way covers every circular alignment, since both
            # spans are shorter than the period here.
            for d in (-period, 0, period):
                lo = max(g0, c0 + d)
                hi = min(g1, c1 + d)
                if hi >= lo:  # hi == lo is a boundary touch: zero slack
                    if worst_overlap is None or hi - lo > worst_overlap:
                        worst_overlap = hi - lo
                else:
                    gap = lo - hi
                    best_gap = gap if best_gap is None else min(best_gap, gap)
    if worst_overlap is not None:
        return -worst_overlap
    return best_gap if best_gap is not None else 0
