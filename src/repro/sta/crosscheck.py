"""Engine-vs-static soundness cross-check.

The static windows claim "this net can only rise/fall inside these
intervals".  The engine computes what actually happens in each case.  If
the engine ever observes a transition outside the static windows, one of
the two is broken: either the static transfer functions dropped a possible
change (an optimism bug — the cardinal sin of the value algebra) or the
optimized engine manufactured an event the design cannot produce.  Either
way the enclosure failure localizes the bug to a net and an instant, which
is why `scald-tv --crosscheck` runs this after every verification.

The check is one-directional by design: static windows wider than the
engine's behaviour are expected (they fold all cases, worst-case delays
and feedback widening into one answer), so only engine-outside-static is
an error.

With a slack list the check extends to per-check *verdicts*: a static
record with strictly positive slack promises the engine cannot violate
the matching check, so any engine violation at the same
(component, kind, signal) is a contract failure.  Strictly positive —
not merely non-negative — because static zero slack means a change
window touches the closed guard boundary, where the engine's closed
``instability_in`` windows legitimately report a violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.violations import ViolationKind
from .windows import WindowAnalysis, waveform_windows

#: Engine violation kinds each static record kind vouches for.
_KINDS_FOR = {
    "setup-hold": (ViolationKind.SETUP, ViolationKind.HOLD,
                   ViolationKind.STABLE_WHILE_TRUE),
    "recovery": (ViolationKind.RECOVERY,),
    "removal": (ViolationKind.REMOVAL,),
    "borrow": (ViolationKind.BORROW,),
    "output": (ViolationKind.SETUP, ViolationKind.HOLD),
}


@dataclass(frozen=True)
class EnclosureFailure:
    """One engine transition interval not covered by the static windows."""

    case_index: int
    net: str
    direction: str               #: ``"rise"`` or ``"fall"``
    span: tuple[int, int]        #: uncovered interval, ps within the period


@dataclass(frozen=True)
class VerdictFailure:
    """An engine violation on a check the static analysis cleared."""

    component: str
    kind: str                    #: the static record's kind
    signal: str
    case_index: int
    slack_ps: int                #: the (positive) static slack that lied


@dataclass
class CrosscheckResult:
    """Outcome of :func:`check_encloses`."""

    failures: list[EnclosureFailure] = field(default_factory=list)
    nets_checked: int = 0
    cases_checked: int = 0
    verdict_failures: list[VerdictFailure] = field(default_factory=list)
    verdicts_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures and not self.verdict_failures


def check_encloses(
    result, analysis: WindowAnalysis, slack=None
) -> CrosscheckResult:
    """Assert every engine transition lies inside the static windows.

    ``result`` is a :class:`repro.core.verifier.VerificationResult`;
    ``analysis`` the :class:`WindowAnalysis` for the same circuit.  Returns
    a :class:`CrosscheckResult` whose ``failures`` list every uncovered
    rise/fall interval with case and net provenance.

    With ``slack`` (a :func:`repro.sta.slack.compute_slack` list, which
    must have been computed with the *same* constraints as the engine run)
    the per-check verdict pass also runs: every record with strictly
    positive slack must correspond to zero engine violations of its kinds
    at the same (component, signal).
    """
    out = CrosscheckResult(cases_checked=len(result.cases))
    seen: set[str] = set()
    for case in result.cases:
        for name, wf in case.waveforms.items():
            try:
                static_rise, static_fall = analysis.by_name(name)
            except KeyError:
                # Net exists only in the engine's view (e.g. a supply rail
                # synthesized during verification); nothing static to check.
                continue
            seen.add(name)
            engine_rise, engine_fall = waveform_windows(wf)
            for direction, engine, static in (
                ("rise", engine_rise, static_rise),
                ("fall", engine_fall, static_fall),
            ):
                for span in static.uncovered(engine):
                    out.failures.append(
                        EnclosureFailure(
                            case_index=case.index,
                            net=name,
                            direction=direction,
                            span=span,
                        )
                    )
    out.nets_checked = len(seen)

    if slack:
        # Engine violations indexed by (component, signal) -> kinds seen.
        index: dict[tuple[str, str], list] = {}
        for v in result.violations:
            index.setdefault((v.component, v.signal), []).append(v)
        for rec in slack:
            if rec.slack_ps is None or rec.slack_ps <= 0 or rec.waived:
                continue
            kinds = _KINDS_FOR.get(rec.kind)
            if kinds is None:
                continue
            out.verdicts_checked += 1
            for v in index.get((rec.component, rec.signal), ()):
                if v.kind in kinds:
                    out.verdict_failures.append(
                        VerdictFailure(
                            component=rec.component,
                            kind=rec.kind,
                            signal=rec.signal,
                            case_index=v.case_index,
                            slack_ps=rec.slack_ps,
                        )
                    )
    return out
