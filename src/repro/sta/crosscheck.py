"""Engine-vs-static soundness cross-check.

The static windows claim "this net can only rise/fall inside these
intervals".  The engine computes what actually happens in each case.  If
the engine ever observes a transition outside the static windows, one of
the two is broken: either the static transfer functions dropped a possible
change (an optimism bug — the cardinal sin of the value algebra) or the
optimized engine manufactured an event the design cannot produce.  Either
way the enclosure failure localizes the bug to a net and an instant, which
is why `scald-tv --crosscheck` runs this after every verification.

The check is one-directional by design: static windows wider than the
engine's behaviour are expected (they fold all cases, worst-case delays
and feedback widening into one answer), so only engine-outside-static is
an error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .windows import WindowAnalysis, waveform_windows


@dataclass(frozen=True)
class EnclosureFailure:
    """One engine transition interval not covered by the static windows."""

    case_index: int
    net: str
    direction: str               #: ``"rise"`` or ``"fall"``
    span: tuple[int, int]        #: uncovered interval, ps within the period


@dataclass
class CrosscheckResult:
    """Outcome of :func:`check_encloses`."""

    failures: list[EnclosureFailure] = field(default_factory=list)
    nets_checked: int = 0
    cases_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def check_encloses(result, analysis: WindowAnalysis) -> CrosscheckResult:
    """Assert every engine transition lies inside the static windows.

    ``result`` is a :class:`repro.core.verifier.VerificationResult`;
    ``analysis`` the :class:`WindowAnalysis` for the same circuit.  Returns
    a :class:`CrosscheckResult` whose ``failures`` list every uncovered
    rise/fall interval with case and net provenance.
    """
    out = CrosscheckResult(cases_checked=len(result.cases))
    seen: set[str] = set()
    for case in result.cases:
        for name, wf in case.waveforms.items():
            try:
                static_rise, static_fall = analysis.by_name(name)
            except KeyError:
                # Net exists only in the engine's view (e.g. a supply rail
                # synthesized during verification); nothing static to check.
                continue
            seen.add(name)
            engine_rise, engine_fall = waveform_windows(wf)
            for direction, engine, static in (
                ("rise", engine_rise, static_rise),
                ("fall", engine_fall, static_fall),
            ):
                for span in static.uncovered(engine):
                    out.failures.append(
                        EnclosureFailure(
                            case_index=case.index,
                            net=name,
                            direction=direction,
                            span=span,
                        )
                    )
    out.nets_checked = len(seen)
    return out
