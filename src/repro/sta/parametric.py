"""Parametric static timing: window bounds affine in the clock period.

The window dataflow (``sta/windows.py``) and slack pass (``sta/slack.py``)
compute with integer-picosecond bounds through ``+ - % < <= min max sort``.
Nothing in that arithmetic cares that a bound is an *integer* — only that
the operations are exact and totally ordered.  This module re-runs the very
same passes with every bound an affine form ``a + b*T`` (:class:`Aff`,
exact :class:`~fractions.Fraction` coefficients, never floats) where ``T``
is the clock period in picoseconds.  One pass then yields every checker's
slack as an affine function of ``T``, valid over a *region* of periods
around the sample point — intersecting ``min-slack(T) = 0`` gives the
static Fmax in closed form (:func:`solve_static_fmax`).

Guided evaluation
-----------------
Branch decisions inside the passes (span ordering, guard emptiness,
``% period`` folding) are resolved at a concrete sample period ``T0``, and
every decision records the affine sign constraint it relied on, narrowing
the validity region (:class:`_Region`).  Inside the region the propagated
forms are exact; outside it another pass is taken at a new sample — the
Newton-style region walk of :func:`solve_static_fmax`.

Soundness
---------
Static slack is a lower bound on the engine margin (the crosscheck
contract), and the pessimism — the 1 ps change-marker pads, skew
materialization — is constant in ``T``: it perturbs only the ``a``
coefficients, never the ``b*T`` slopes, so the static root ``T_s`` can
only sit *above* the true engine boundary.  Reported Fmax is therefore
conservative by construction.  :func:`solve_fmax` anchors ``T_s`` to the
engine with a short confirmation descent, giving the exact engine boundary
that :func:`bisect_fmax` — the independent pure-bisection oracle behind
``scald-tv --fmax`` — must reproduce to within the rounding wobble.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction

from ..core.config import VerifyConfig
from ..core.engine import _SUPPLY
from ..core.timeline import Timebase, scaled_timebase
from ..netlist.circuit import Circuit, Component, Connection, Net
from .slack import SlackRecord, compute_slack
from .windows import IntervalSet, WindowAnalysis, compute_windows, _used_input_conns

__all__ = [
    "Aff",
    "FmaxResult",
    "ParametricRun",
    "StaticFmax",
    "WitnessHop",
    "bisect_fmax",
    "run_parametric",
    "solve_fmax",
    "solve_static_fmax",
    "trace_witness",
]


# ---------------------------------------------------------------------------
# the affine form and its guided evaluation context
# ---------------------------------------------------------------------------


class _Region:
    """The period region where every guided decision so far stays valid.

    ``t0`` is the concrete sample period; ``lo``/``hi`` are exact rational
    bounds narrowed by each recorded sign constraint (``hi`` None = +inf).
    Strictness at the boundary is deliberately ignored — the solvers
    confirm candidate roots with concrete integer passes, so a region edge
    being off by the open/closed distinction costs at most one extra pass.
    """

    __slots__ = ("t0", "lo", "hi")

    def __init__(self, t0: int) -> None:
        self.t0 = t0
        self.lo = Fraction(1)
        self.hi: Fraction | None = None

    def require_nonneg(self, d: "Aff") -> None:
        """Record that ``d(T) >= 0`` must keep holding (it holds at t0)."""
        if not d.b:
            return
        # Coefficients may be plain ints; force exact rational division.
        root = Fraction(-d.a) / d.b
        if d.b > 0:  # d >= 0 for T >= root
            if root > self.lo:
                self.lo = root
        else:  # d >= 0 for T <= root
            if self.hi is None or root < self.hi:
                self.hi = root

    @property
    def lo_int(self) -> int:
        return max(1, math.ceil(self.lo))

    @property
    def hi_int(self) -> int | None:
        return None if self.hi is None else math.floor(self.hi)


#: The active guided-evaluation context; set only inside run_parametric.
_CTX: _Region | None = None


def _ctx() -> _Region:
    if _CTX is None:
        raise RuntimeError(
            "Aff used outside a parametric context (run_parametric)"
        )
    return _CTX


def _decide_pos(d: "Aff") -> bool:
    """Guided ``d(T) > 0``: answer at t0, constrain the region to match."""
    if not d.b:
        return d.a > 0
    ctx = _ctx()
    if d.a + d.b * ctx.t0 > 0:
        ctx.require_nonneg(d)
        return True
    ctx.require_nonneg(-d)
    return False


class Aff:
    """An exact affine form ``a + b*T`` of the clock period ``T``.

    Equality and hashing are *structural* (coefficient equality) so interval
    sets and transfer memos never conflate forms with different slopes.
    Ordering, truthiness and ``%`` are *guided*: evaluated at the active
    region's sample period, recording the sign constraint that keeps the
    answer stable (see module docstring).  ``round``/``int``/``float``
    raise — a silent collapse to a number would hide period dependence.

    Coefficients are exact ints or :class:`~fractions.Fraction`s; the
    arithmetic keeps plain ints plain (most bounds in the dataflow are
    integer delays riding on a handful of sloped clock terms, and Fraction
    normalization is ~30x the cost of an int add), with every division
    site forcing a Fraction so int/int can never decay to float.
    """

    __slots__ = ("a", "b")

    def __init__(self, a, b=0) -> None:
        self.a = a if isinstance(a, (int, Fraction)) else Fraction(a)
        self.b = b if isinstance(b, (int, Fraction)) else Fraction(b)

    def at(self, period) -> Fraction:
        """Exact value at a concrete period."""
        return self.a + self.b * period

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other):
        if type(other) is int:
            return Aff(self.a + other, self.b)
        o = _as_aff(other)
        if o is None:
            return NotImplemented
        sb, ob = self.b, o.b
        return Aff(self.a + o.a, sb + ob if sb and ob else (sb or ob))

    __radd__ = __add__

    def __sub__(self, other):
        if type(other) is int:
            return Aff(self.a - other, self.b)
        o = _as_aff(other)
        if o is None:
            return NotImplemented
        sb, ob = self.b, o.b
        return Aff(self.a - o.a, sb - ob if ob else sb)

    def __rsub__(self, other):
        if type(other) is int:
            return Aff(other - self.a, -self.b)
        o = _as_aff(other)
        if o is None:
            return NotImplemented
        sb, ob = self.b, o.b
        return Aff(o.a - self.a, ob - sb if sb else ob)

    def __neg__(self):
        return Aff(-self.a, -self.b)

    def __pos__(self):
        return self

    def __mul__(self, other):
        if isinstance(other, Aff):
            if other.b:
                return NotImplemented  # quadratic: never needed, never safe
            other = other.a
        if not isinstance(other, (int, Fraction)):
            return NotImplemented
        return Aff(self.a * other, self.b * other)

    __rmul__ = __mul__

    def __mod__(self, other):
        o = _as_aff(other)
        if o is None:
            return NotImplemented
        if not self.b and not o.b:
            return Aff(self.a % o.a)
        ctx = _ctx()
        k = self.at(ctx.t0) // o.at(ctx.t0)
        r = self - k * o
        # Valid while the quotient stays k: 0 <= r < o.
        ctx.require_nonneg(r)
        ctx.require_nonneg(o - r)
        return r

    def __rmod__(self, other):
        o = _as_aff(other)
        if o is None:
            return NotImplemented
        return o % self

    # -- ordering (guided) ----------------------------------------------

    # Equal-slope comparisons (the common case: two plain delays) reduce
    # to the constant terms for every T — no allocation, no region update.

    def __lt__(self, other):
        if type(other) is int:
            if not self.b:
                return self.a < other
            o = Aff(other)
        else:
            o = _as_aff(other)
            if o is None:
                return NotImplemented
            if self.b == o.b:
                return self.a < o.a
        return _decide_pos(o - self)

    def __gt__(self, other):
        if type(other) is int:
            if not self.b:
                return self.a > other
            o = Aff(other)
        else:
            o = _as_aff(other)
            if o is None:
                return NotImplemented
            if self.b == o.b:
                return self.a > o.a
        return _decide_pos(self - o)

    def __le__(self, other):
        if type(other) is int:
            if not self.b:
                return self.a <= other
            o = Aff(other)
        else:
            o = _as_aff(other)
            if o is None:
                return NotImplemented
            if self.b == o.b:
                return self.a <= o.a
        return not _decide_pos(self - o)

    def __ge__(self, other):
        if type(other) is int:
            if not self.b:
                return self.a >= other
            o = Aff(other)
        else:
            o = _as_aff(other)
            if o is None:
                return NotImplemented
            if self.b == o.b:
                return self.a >= o.a
        return not _decide_pos(o - self)

    # -- identity (structural) ------------------------------------------

    def __eq__(self, other):
        o = _as_aff(other)
        if o is None:
            return NotImplemented
        return self.a == o.a and self.b == o.b

    def __hash__(self):
        return hash((self.a, self.b))

    def __bool__(self):
        if not self.b:
            return bool(self.a)
        ctx = _ctx()
        v = self.at(ctx.t0)
        if v > 0:
            ctx.require_nonneg(self)
            return True
        if v < 0:
            ctx.require_nonneg(-self)
            return True
        # Zero exactly at t0 with nonzero slope: truthiness is only stable
        # at the sample itself; pin the region rather than guess.
        ctx.require_nonneg(self)
        ctx.require_nonneg(-self)
        return False

    def __round__(self, ndigits=None):
        raise TypeError("rounding an Aff would hide its period dependence")

    __int__ = __float__ = __index__ = __round__

    def __repr__(self) -> str:
        if not self.b:
            return f"Aff({self.a})"
        return f"Aff({self.a} + {self.b}*T)"


def _as_aff(x) -> Aff | None:
    if isinstance(x, Aff):
        return x
    if isinstance(x, (int, Fraction)):
        return Aff(x)
    return None


# ---------------------------------------------------------------------------
# the parametric timebase and source windows
# ---------------------------------------------------------------------------


class ParamTimebase:
    """Duck-typed :class:`Timebase` whose period is the symbol ``T``.

    Clock units are a fixed fraction of the period (``scaled_timebase``
    keeps the same ratio at every concrete period), so a clock-unit time
    becomes a pure slope ``(units * unit/period) * T`` — exact, unrounded.
    The concrete timebase rounds each derived time to an integer picosecond;
    that rounding is a step function of ``T``, so the parametric pass keeps
    the exact rational form and leaves integer truth to the concrete
    confirmation passes of the solvers.
    """

    __slots__ = ("base", "period_ps", "_unit_slope")

    def __init__(self, base: Timebase) -> None:
        self.base = base
        self.period_ps = Aff(0, 1)
        self._unit_slope = Fraction(base.clock_unit_ps) / base.period_ps

    def units_to_ps(self, units) -> Aff:
        return Aff(0, Fraction(str(units)) * self._unit_slope)

    def wrap(self, t_ps):
        return t_ps % self.period_ps


def _clock_edge_windows(
    assertion, timebase: ParamTimebase, period: Aff, skew: tuple[int, int]
) -> tuple[IntervalSet, IntervalSet]:
    """(may-rise, may-fall) of a clock assertion, affine bounds.

    Mirror of ``waveform_windows(assertion.waveform(...))``: the asserted
    ranges paint one level over the other, so after the union each span
    start/end is one edge instant, widened by the skew to ``[t+early,
    t+late]``.  Overlapping skew windows of opposite edges materialize as
    CHANGE — which lands in *both* direction sets concretely, but never
    extends past the union of the per-edge paints, so per-direction unions
    are exactly the concrete windows.
    """
    bounds = [r.bounds_ps(timebase) for r in assertion.ranges]
    bounds = [(lo, hi) for lo, hi in bounds if hi > lo]  # zero-width paints vanish
    level = IntervalSet(period, bounds)
    empty = IntervalSet.empty(period)
    if level.is_full or level.is_empty:
        return empty, empty  # constant level: no edges
    early, late = skew
    rises: list[tuple] = []
    falls: list[tuple] = []
    for lo, hi in level.spans:
        r, f = (lo, hi) if not assertion.low else (hi, lo)
        rises.append((r + early, r + late))
        falls.append((f + early, f + late))
    return IntervalSet(period, rises), IntervalSet(period, falls)


def _stable_windows(
    assertion, timebase: ParamTimebase, period: Aff
) -> tuple[IntervalSet, IntervalSet]:
    """Change windows of a ``.S`` stable assertion, affine bounds.

    STABLE is painted over the ranges, CHANGE elsewhere; the change windows
    are the circular complement of the stable union, endpoints included
    (the STABLE/CHANGE boundaries contribute their instants concretely, and
    interval-set spans are closed).
    """
    bounds = [r.bounds_ps(timebase) for r in assertion.ranges]
    bounds = [(lo, hi) for lo, hi in bounds if hi > lo]
    stable = IntervalSet(period, bounds)
    if stable.is_full:
        win = IntervalSet.empty(period)
    elif stable.is_empty:
        win = IntervalSet.everywhere(period)
    else:
        spans = stable.spans
        gaps = []
        for i, (_lo, hi) in enumerate(spans):
            nxt = spans[i + 1][0] if i + 1 < len(spans) else spans[0][0] + period
            gaps.append((hi, nxt))
        win = IntervalSet(period, gaps)
    return win, win


def _param_source_windows(
    circuit: Circuit,
    config: VerifyConfig,
    rep: Net,
    period: Aff,
    constraints=None,
) -> tuple[IntervalSet, IntervalSet]:
    """Affine twin of ``windows._source_windows`` (same signature)."""
    empty = IntervalSet.empty(period)
    if rep.base_name.upper() in _SUPPLY:
        return empty, empty
    timebase = circuit.timebase  # the installed ParamTimebase
    assertion = rep.assertion
    if assertion is not None and assertion.kind.is_clock:
        skew = assertion.skew_ps(
            config.clock_skew_ns(assertion.kind.name == "PRECISION_CLOCK")
        )
        return _clock_edge_windows(assertion, timebase, period, skew)
    if assertion is not None:
        return _stable_windows(assertion, timebase, period)
    if constraints is not None:
        spec = constraints.input_delay_for(rep.name)
        if spec is not None:
            clock_net = circuit.nets.get(spec.clock)
            if clock_net is not None:
                clock_rep = circuit.find(clock_net)
                a = clock_rep.assertion
                if a is not None and a.kind.is_clock:
                    # Mirror of constraints.input_delay_spans: the port
                    # changes [min, max] after each clock rise window.
                    skew = a.skew_ps(
                        config.clock_skew_ns(a.kind.name == "PRECISION_CLOCK")
                    )
                    rise, _fall = _clock_edge_windows(a, timebase, period, skew)
                    if not (rise.is_empty or rise.is_full):
                        win = IntervalSet(
                            period,
                            [
                                (r0 + spec.min_ps, r1 + spec.max_ps)
                                for r0, r1 in rise.spans
                            ],
                        )
                        return win, win
    return empty, empty


# ---------------------------------------------------------------------------
# one parametric pass
# ---------------------------------------------------------------------------


@dataclass
class ParametricRun:
    """One guided pass: affine slack records valid over a period region."""

    t0: int                      #: sample period the decisions were taken at
    lo: int                      #: region floor (inclusive, integer ps)
    hi: int | None               #: region ceiling (inclusive; None = open)
    records: list[SlackRecord]   #: slack_ps fields are Aff (or int) forms
    analysis: WindowAnalysis


def run_parametric(
    circuit: Circuit,
    config: VerifyConfig | None = None,
    constraints=None,
    t0: int | None = None,
) -> ParametricRun:
    """Run the window + slack passes with bounds affine in the period.

    The circuit's timebase is swapped for a :class:`ParamTimebase` for the
    duration (and always restored); the existing passes run unmodified via
    the ``source_windows`` hook.  Not reentrant — module-level context —
    which matches every caller (the solvers run passes sequentially).
    """
    global _CTX
    config = config or VerifyConfig()
    base = circuit.timebase
    sample = int(t0) if t0 is not None else base.period_ps
    if sample < 1:
        raise ValueError(f"sample period must be positive, got {sample}")
    region = _Region(sample)
    prev = _CTX
    _CTX = region
    circuit.timebase = ParamTimebase(base)
    try:
        analysis = compute_windows(
            circuit, config, constraints, source_windows=_param_source_windows
        )
        records = compute_slack(circuit, analysis, constraints)
    finally:
        circuit.timebase = base
        _CTX = prev
    hi = region.hi_int
    lo = region.lo_int
    if hi is not None and hi < lo:
        # Degenerate region (a decision sat exactly on its boundary at t0):
        # still valid at the sample itself.
        lo = hi = sample
    return ParametricRun(t0=sample, lo=lo, hi=hi, records=records, analysis=analysis)


def _slack_form(value) -> Aff | None:
    if value is None:
        return None
    return value if isinstance(value, Aff) else Aff(value)


def _record_key(rec: SlackRecord) -> tuple[str, str, str]:
    return (rec.component, rec.kind, rec.signal)


# ---------------------------------------------------------------------------
# concrete passes at a trial period
# ---------------------------------------------------------------------------


class _at_period:
    """Temporarily rescale a circuit to a trial period (always restored)."""

    def __init__(self, circuit: Circuit, period_ps: int) -> None:
        self.circuit = circuit
        self.period_ps = period_ps

    def __enter__(self) -> Circuit:
        self._saved = self.circuit.timebase
        self.circuit.timebase = scaled_timebase(self._saved, self.period_ps)
        return self.circuit

    def __exit__(self, *exc) -> None:
        self.circuit.timebase = self._saved


def _static_records(circuit, config, constraints, period_ps):
    with _at_period(circuit, period_ps):
        analysis = compute_windows(circuit, config, constraints)
        return compute_slack(circuit, analysis, constraints)


def _static_ok(records, baseline_overflow) -> bool:
    """Is a concrete static pass clean at this period?

    Records that overflow (windows widened to the full period) carry no
    slack number.  Overflow already present at the *design* period is
    structural (feedback cuts) and stays indeterminate at every period;
    overflow that only appears at the trial period is period-driven (a
    clock window wrapped) and conservatively blocks the period.
    """
    for r in records:
        if r.slack_ps is None:
            if r.overflow and _record_key(r) not in baseline_overflow:
                return False
            continue
        if r.slack_ps < 0:
            return False
    return True


def _engine_probe(circuit, config, constraints, period_ps) -> int | None:
    """One engine run at ``period_ps``: None when clean, else the worst
    ``missed_by_ps`` over all violations (0 when none carries a margin)."""
    from ..core.verifier import TimingVerifier

    with _at_period(circuit, period_ps):
        result = TimingVerifier(
            circuit, config=config, constraints=constraints
        ).verify()
    if result.ok:
        return None
    return max((v.missed_by_ps or 0) for v in result.violations)


def _engine_ok(circuit, config, constraints, period_ps) -> bool:
    return _engine_probe(circuit, config, constraints, period_ps) is None


def _engine_binding(circuit, config, constraints, boundary):
    """Name the check the engine reports one picosecond below the boundary.

    Used by the bisection fallback, where the static pass could not name a
    binding record itself.  Returns ``(record, witness, terminal)`` — the
    concrete static record matching the first engine violation at
    ``boundary - 1`` (None when no static record corresponds).
    """
    from ..core.verifier import TimingVerifier

    if boundary is None or boundary <= 1:
        return None, [], ""
    with _at_period(circuit, boundary - 1):
        result = TimingVerifier(
            circuit, config=config, constraints=constraints
        ).verify()
    if result.ok or not result.violations:
        return None, [], ""
    v = result.violations[0]
    records = _static_records(circuit, config, constraints, boundary - 1)
    record = None
    for rec in records:
        if rec.component == v.component and rec.signal == v.signal:
            record = rec
            break
    else:
        for rec in records:
            if rec.component == v.component:
                record = rec
                break
    probe = record if record is not None else None
    signal = probe.signal if probe is not None else v.signal
    witness, terminal = trace_witness(
        circuit,
        config,
        constraints,
        boundary,
        probe
        if probe is not None
        else SlackRecord(
            component=v.component,
            prim="",
            signal=signal,
            clock="",
            setup_ps=0,
            hold_ps=0,
            slack_ps=None,
            no_edge=False,
            overflow=False,
            origin=None,
        ),
    )
    return record, witness, terminal


# ---------------------------------------------------------------------------
# the analytic solver
# ---------------------------------------------------------------------------


@dataclass
class StaticFmax:
    """Closed-form static Fmax: the smallest statically-clean period."""

    period_limited: bool
    period_ps: int | None        #: smallest T with static-clean(T); None if
                                 #: every period fails (or none binds)
    binding: SlackRecord | None  #: concrete binding record at period_ps - 1
    slope: Fraction | None       #: d(slack)/dT of the binding check
    passes: int = 0              #: parametric passes taken
    static_evals: int = 0        #: concrete static confirmations taken
    baseline_overflow: frozenset = frozenset()

    @property
    def fmax_mhz(self) -> float | None:
        if self.period_ps is None or not self.period_limited:
            return None
        return 1e6 / self.period_ps


def _region_candidate(run: ParametricRun, baseline_overflow):
    """The smallest clean period suggested by one region's affine forms.

    Returns ``(candidate, binding_form, feasible)``: the smallest T where
    every applicable record's form is >= 0 (records needing T >= root push
    the candidate up; a constant-negative or contradictory region is
    infeasible and the walk must leave it upward).
    """
    need = Fraction(1)
    cap: Fraction | None = None
    binding = None
    binding_root = None
    feasible = True
    for rec in run.records:
        if rec.slack_ps is None:
            if rec.overflow and _record_key(rec) not in baseline_overflow:
                feasible = False  # period-driven overflow blocks this region
            continue
        form = _slack_form(rec.slack_ps)
        if not form.b:
            if form.a < 0:
                feasible = False
            continue
        root = Fraction(-form.a) / form.b
        if form.b > 0:  # clean for T >= root
            if root > need:
                need = root
                binding, binding_root = rec, root
        else:  # clean for T <= root
            if cap is None or root < cap:
                cap = root
    if cap is not None and need > cap:
        feasible = False
    candidate = max(1, math.ceil(need))
    if candidate == need:  # root exactly integer: T = root has slack 0, ok
        candidate = int(need)
    return candidate, binding, feasible


def solve_static_fmax(
    circuit: Circuit,
    config: VerifyConfig | None = None,
    constraints=None,
    max_passes: int = 24,
    max_walk: int = 64,
) -> StaticFmax:
    """Closed-form static Fmax via the guided region walk.

    Newton-style: a parametric pass at a sample period yields every check's
    affine slack over a validity region; the intersection of their roots
    proposes the next sample.  When the proposal falls inside the region it
    is the static root up to rounding (the concrete timebase rounds each
    derived time, the affine forms do not) — a short concrete-integer walk
    then pins the exact boundary: static-clean(T_s) and not
    static-clean(T_s - 1).
    """
    config = config or VerifyConfig()
    design_period = circuit.timebase.period_ps
    evals = 0
    clean_memo: dict[int, bool] = {}
    records_memo: dict[int, list[SlackRecord]] = {}

    def records_at(t: int) -> list[SlackRecord]:
        nonlocal evals
        recs = records_memo.get(t)
        if recs is None:
            evals += 1
            recs = records_memo[t] = _static_records(
                circuit, config, constraints, t
            )
        return recs

    baseline = records_at(design_period)
    baseline_overflow = frozenset(
        _record_key(r) for r in baseline if r.slack_ps is None and r.overflow
    )

    def clean(t: int) -> bool:
        if t < 1:
            return False
        hit = clean_memo.get(t)
        if hit is None:
            hit = clean_memo[t] = _static_ok(records_at(t), baseline_overflow)
        return hit

    clean_memo[design_period] = _static_ok(baseline, baseline_overflow)

    # Phase 1: region walk to a candidate root.
    passes = 0
    t = design_period
    guess = design_period
    binding_slope: Fraction | None = None
    period_limited = True
    visited: set[int] = set()
    while passes < max_passes:
        run = run_parametric(circuit, config, constraints, t0=t)
        passes += 1
        candidate, binding, feasible = _region_candidate(run, baseline_overflow)
        if not feasible:
            # Nothing in this region verifies; the root is above it.
            if run.hi is None:
                guess = t
                break
            nxt = run.hi + 1
            if nxt in visited or nxt <= t:
                guess = max(t, nxt)
                break
            visited.add(nxt)
            t = nxt
            continue
        if binding is None:
            # No period-dependent check constrains from below in this
            # region: clean down to (at least) the region floor.
            if run.lo <= 1:
                period_limited = clean(1) is False
                guess = 1 if not period_limited else run.lo
                if not period_limited:
                    break
            guess = max(1, run.lo - 1)
            if guess in visited or guess >= t:
                guess = run.lo
                break
            visited.add(guess)
            t = guess
            continue
        binding_slope = _slack_form(binding.slack_ps).b
        guess = candidate
        in_region = run.lo <= candidate and (
            run.hi is None or candidate <= run.hi + 1
        )
        # One or two concrete evals (each a small fraction of a parametric
        # pass) pin the boundary when the affine root lands on or next to
        # it — the usual outcome, since only clock-edge rounding separates
        # the exact root from the concrete one.
        if in_region and candidate > 1 and clean(candidate - 1):
            guess = candidate - 1  # boundary is lower; phase 2 walks down
            break
        if candidate > 1 and clean(candidate) and not clean(candidate - 1):
            break
        if in_region or candidate == t or candidate in visited:
            break
        visited.add(candidate)
        t = candidate

    result_binding: SlackRecord | None = None
    if not period_limited:
        return StaticFmax(
            period_limited=False,
            period_ps=None,
            binding=None,
            slope=None,
            passes=passes,
            static_evals=evals,
            baseline_overflow=baseline_overflow,
        )

    # Phase 2: concrete-integer confirmation walk around the guess.
    t = max(1, guess)
    steps = 0
    if clean(t):
        while t > 1 and clean(t - 1) and steps < max_walk:
            t -= 1
            steps += 1
        if t > 1 and clean(t - 1):
            # Guess was far high: bisect down (static cleanliness is
            # monotone up to the rounding wobble the walk above absorbs).
            lo_v = 1
            hi_c = t
            while not clean(lo_v) and hi_c - lo_v > 1:
                mid = (lo_v + hi_c) // 2
                if clean(mid):
                    hi_c = mid
                else:
                    lo_v = mid
            t = hi_c
            while t > 1 and clean(t - 1):
                t -= 1
    else:
        while not clean(t) and steps < max_walk:
            t += 1
            steps += 1
        if not clean(t):
            # Guess was far low: bisect up against a known-clean ceiling.
            hi_c = max(design_period, t + 1)
            doublings = 0
            while not clean(hi_c) and doublings < 16:
                hi_c *= 2
                doublings += 1
            if not clean(hi_c):
                return StaticFmax(
                    period_limited=True,
                    period_ps=None,
                    binding=None,
                    slope=binding_slope,
                    passes=passes,
                    static_evals=evals,
                    baseline_overflow=baseline_overflow,
                )
            lo_v = t
            while hi_c - lo_v > 1:
                mid = (lo_v + hi_c) // 2
                if clean(mid):
                    hi_c = mid
                else:
                    lo_v = mid
            t = hi_c

    if t <= 1 and clean(1):
        return StaticFmax(
            period_limited=False,
            period_ps=None,
            binding=None,
            slope=None,
            passes=passes,
            static_evals=evals,
            baseline_overflow=baseline_overflow,
        )

    # The binding check: the worst concrete record one picosecond below
    # (already computed — pinning the boundary evaluated t - 1).
    below = records_at(t - 1)
    worst = None
    for rec in below:
        if rec.slack_ps is not None and rec.slack_ps < 0:
            if worst is None or rec.slack_ps < worst.slack_ps:
                worst = rec
    if worst is None:
        for rec in below:
            if rec.slack_ps is None and rec.overflow and (
                _record_key(rec) not in baseline_overflow
            ):
                worst = rec
                break
    result_binding = worst

    return StaticFmax(
        period_limited=True,
        period_ps=t,
        binding=result_binding,
        slope=binding_slope,
        passes=passes,
        static_evals=evals,
        baseline_overflow=baseline_overflow,
    )

# ---------------------------------------------------------------------------
# engine anchoring and the independent bisection oracle
# ---------------------------------------------------------------------------


@dataclass
class WitnessHop:
    """One component on the critical path behind the binding check."""

    component: str
    prim: str
    net: str                     #: the output net the hop contributes
    delay: tuple[int, int]
    origin: tuple[str, int] | None = None


@dataclass
class FmaxResult:
    """An Fmax answer: the smallest clean period and how it was found."""

    period_limited: bool
    period_ps: int | None        #: smallest engine-clean period (exact)
    method: str                  #: "anchored" (static + engine confirm)
                                 #: or "bisect" (pure engine bisection)
    static_period_ps: int | None = None   #: conservative static root T_s
    binding: SlackRecord | None = None
    slope: Fraction | None = None
    witness: list[WitnessHop] = field(default_factory=list)
    witness_terminal: str = ""   #: what the backward trace ended on
    engine_runs: int = 0
    parametric_passes: int = 0
    static_evals: int = 0

    @property
    def fmax_mhz(self) -> float | None:
        if self.period_ps is None or not self.period_limited:
            return None
        return 1e6 / self.period_ps


#: How far below a found boundary both oracles re-probe: the engine's
#: slack-vs-T curve is a step function of interleaved roundings and can be
#: locally non-monotone by a picosecond or two; scanning a small window
#: makes "smallest clean period" deterministic across search strategies.
_POLISH_WINDOW = 4


def _polish_boundary(ok, t: int) -> tuple[int, int]:
    """Lower ``t`` to the smallest clean period reachable through wobble.

    ``ok(T)`` must already hold at ``t``.  Returns (boundary, probes).
    """
    probes = 0
    while t > 1:
        lower = None
        for d in range(1, _POLISH_WINDOW + 1):
            cand = t - d
            if cand < 1:
                break
            probes += 1
            if ok(cand):
                lower = cand
                break
        if lower is None:
            return t, probes
        t = lower
    return t, probes


def solve_fmax(
    circuit: Circuit,
    config: VerifyConfig | None = None,
    constraints=None,
) -> FmaxResult:
    """Analytic Fmax: static closed form anchored by engine confirmation.

    The parametric pass gives the conservative static root ``T_s`` (the
    engine is guaranteed clean there — static-positive implies
    engine-clean).  The constant pessimism of the window pads puts the true
    engine boundary at most a few picoseconds *below* ``T_s``; a geometric
    descent plus integer bisection pins it exactly: engine-clean(T*) and
    engine-violating(T* - 1).
    """
    config = config or VerifyConfig()
    static = solve_static_fmax(circuit, config, constraints)
    runs = 0
    margin_memo: dict[int, int | None] = {}

    def probe(t: int) -> int | None:
        """Worst engine miss at T=t (None = clean; memoized)."""
        nonlocal runs
        if t not in margin_memo:
            runs += 1
            margin_memo[t] = _engine_probe(circuit, config, constraints, t)
        return margin_memo[t]

    def ok(t: int) -> bool:
        return t >= 1 and probe(t) is None

    if not static.period_limited:
        # Static-clean at every period.  The slack families are sound, but
        # the engine also runs checks with no static twin (gated-clock
        # glitches among them) — confirm before claiming unlimited, and
        # hand the engine authority when it disagrees.
        if ok(circuit.timebase.period_ps) and ok(1):
            return FmaxResult(
                period_limited=False,
                period_ps=None,
                method="anchored",
                static_period_ps=None,
                engine_runs=runs,
                parametric_passes=static.passes,
                static_evals=static.static_evals,
            )
        fb = bisect_fmax(circuit, config, constraints)
        binding, witness, terminal = _engine_binding(
            circuit, config, constraints, fb.period_ps
        )
        return FmaxResult(
            period_limited=fb.period_limited,
            period_ps=fb.period_ps,
            method="anchored-fallback",
            static_period_ps=None,
            binding=binding,
            witness=witness,
            witness_terminal=terminal,
            engine_runs=runs + fb.engine_runs,
            parametric_passes=static.passes,
            static_evals=static.static_evals,
        )
    if static.period_ps is None:
        # The static pass never goes clean at any period (structural
        # pessimism, e.g. assertion windows permanently inside a guard).
        # Fall back to the engine oracle so the answer stays exact.
        fb = bisect_fmax(circuit, config, constraints)
        binding, witness, terminal = _engine_binding(
            circuit, config, constraints, fb.period_ps
        )
        return FmaxResult(
            period_limited=fb.period_limited,
            period_ps=fb.period_ps,
            method="anchored-fallback",
            static_period_ps=None,
            binding=binding,
            slope=static.slope,
            witness=witness,
            witness_terminal=terminal,
            engine_runs=fb.engine_runs,
            parametric_passes=static.passes,
            static_evals=static.static_evals,
        )

    t_s = static.period_ps
    # Soundness says the engine is clean at T_s; confirm, and walk up in
    # the (never-observed) case a rounding edge bites.
    t_clean = t_s
    guard = 0
    while not ok(t_clean) and guard < 64:
        t_clean += 1
        guard += 1
    if not ok(t_clean):
        raise AssertionError(
            f"engine violates at static-clean period {t_s}: the static "
            "pass lost its soundness contract — run scald-tv --crosscheck"
        )

    # Descend below T_s to the engine boundary.  The bracket [lo_v, hi_c]
    # shrinks by Newton jumps where possible: a violating probe reports how
    # much the worst check missed by, and the binding check's slack slope
    # converts that miss into a period distance — engine slack tracks the
    # same clock-edge spacing as the static form, so one jump typically
    # lands on the boundary even when constant pessimism put T_s far above
    # it.  Every jump is clamped strictly inside the bracket, so the loop
    # can never do worse than bisection.
    if not ok(t_clean - 1):
        boundary = t_clean
    else:
        slope = static.slope if static.slope and static.slope > 0 else None
        lo_v, hi_c = 0, t_clean - 1  # lo_v=0: "below 1" counts as violating
        while hi_c - lo_v > 1:
            mid = None
            if slope is not None and lo_v > 0:
                miss = margin_memo.get(lo_v)
                if miss:
                    mid = lo_v + math.ceil(Fraction(miss) / slope)
            if mid is None or not lo_v < mid < hi_c:
                mid = (lo_v + hi_c) // 2
            mid = max(lo_v + 1, min(mid, hi_c - 1))
            if ok(mid):
                hi_c = mid
            else:
                lo_v = mid
        boundary = hi_c
    boundary, _ = _polish_boundary(ok, boundary)
    if boundary <= 1 and ok(1):
        # Clean down to the smallest expressible period: not limited.
        return FmaxResult(
            period_limited=False,
            period_ps=None,
            method="anchored",
            static_period_ps=t_s,
            engine_runs=runs,
            parametric_passes=static.passes,
            static_evals=static.static_evals,
        )

    witness, terminal = ([], "")
    if static.binding is not None:
        witness, terminal = trace_witness(
            circuit, config, constraints, boundary, static.binding
        )
    return FmaxResult(
        period_limited=True,
        period_ps=boundary,
        method="anchored",
        static_period_ps=t_s,
        binding=static.binding,
        slope=static.slope,
        witness=witness,
        witness_terminal=terminal,
        engine_runs=runs,
        parametric_passes=static.passes,
        static_evals=static.static_evals,
    )


def bisect_fmax(
    circuit: Circuit,
    config: VerifyConfig | None = None,
    constraints=None,
    max_doublings: int = 16,
) -> FmaxResult:
    """Independent Fmax oracle: pure bisection over full engine runs.

    No static information is used.  Starts at the design period; searches
    up (doubling) when the design violates as-is, down (halving) when it is
    clean, then bisects the bracket to the exact boundary — the same
    fixed-point condition :func:`solve_fmax` anchors to, so the two must
    agree to within the rounding wobble the polish step absorbs.
    """
    config = config or VerifyConfig()
    runs = 0
    ok_memo: dict[int, bool] = {}

    def ok(t: int) -> bool:
        nonlocal runs
        if t < 1:
            return False
        hit = ok_memo.get(t)
        if hit is None:
            runs += 1
            hit = ok_memo[t] = _engine_ok(circuit, config, constraints, t)
        return hit

    t0 = circuit.timebase.period_ps
    if ok(t0):
        hi_c = t0
    else:
        hi_c = t0
        for _ in range(max_doublings):
            hi_c *= 2
            if ok(hi_c):
                break
        else:
            return FmaxResult(
                period_limited=True,
                period_ps=None,
                method="bisect",
                engine_runs=runs,
            )

    # Halve down to find a violating floor (or discover T=1 is clean).
    lo_v = None
    t = hi_c
    while t > 1:
        t //= 2
        if t < 1:
            t = 1
        if ok(t):
            hi_c = t
        else:
            lo_v = t
            break
    if lo_v is None:
        # Clean all the way down to T=1: the design is not period-limited.
        return FmaxResult(
            period_limited=False,
            period_ps=None,
            method="bisect",
            engine_runs=runs,
        )

    while hi_c - lo_v > 1:
        mid = (lo_v + hi_c) // 2
        if ok(mid):
            hi_c = mid
        else:
            lo_v = mid
    boundary, _ = _polish_boundary(ok, hi_c)
    return FmaxResult(
        period_limited=True,
        period_ps=boundary,
        method="bisect",
        engine_runs=runs,
    )


# ---------------------------------------------------------------------------
# critical-path witness
# ---------------------------------------------------------------------------


def _overlap_measure(a: IntervalSet, b: IntervalSet, period: int) -> int:
    """Total circular overlap between two concrete interval sets."""
    if a.is_empty or b.is_empty:
        return 0
    if a.is_full:
        return b.measure() if not b.is_full else period
    if b.is_full:
        return a.measure()
    total = 0
    for g0, g1 in a.spans:
        for c0, c1 in b.spans:
            for d in (-period, 0, period):
                lo = max(g0, c0 + d)
                hi = min(g1, c1 + d)
                if hi > lo:
                    total += hi - lo
    return total


def trace_witness(
    circuit: Circuit,
    config: VerifyConfig | None,
    constraints,
    period_ps: int,
    binding: SlackRecord,
    max_depth: int = 64,
) -> tuple[list[WitnessHop], str]:
    """Greedy backward trace of the binding check's critical path.

    From the binding record's data net, walk driver-to-input choosing at
    each component the timing input whose (delay-shifted) change windows
    overlap the output's change windows the most — the path the window
    dataflow itself propagated.  Stops at a fixed source (classified), a
    feedback cut, or the depth cap.  Returns ``(hops, terminal)`` with
    terminal one of ``clock-assertion``, ``stable-assertion``,
    ``input-delay``, ``supply``, ``unconstrained``, ``feedback-cut``,
    ``cycle`` or ``depth-limit``.
    """
    config = config or VerifyConfig()
    with _at_period(circuit, period_ps):
        analysis = compute_windows(circuit, config, constraints)
        period = analysis.period

        drivers: dict[Net, tuple[Component, list[Connection]]] = {}
        for comp in circuit.iter_components():
            if comp.prim.is_checker:
                continue
            inputs = [conn for _pin, conn in comp.input_pins()]
            for _pin, conn in comp.output_pins():
                drivers[circuit.find(conn.net)] = (comp, inputs)

        feedback_nets = {cut.net for cut in analysis.feedback}

        start = circuit.nets.get(binding.signal)
        if start is None:
            return [], "unconstrained"
        rep = circuit.find(start)
        hops: list[WitnessHop] = []
        visited: set[int] = set()
        terminal = "depth-limit"
        for _ in range(max_depth):
            if id(rep) in visited:
                terminal = "cycle"
                break
            visited.add(id(rep))
            if rep.name in feedback_nets:
                terminal = "feedback-cut"
                break
            entry = drivers.get(rep)
            if entry is None:
                # A source: classify how (whether) it is constrained.
                if rep.base_name.upper() in _SUPPLY:
                    terminal = "supply"
                elif rep.assertion is not None:
                    terminal = (
                        "clock-assertion"
                        if rep.assertion.kind.is_clock
                        else "stable-assertion"
                    )
                elif constraints is not None and (
                    constraints.input_delay_for(rep.name) is not None
                ):
                    terminal = "input-delay"
                else:
                    terminal = "unconstrained"
                break
            comp, inputs = entry
            if rep.assertion is not None and rep.assertion.kind.is_clock:
                terminal = "clock-assertion"  # pinned even against a driver
                break
            hops.append(
                WitnessHop(
                    component=comp.name,
                    prim=comp.prim.name,
                    net=rep.name,
                    delay=comp.delay_ps(),
                    origin=comp.origin,
                )
            )
            out_r, out_f = analysis.of(rep)
            out_changes = out_r.union(out_f)
            dmin, dmax = comp.delay_ps()
            candidates = _used_input_conns(comp, inputs, None)
            best = None
            best_score = -1
            for conn in candidates:
                in_r, in_f = analysis.prepared(conn)
                shifted = in_r.union(in_f).shift(dmin, dmax + 1)
                score = _overlap_measure(shifted, out_changes, period)
                if score > best_score:
                    best_score = score
                    best = conn
            if best is None:
                terminal = "unconstrained"
                break
            rep = circuit.find(best.net)
        return hops, terminal
