"""Tokenizer and parser for the SDC subset (``.sdc`` constraint files).

The grammar is a small, line-oriented slice of Tcl, which is all SDC is:
one command per line (``\\`` continues a line, ``;`` separates commands,
``#`` starts a comment), words separated by whitespace, ``"..."`` quoting
for names with spaces (SCALD signal names have them), ``{...}`` for word
lists, and ``[get_ports ...]`` / ``[get_clocks ...]`` style selectors.

Parsing is total: malformed input produces :class:`Finding` records under
the ``sdc.syntax-error`` / ``sdc.unknown-command`` pseudo-rules (the same
diagnostics discipline as the lint pipeline's ``syntax-error``) and the
parser keeps going, so one bad line never hides the rest of the file.

Values are nanoseconds on the SDC surface (the API-boundary unit) and are
converted to integer picoseconds here — nothing downstream ever sees a
float.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Selector commands allowed inside ``[...]``; all resolve to name lists.
_SELECTOR_KINDS = frozenset(
    {"get_ports", "get_pins", "get_nets", "get_clocks", "get_cells"}
)

#: Flags that consume the following token as their value.
_VALUE_FLAGS = frozenset(
    {
        "-period",
        "-name",
        "-waveform",
        "-source",
        "-divide_by",
        "-multiply_by",
        "-clock",
        "-from",
        "-to",
        "-through",
    }
)

#: Flags that stand alone.
_BARE_FLAGS = frozenset(
    {"-setup", "-hold", "-min", "-max", "-rise", "-fall", "-add", "-add_delay"}
)

#: The command vocabulary this subset understands.
KNOWN_COMMANDS = frozenset(
    {
        "create_clock",
        "create_generated_clock",
        "set_input_delay",
        "set_output_delay",
        "set_multicycle_path",
        "set_false_path",
        "set_clock_uncertainty",
        "set_clock_latency",
        "set_recovery",
        "set_removal",
        "set_max_time_borrow",
    }
)


class SdcError(ValueError):
    """Raised by helpers when a single token cannot be interpreted."""


@dataclass(frozen=True)
class Selector:
    """A ``[get_ports {A B}]`` style object selector: a kind plus names."""

    kind: str
    names: tuple[str, ...]


@dataclass(frozen=True)
class SdcCommand:
    """One parsed constraint command with source provenance.

    ``flags`` maps ``-flag`` to its value (``True`` for bare flags; a
    string, number, tuple or :class:`Selector` otherwise); ``args`` holds
    the positional operands in order.
    """

    name: str
    line: int
    file: str = ""
    flags: dict = field(default_factory=dict)
    args: tuple = ()

    def flag_names(self, flag: str) -> tuple[str, ...]:
        """The name list carried by ``flag`` (selector, list or word)."""
        return _as_names(self.flags.get(flag))

    def target_names(self) -> tuple[str, ...]:
        """Every positional operand flattened into a name list."""
        out: list[str] = []
        for arg in self.args:
            out.extend(_as_names(arg))
        return tuple(out)


@dataclass(frozen=True)
class Finding:
    """One front-end finding, in the shape of a lint diagnostic.

    ``rule`` is the ``sdc.*`` rule id; ``severity`` is the default the
    rule registry also declares (carried here so non-lint consumers such
    as ``scald-tv --sdc`` can render findings without the registry).
    """

    rule: str
    severity: str
    message: str
    file: str = ""
    line: int = 0
    net: str | None = None
    component: str | None = None

    def __str__(self) -> str:
        loc = f"{self.file}:{self.line}: " if self.file and self.line else ""
        subject = self.component or self.net
        return (
            loc
            + f"{self.severity}[{self.rule}]: {self.message}"
            + (f" [{subject}]" if subject else "")
        )


def _as_names(value) -> tuple[str, ...]:
    if value is None or value is True:
        return ()
    if isinstance(value, Selector):
        return value.names
    if isinstance(value, tuple):
        out: list[str] = []
        for item in value:
            out.extend(_as_names(item))
        return tuple(out)
    return (str(value),)


def ns_to_ps(text: str) -> int:
    """Convert an SDC nanosecond literal to integer picoseconds."""
    try:
        value = float(text)
    except ValueError as exc:
        raise SdcError(f"expected a number, got {text!r}") from exc
    return int(round(value * 1000))


# ---------------------------------------------------------------------------
# tokenizing
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(
        "[^"]*"        |   # quoted word (may contain spaces)
        [\[\]{}]       |   # structural single characters
        [^\s\[\]{}"]+      # bare word
    )
    """,
    re.VERBOSE,
)


def _tokenize(line: str) -> list[str]:
    """Split one logical line into tokens; ``#`` comments already removed."""
    out: list[str] = []
    pos = 0
    while pos < len(line):
        m = _TOKEN_RE.match(line, pos)
        if m is None:
            rest = line[pos:].strip()
            if rest:
                raise SdcError(f"cannot tokenize {rest!r}")
            break
        out.append(m.group(1))
        pos = m.end()
    return out


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment, respecting double quotes."""
    in_quote = False
    for i, ch in enumerate(line):
        if ch == '"':
            in_quote = not in_quote
        elif ch == "#" and not in_quote:
            return line[:i]
    return line


def _logical_lines(source: str) -> list[tuple[int, str]]:
    """``(first line number, joined text)`` per logical line.

    A trailing backslash continues the line; ``;`` splits one physical
    line into several commands sharing the line number.
    """
    out: list[tuple[int, str]] = []
    pending = ""
    pending_line = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw)
        if pending:
            text = pending + " " + text
            lineno0 = pending_line
            pending = ""
        else:
            lineno0 = lineno
        stripped = text.rstrip()
        if stripped.endswith("\\"):
            pending = stripped[:-1]
            pending_line = lineno0
            continue
        for piece in stripped.split(";"):
            if piece.strip():
                out.append((lineno0, piece.strip()))
    if pending.strip():
        out.append((pending_line, pending.strip()))
    return out


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------


def _unquote(token: str) -> str:
    if len(token) >= 2 and token.startswith('"') and token.endswith('"'):
        return token[1:-1]
    return token


class _TokenStream:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise SdcError("unexpected end of command")
        self.pos += 1
        return tok


def _parse_operand(ts: _TokenStream) -> object:
    """One operand: a selector, a braced list, or a (possibly quoted) word."""
    tok = ts.next()
    if tok == "[":
        kind = ts.next()
        if kind not in _SELECTOR_KINDS:
            raise SdcError(f"unknown selector {kind!r} (expected get_ports/...)")
        names: list[str] = []
        while True:
            inner = ts.peek()
            if inner is None:
                raise SdcError("unterminated [ ... ] selector")
            if inner == "]":
                ts.next()
                break
            names.extend(_as_names(_parse_operand(ts)))
        return Selector(kind=kind, names=tuple(names))
    if tok == "{":
        items: list[str] = []
        while True:
            inner = ts.peek()
            if inner is None:
                raise SdcError("unterminated { ... } list")
            if inner == "}":
                ts.next()
                break
            items.append(_unquote(ts.next()))
        return tuple(items)
    if tok in ("]", "}"):
        raise SdcError(f"unbalanced {tok!r}")
    return _unquote(tok)


def _parse_command(lineno: int, text: str, filename: str) -> SdcCommand:
    ts = _TokenStream(_tokenize(text))
    name = ts.next()
    flags: dict = {}
    args: list[object] = []
    while ts.peek() is not None:
        tok = ts.peek()
        if tok is not None and tok.startswith("-") and not _is_number(tok):
            ts.next()
            if tok in _VALUE_FLAGS:
                flags[tok] = _parse_operand(ts)
            elif tok in _BARE_FLAGS:
                flags[tok] = True
            else:
                raise SdcError(f"unknown option {tok!r}")
        else:
            args.append(_parse_operand(ts))
    return SdcCommand(
        name=name, line=lineno, file=filename, flags=flags, args=tuple(args)
    )


def _is_number(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True


def parse_sdc(
    source: str, filename: str = ""
) -> tuple[list[SdcCommand], list[Finding]]:
    """Parse an ``.sdc`` source string into commands plus findings.

    Never raises on malformed input: bad lines produce
    ``sdc.syntax-error`` findings, commands outside :data:`KNOWN_COMMANDS`
    produce ``sdc.unknown-command`` findings, and parsing continues.
    """
    commands: list[SdcCommand] = []
    findings: list[Finding] = []
    for lineno, text in _logical_lines(source):
        try:
            cmd = _parse_command(lineno, text, filename)
        except SdcError as exc:
            findings.append(
                Finding(
                    rule="sdc.syntax-error",
                    severity="error",
                    message=str(exc),
                    file=filename,
                    line=lineno,
                )
            )
            continue
        if cmd.name not in KNOWN_COMMANDS:
            findings.append(
                Finding(
                    rule="sdc.unknown-command",
                    severity="warning",
                    message=f"unknown constraint command {cmd.name!r} (ignored)",
                    file=filename,
                    line=lineno,
                )
            )
            continue
        commands.append(cmd)
    return commands, findings
