"""SDC-style constraint front-end (the modern STA vocabulary).

The thesis verifier answers one question — do the setup/hold assertions
pass at a fixed period — with every constraint carried *inside* the design
(checker components, signal-name assertions).  Modern timing flows carry
constraints in a separate Synopsys Design Constraints (``.sdc``) file:
clocks, I/O delays, multicycle and false paths, clock uncertainty and
latency, recovery/removal margins, latch time borrowing.

This package is the dependency-free bridge between the two worlds:

* :mod:`repro.constraints.sdc` — a tokenizer/parser for the SDC subset,
  producing typed commands with ``file:line`` provenance and diagnostics
  in the shape of the lint pipeline.
* :mod:`repro.constraints.resolve` — name resolution against an expanded
  :class:`~repro.netlist.Circuit`, producing a typed, picklable
  :class:`ConstraintSet` consumed identically by the event-driven engine
  (``core/checks.py``) and the static analysis (``sta/slack.py``) — the
  same-object discipline that lets ``scald-tv --crosscheck --sdc`` police
  one against the other per check.

All times are integer picoseconds internally; the ``.sdc`` surface speaks
nanoseconds (the API-boundary unit) and is converted on parse.
"""

from __future__ import annotations

from .resolve import (
    CheckerMods,
    ConstraintSet,
    Finding,
    InputDelay,
    OutputDelay,
    RsCheck,
    input_delay_spans,
    resolve,
)
from .sdc import SdcCommand, SdcError, parse_sdc

__all__ = [
    "CheckerMods",
    "ConstraintSet",
    "Finding",
    "InputDelay",
    "OutputDelay",
    "RsCheck",
    "SdcCommand",
    "SdcError",
    "input_delay_spans",
    "load_constraints",
    "parse_sdc",
    "resolve",
]


def load_constraints(path: str, circuit) -> ConstraintSet:
    """Parse ``path`` and resolve it against ``circuit`` in one step.

    Raises :class:`OSError` when the file cannot be read; every other
    problem (syntax, unknown commands, unresolvable names) becomes a
    finding on the returned :class:`ConstraintSet` rather than an
    exception, mirroring how the lint runner treats parse failures.
    """
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    commands, findings = parse_sdc(source, filename=path)
    return resolve(commands, circuit, filename=path, parse_findings=findings)
