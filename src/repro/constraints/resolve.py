"""Resolve parsed SDC commands against an expanded circuit.

The output is a :class:`ConstraintSet`: plain, picklable data keyed by
component and net *names* (never object identity), precomputed so the
event-driven engine and the static analysis consume the very same numbers.
That single-source-of-truth discipline is what keeps the two sides of the
``scald-tv --crosscheck --sdc`` contract honest — a constraint can tighten
or waive a check, but it always does so identically in both analyses.

Per-check semantics (also tabulated in DESIGN.md):

* ``set_multicycle_path N -setup`` relaxes the effective setup of every
  matched checker by ``(N-1)`` periods.  On the verifier's folded circular
  axis all cycles are one period, so any ``N >= 2`` waives the setup side
  entirely (the data net is sampled only every N cycles by logic the
  verifier cannot see); the hold side still runs.  ``-hold M`` relaxes the
  hold side by ``M`` periods the same way.
* ``set_clock_uncertainty U`` widens both guard sides of matched checkers
  by ``U`` — added pessimism, always sound.
* ``set_clock_latency L`` shifts the matched checkers' view of their clock
  edges by ``L``.  It is applied check-locally in both analyses and never
  perturbs the circuit fixed point (a documented limitation).
* ``set_false_path`` waives matched checks in both analyses.  Stored
  arrival windows are never narrowed — pruning happens at the checker
  boundary, preserving the enclosure invariant.
* ``set_input_delay -clock C D`` declares that an otherwise-unasserted
  input port changes within ``[edge+min, edge+max]`` of C's rising edge;
  both analyses synthesize the same change windows from it.
* ``set_output_delay -clock C D`` adds a virtual boundary check: the net
  must be stable ``D`` before (``-max``, setup-like) and ``-min D`` after
  (hold-like) C's rising edge.
* ``set_recovery R -to X`` / ``set_removal M -to X`` guard the SET/RESET
  overlays of matched ``REG_RS``/``LATCH_RS`` elements: no control change
  inside ``[edge-R, edge]`` / ``[edge, edge+M]``.
* ``set_max_time_borrow B`` turns the latch time-borrowing report (always
  computed in ``scald-sta``) into a pass/fail check: data must settle
  within ``B`` of the latch opening.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase

from .sdc import Finding, SdcCommand, SdcError, ns_to_ps

_CHECKER_PRIMS = frozenset({"SETUP_HOLD_CHK", "SETUP_RISE_HOLD_FALL_CHK"})
_RS_PRIMS = frozenset({"REG_RS", "LATCH_RS"})
_LATCH_PRIMS = frozenset({"LATCH", "LATCH_RS"})


@dataclass(frozen=True)
class CheckerMods:
    """Constraint adjustments applied to one checker component.

    Consumed by both ``core/checks.py`` and ``sta/slack.py`` through
    :meth:`effective`, so the effective-guard arithmetic exists in exactly
    one place.
    """

    setup_cycles: int = 1          #: multicycle setup factor (N >= 1)
    hold_cycles: int = 0           #: multicycle hold factor (M >= 0)
    uncertainty_ps: int = 0        #: widens both guard sides
    clock_shift_ps: int = 0        #: clock latency seen by this checker
    waived: bool = False           #: false path: skip the check entirely

    def effective(
        self, setup_ps: int, hold_ps: int, period: int
    ) -> tuple[int, int]:
        """The (setup, hold) guard extents after constraints.

        A non-positive effective setup means the setup side is waived
        (fully relaxed by multicycle); an effective hold that pulls the
        guard end at or before the edge-window start waives the hold side.

        ``period`` may be an affine form ``a + b*T`` rather than an int:
        the parametric Fmax pass (``repro.sta.parametric``) evaluates this
        same arithmetic symbolically in the clock period, so multicycle
        relaxation correctly scales with ``T`` when solving
        min-slack(T) = 0.  Keep the body to ``+``/``-``/``*`` on
        ``period`` — int-only operations would break that duck typing.
        """
        s = setup_ps - (self.setup_cycles - 1) * period + self.uncertainty_ps
        h = hold_ps - self.hold_cycles * period + self.uncertainty_ps
        return s, h

    @property
    def is_default(self) -> bool:
        return self == CheckerMods()


@dataclass(frozen=True)
class InputDelay:
    """``set_input_delay`` resolved to one input-port net."""

    net: str                       #: representative net name
    clock: str                     #: clock net name (carries the assertion)
    min_ps: int = 0
    max_ps: int = 0


@dataclass(frozen=True)
class OutputDelay:
    """``set_output_delay`` resolved to one output net."""

    net: str
    clock: str
    setup_ps: int = 0              #: ``-max``: stable this long before the edge
    hold_ps: int = 0               #: ``-min``: stable this long after the edge


@dataclass(frozen=True)
class RsCheck:
    """Recovery/removal margins for one REG_RS / LATCH_RS component."""

    component: str
    recovery_ps: int | None = None
    removal_ps: int | None = None


@dataclass
class ConstraintSet:
    """Every constraint of one ``.sdc`` file, resolved against a circuit.

    Plain data keyed by names — picklable, so ``repro.parallel`` can ship
    it to worker processes unchanged.
    """

    path: str = ""
    period_ps: int = 0
    clock_nets: dict[str, str] = field(default_factory=dict)  #: name -> net
    generated_clocks: list[tuple[str, str, int]] = field(default_factory=list)
    checker_mods: dict[str, CheckerMods] = field(default_factory=dict)
    input_delays: dict[str, InputDelay] = field(default_factory=dict)
    output_delays: list[OutputDelay] = field(default_factory=list)
    rs_checks: dict[str, RsCheck] = field(default_factory=dict)
    max_borrow: dict[str, int] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def mods_for(self, component_name: str) -> CheckerMods | None:
        """The non-default mods of a checker, or None when unconstrained.

        Falls back to the lane-stripped base name so a constraint set
        resolved against the original vector circuit applies unchanged to
        its bit-blasted twin (per-bit components are named ``"name [i]"``).
        """
        return _lane_lookup(self.checker_mods, component_name)

    def rs_for(self, component_name: str) -> "RsCheck | None":
        """Recovery/removal spec for a component, lane-suffix tolerant."""
        return _lane_lookup(self.rs_checks, component_name)

    def borrow_for(self, component_name: str) -> int | None:
        """Max-time-borrow cap for a latch, lane-suffix tolerant."""
        return _lane_lookup(self.max_borrow, component_name)

    def input_delay_for(self, net_name: str) -> "InputDelay | None":
        """Input-delay spec for a net, lane-suffix tolerant."""
        return _lane_lookup(self.input_delays, net_name)


_LANE_SUFFIX_RE = re.compile(r"\A(?P<base>.+) \[\d+\]\Z")


def strip_lane_suffix(name: str) -> str:
    """``"name [i]"`` -> ``"name"``; other names pass through unchanged."""
    m = _LANE_SUFFIX_RE.match(name)
    return m.group("base") if m is not None else name


def _lane_lookup(table: dict, name: str):
    """Exact-name lookup with a bit-blast lane-suffix fallback."""
    hit = table.get(name)
    if hit is not None:
        return hit
    base = strip_lane_suffix(name)
    if base != name:
        return table.get(base)
    return None


def input_delay_spans(
    spec: InputDelay, circuit, config
) -> list[tuple[int, int]]:
    """The change windows an input-delay constraint declares, in ps.

    Shared by the engine (which paints CHANGE over these spans) and the
    static analysis (which uses them as the net's rise/fall windows) so
    the two sides see byte-identical intervals.
    """
    net = circuit.nets.get(spec.clock)
    if net is None:
        return []
    rep = circuit.find(net)
    assertion = rep.assertion
    if assertion is None or not assertion.kind.is_clock:
        return []
    skew = config.clock_skew_ns(assertion.kind.name == "PRECISION_CLOCK")
    wf = assertion.waveform(circuit.timebase, skew).materialized()
    return [
        (r0 + spec.min_ps, r1 + spec.max_ps) for r0, r1 in wf.rising_windows()
    ]


# ---------------------------------------------------------------------------
# the resolver
# ---------------------------------------------------------------------------


class _Resolver:
    def __init__(self, circuit, filename: str) -> None:
        self.circuit = circuit
        self.out = ConstraintSet(path=filename, period_ps=circuit.period_ps)
        # Name index: every net is reachable by its full name, its
        # representative's name, and its assertion-free base name.
        self.net_names: dict[str, str] = {}
        for name, net in circuit.nets.items():
            rep = circuit.find(net)
            for alias in (name, net.base_name, rep.name, rep.base_name):
                self.net_names.setdefault(alias.upper(), rep.name)
        self.driven: set[str] = set()
        self.checkers: list = []
        self.rs_comps: list = []
        self.latches: list = []
        for comp in circuit.iter_components():
            prim = comp.prim.name
            if prim in _CHECKER_PRIMS:
                self.checkers.append(comp)
            if prim in _RS_PRIMS:
                self.rs_comps.append(comp)
            if prim in _LATCH_PRIMS:
                self.latches.append(comp)
            for _pin, conn in comp.output_pins():
                self.driven.add(circuit.find(conn.net).name)

    # -- helpers --------------------------------------------------------

    def finding(
        self,
        rule: str,
        severity: str,
        message: str,
        cmd: SdcCommand,
        *,
        net: str | None = None,
        component: str | None = None,
    ) -> None:
        self.out.findings.append(
            Finding(
                rule=rule,
                severity=severity,
                message=message,
                file=cmd.file,
                line=cmd.line,
                net=net,
                component=component,
            )
        )

    def match_nets(self, pattern: str) -> list[str]:
        """Representative net names matching a (glob) pattern."""
        pat = pattern.upper()
        out: list[str] = []
        seen: set[str] = set()
        if pat in self.net_names:
            return [self.net_names[pat]]
        for alias, rep_name in self.net_names.items():
            if fnmatchcase(alias, pat) and rep_name not in seen:
                seen.add(rep_name)
                out.append(rep_name)
        return sorted(out)

    def resolve_clock_net(self, name: str, cmd: SdcCommand) -> str | None:
        """A clock reference: a declared clock name or a clock net."""
        declared = self.out.clock_nets.get(name) or self.out.clock_nets.get(
            name.upper()
        )
        if declared is not None:
            return declared
        matches = self.match_nets(name)
        if not matches:
            self.finding(
                "sdc.unresolved-pin",
                "error",
                f"clock {name!r} matches no declared clock or net",
                cmd,
                net=name,
            )
            return None
        return matches[0]

    def match_checkers(self, cmd: SdcCommand) -> list:
        """Checkers selected by a path command's -from/-to/-through flags.

        ``-to``/``-through`` match the checker's component name or its
        guarded data net; ``-from`` matches the data net or the capture
        clock net.  A command with no path flags selects every checker.
        Patterns that select nothing are ``sdc.unresolved-pin`` errors.
        """
        froms = cmd.flag_names("-from")
        tos = cmd.flag_names("-to")
        throughs = cmd.flag_names("-through")
        if not (froms or tos or throughs):
            return list(self.checkers)

        def names_of(comp) -> dict[str, set[str]]:
            i_conn, ck_conn = comp.pins["I"], comp.pins["CK"]
            data = {
                i_conn.net.name.upper(),
                i_conn.net.base_name.upper(),
                self.circuit.find(i_conn.net).name.upper(),
            }
            clock = {
                ck_conn.net.name.upper(),
                ck_conn.net.base_name.upper(),
                self.circuit.find(ck_conn.net).name.upper(),
            }
            return {"comp": {comp.name.upper()}, "data": data, "clock": clock}

        selected = []
        matched_patterns: set[str] = set()
        for comp in self.checkers:
            names = names_of(comp)

            def hits(patterns: tuple[str, ...], keys: tuple[str, ...]) -> bool:
                if not patterns:
                    return True
                ok = False
                for pat in patterns:
                    p = pat.upper()
                    if any(
                        fnmatchcase(n, p) for k in keys for n in names[k]
                    ):
                        matched_patterns.add(pat)
                        ok = True
                return ok

            if (
                hits(tos, ("comp", "data"))
                and hits(throughs, ("data",))
                and hits(froms, ("data", "clock"))
            ):
                selected.append(comp)
        for pat in (*froms, *tos, *throughs):
            if pat not in matched_patterns:
                self.finding(
                    "sdc.unresolved-pin",
                    "error",
                    f"path pattern {pat!r} matches no checker, net or clock",
                    cmd,
                    net=pat,
                )
        return selected

    def update_mods(self, comp_name: str, **changes) -> None:
        mods = self.out.checker_mods.get(comp_name, CheckerMods())
        self.out.checker_mods[comp_name] = replace(mods, **changes)

    def value_ps(self, cmd: SdcCommand, *, flag: str | None = None) -> int | None:
        """The command's numeric operand (first positional, in ns)."""
        source = None
        if flag is not None:
            source = cmd.flags.get(flag)
        elif cmd.args:
            source = cmd.args[0]
        if source is None:
            self.finding(
                "sdc.syntax-error",
                "error",
                f"{cmd.name} is missing its value",
                cmd,
            )
            return None
        names = (source,) if isinstance(source, str) else tuple(source)
        try:
            return ns_to_ps(str(names[0]))
        except (SdcError, IndexError):
            self.finding(
                "sdc.syntax-error",
                "error",
                f"{cmd.name}: expected a number, got {source!r}",
                cmd,
            )
            return None

    # -- per-command handlers -------------------------------------------

    def handle(self, cmd: SdcCommand) -> None:
        getattr(self, "_cmd_" + cmd.name)(cmd)

    def _cmd_create_clock(self, cmd: SdcCommand) -> None:
        period = self.value_ps(cmd, flag="-period")
        if period is None:
            return
        targets = [n for arg in cmd.args for n in ((arg,) if isinstance(arg, str) else arg)]
        if not targets:
            self.finding(
                "sdc.unresolved-pin", "error",
                "create_clock names no target port", cmd,
            )
            return
        name = cmd.flags.get("-name")
        for target in targets:
            matches = self.match_nets(str(target))
            if not matches:
                self.finding(
                    "sdc.unresolved-pin",
                    "error",
                    f"create_clock target {target!r} matches no net",
                    cmd,
                    net=str(target),
                )
                continue
            for rep_name in matches:
                net = self.circuit.nets.get(rep_name)
                assertion = net.assertion if net is not None else None
                if assertion is None or not assertion.kind.is_clock:
                    self.finding(
                        "sdc.not-a-clock",
                        "warning",
                        f"create_clock target {rep_name!r} carries no clock "
                        "assertion; the engine's clocks come from signal-name "
                        "assertions",
                        cmd,
                        net=rep_name,
                    )
                if period != self.out.period_ps:
                    self.finding(
                        "sdc.period-mismatch",
                        "warning",
                        f"create_clock period {period} ps differs from the "
                        f"design period {self.out.period_ps} ps (the verifier "
                        "folds all clocks onto one period)",
                        cmd,
                        net=rep_name,
                    )
                key = str(name) if isinstance(name, str) else rep_name
                self.out.clock_nets[key] = rep_name
                self.out.clock_nets[key.upper()] = rep_name
                self.out.clock_nets[rep_name] = rep_name

    def _cmd_create_generated_clock(self, cmd: SdcCommand) -> None:
        sources = cmd.flag_names("-source")
        source_rep = None
        if sources:
            matches = self.match_nets(sources[0])
            if matches:
                source_rep = matches[0]
            else:
                self.finding(
                    "sdc.unresolved-pin",
                    "error",
                    f"generated-clock source {sources[0]!r} matches no net",
                    cmd,
                    net=sources[0],
                )
        factor = 1
        for flag, sign in (("-divide_by", 1), ("-multiply_by", -1)):
            raw = cmd.flags.get(flag)
            if raw is not None:
                try:
                    factor = sign * int(str(raw if isinstance(raw, str) else raw[0]))
                except (TypeError, ValueError):
                    self.finding(
                        "sdc.syntax-error", "error",
                        f"bad {flag} value {raw!r}", cmd,
                    )
        for target in cmd.target_names():
            matches = self.match_nets(target)
            if not matches:
                self.finding(
                    "sdc.unresolved-pin",
                    "error",
                    f"generated-clock target {target!r} matches no net",
                    cmd,
                    net=target,
                )
                continue
            for rep_name in matches:
                name = cmd.flags.get("-name")
                key = str(name) if isinstance(name, str) else rep_name
                self.out.generated_clocks.append(
                    (key, source_rep or "", factor)
                )
                # A generated clock counts as a constrained root.
                self.out.clock_nets.setdefault(rep_name, rep_name)

    def _io_delay(self, cmd: SdcCommand, output: bool) -> None:
        clock_names = cmd.flag_names("-clock")
        if not clock_names:
            self.finding(
                "sdc.syntax-error", "error",
                f"{cmd.name} requires -clock", cmd,
            )
            return
        clock_rep = self.resolve_clock_net(clock_names[0], cmd)
        if clock_rep is None:
            return
        clock_net = self.circuit.nets.get(clock_rep)
        if clock_net is None or clock_net.assertion is None or (
            not clock_net.assertion.kind.is_clock
        ):
            self.finding(
                "sdc.not-a-clock",
                "warning",
                f"{cmd.name} clock {clock_rep!r} carries no clock assertion; "
                "the constraint has no edges to anchor to and is ignored",
                cmd,
                net=clock_rep,
            )
            return
        value = self.value_ps(cmd)
        if value is None:
            return
        is_min = bool(cmd.flags.get("-min"))
        is_max = bool(cmd.flags.get("-max")) or not is_min
        targets = cmd.target_names()[1:]  # first positional is the value
        if not targets:
            self.finding(
                "sdc.unresolved-pin", "error",
                f"{cmd.name} names no target port", cmd,
            )
            return
        for target in targets:
            matches = self.match_nets(target)
            if not matches:
                self.finding(
                    "sdc.unresolved-pin",
                    "error",
                    f"{cmd.name} target {target!r} matches no net",
                    cmd,
                    net=target,
                )
                continue
            for rep_name in matches:
                if output:
                    self._merge_output_delay(
                        rep_name, clock_rep, value, is_min, is_max
                    )
                else:
                    self._merge_input_delay(
                        cmd, rep_name, clock_rep, value, is_min, is_max
                    )

    def _merge_input_delay(
        self, cmd, rep_name, clock_rep, value, is_min, is_max
    ) -> None:
        net = self.circuit.nets.get(rep_name)
        if rep_name in self.driven or (
            net is not None and net.assertion is not None
        ):
            self.finding(
                "sdc.conflicting-path",
                "warning",
                f"set_input_delay on {rep_name!r} is ignored: the net is "
                "driven or already carries a timing assertion",
                cmd,
                net=rep_name,
            )
            return
        spec = self.out.input_delays.get(
            rep_name, InputDelay(net=rep_name, clock=clock_rep)
        )
        if is_min:
            spec = replace(spec, min_ps=value)
        if is_max:
            spec = replace(
                spec, max_ps=value, min_ps=min(spec.min_ps, value)
            )
        self.out.input_delays[rep_name] = replace(spec, clock=clock_rep)

    def _merge_output_delay(
        self, rep_name, clock_rep, value, is_min, is_max
    ) -> None:
        for i, spec in enumerate(self.out.output_delays):
            if spec.net == rep_name and spec.clock == clock_rep:
                if is_min:
                    spec = replace(spec, hold_ps=value)
                if is_max:
                    spec = replace(spec, setup_ps=value)
                self.out.output_delays[i] = spec
                return
        self.out.output_delays.append(
            OutputDelay(
                net=rep_name,
                clock=clock_rep,
                setup_ps=value if is_max else 0,
                hold_ps=value if is_min else 0,
            )
        )

    def _cmd_set_input_delay(self, cmd: SdcCommand) -> None:
        self._io_delay(cmd, output=False)

    def _cmd_set_output_delay(self, cmd: SdcCommand) -> None:
        self._io_delay(cmd, output=True)

    def _cmd_set_multicycle_path(self, cmd: SdcCommand) -> None:
        if not cmd.args:
            self.finding(
                "sdc.syntax-error", "error",
                "set_multicycle_path is missing its cycle count", cmd,
            )
            return
        try:
            cycles = int(str(cmd.args[0]))
        except (TypeError, ValueError):
            self.finding(
                "sdc.syntax-error", "error",
                f"bad multicycle count {cmd.args[0]!r}", cmd,
            )
            return
        if cycles < 1:
            self.finding(
                "sdc.syntax-error", "error",
                f"multicycle count must be >= 1, got {cycles}", cmd,
            )
            return
        is_hold = bool(cmd.flags.get("-hold"))
        for comp in self.match_checkers(cmd):
            mods = self.out.checker_mods.get(comp.name, CheckerMods())
            if mods.waived:
                self.finding(
                    "sdc.conflicting-path",
                    "warning",
                    f"multicycle on {comp.name!r} conflicts with an earlier "
                    "false path; the false path wins",
                    cmd,
                    component=comp.name,
                )
                continue
            if is_hold:
                self.update_mods(comp.name, hold_cycles=cycles)
            else:
                self.update_mods(comp.name, setup_cycles=cycles)

    def _cmd_set_false_path(self, cmd: SdcCommand) -> None:
        for comp in self.match_checkers(cmd):
            mods = self.out.checker_mods.get(comp.name, CheckerMods())
            if mods.setup_cycles != 1 or mods.hold_cycles != 0:
                self.finding(
                    "sdc.conflicting-path",
                    "warning",
                    f"false path on {comp.name!r} conflicts with an earlier "
                    "multicycle path; the false path wins",
                    cmd,
                    component=comp.name,
                )
            self.update_mods(comp.name, waived=True)

    def _clock_scope(self, cmd: SdcCommand) -> list:
        """Checkers whose capture clock matches the command's targets.

        With no targets the command applies to every checker.
        """
        targets = [
            *cmd.target_names()[1:],
            *cmd.flag_names("-from"),
            *cmd.flag_names("-to"),
        ]
        if not targets:
            return list(self.checkers)
        reps: set[str] = set()
        for name in targets:
            rep = self.resolve_clock_net(name, cmd)
            if rep is not None:
                reps.add(rep)
        out = []
        for comp in self.checkers:
            ck_rep = self.circuit.find(comp.pins["CK"].net).name
            if ck_rep in reps:
                out.append(comp)
        return out

    def _cmd_set_clock_uncertainty(self, cmd: SdcCommand) -> None:
        value = self.value_ps(cmd)
        if value is None:
            return
        if value >= self.out.period_ps:
            self.finding(
                "sdc.uncertainty-exceeds-period",
                "error",
                f"clock uncertainty {value} ps is not smaller than the "
                f"period {self.out.period_ps} ps; every check would fail",
                cmd,
            )
        for comp in self._clock_scope(cmd):
            mods = self.out.checker_mods.get(comp.name, CheckerMods())
            self.update_mods(
                comp.name, uncertainty_ps=mods.uncertainty_ps + value
            )

    def _cmd_set_clock_latency(self, cmd: SdcCommand) -> None:
        value = self.value_ps(cmd)
        if value is None:
            return
        for comp in self._clock_scope(cmd):
            self.update_mods(comp.name, clock_shift_ps=value)

    def _rs_targets(self, cmd: SdcCommand) -> list:
        """REG_RS/LATCH_RS components matched by -to (or all of them)."""
        tos = cmd.flag_names("-to") or cmd.target_names()[1:]
        if not tos:
            return list(self.rs_comps)
        out = []
        matched: set[str] = set()
        for comp in self.rs_comps:
            names = {comp.name.upper()}
            for pin in ("SET", "RESET"):
                conn = comp.pins.get(pin)
                if conn is not None:
                    names.add(conn.net.name.upper())
                    names.add(conn.net.base_name.upper())
                    names.add(self.circuit.find(conn.net).name.upper())
            for pat in tos:
                if any(fnmatchcase(n, pat.upper()) for n in names):
                    matched.add(pat)
                    out.append(comp)
                    break
        for pat in tos:
            if pat not in matched:
                self.finding(
                    "sdc.unresolved-pin",
                    "error",
                    f"{cmd.name} target {pat!r} matches no set/reset element",
                    cmd,
                    net=pat,
                )
        return out

    def _rs_margin(self, cmd: SdcCommand, kind: str) -> None:
        value = self.value_ps(cmd)
        if value is None:
            return
        for comp in self._rs_targets(cmd):
            spec = self.out.rs_checks.get(comp.name, RsCheck(component=comp.name))
            self.out.rs_checks[comp.name] = replace(spec, **{kind: value})

    def _cmd_set_recovery(self, cmd: SdcCommand) -> None:
        self._rs_margin(cmd, "recovery_ps")

    def _cmd_set_removal(self, cmd: SdcCommand) -> None:
        self._rs_margin(cmd, "removal_ps")

    def _cmd_set_max_time_borrow(self, cmd: SdcCommand) -> None:
        value = self.value_ps(cmd)
        if value is None:
            return
        targets = cmd.target_names()[1:]
        if not targets:
            for comp in self.latches:
                self.out.max_borrow[comp.name] = value
            return
        for pat in targets:
            hit = False
            for comp in self.latches:
                names = {
                    comp.name.upper(),
                    comp.pins["OUT"].net.name.upper(),
                    comp.pins["DATA"].net.name.upper(),
                }
                if any(fnmatchcase(n, pat.upper()) for n in names):
                    self.out.max_borrow[comp.name] = value
                    hit = True
            if not hit:
                self.finding(
                    "sdc.unresolved-pin",
                    "error",
                    f"set_max_time_borrow target {pat!r} matches no latch",
                    cmd,
                    net=pat,
                )


def resolve(
    commands: list[SdcCommand],
    circuit,
    filename: str = "",
    parse_findings: list[Finding] | None = None,
) -> ConstraintSet:
    """Resolve parsed commands against ``circuit`` into a ConstraintSet."""
    r = _Resolver(circuit, filename)
    if parse_findings:
        r.out.findings.extend(parse_findings)
    for cmd in commands:
        r.handle(cmd)
    # Default-valued mods carry no information; drop them so both
    # consumers can treat "present in the dict" as "constrained".
    r.out.checker_mods = {
        name: mods
        for name, mods in r.out.checker_mods.items()
        if not mods.is_default
    }
    return r.out
