"""A worst-case path-searching analyzer (section 1.4.2).

The GRASP/RAS-style baseline: search every combinational path between
registers (and asserted inputs) for its longest and shortest delay, with no
knowledge of signal values.  Like RAS, the start and end points are found
automatically from the storage elements; like GRASP, loops that are not
broken by a register stop the search at a limit and are reported for the
user to cut by hand.

The thesis's criticism (sections 1.4.2 and 4.1) — "unable to take into
account the value behavior of the control signals ... and therefore tends
to generate numerous irrelevant error messages" — is reproduced directly:
on the Figure 2-6 circuit this analyzer reports the impossible 40 ns path
that the Verifier's case analysis excludes, and a clock driving a
multiplexer select line defeats it entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import VerifyConfig
from ..core.timeline import format_ns
from ..netlist.circuit import Circuit, Component, Net

#: Primitives treated as path-through combinational elements.
_COMBINATIONAL = frozenset(
    {"AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUF", "DELAY", "CHG",
     "MUX2", "MUX4", "MUX8"}
)
_STORAGE = frozenset({"REG", "REG_RS", "LATCH", "LATCH_RS"})


@dataclass(frozen=True)
class PathViolation:
    """A worst/best-path constraint failure at a storage or checker input."""

    kind: str  # "setup" | "hold" | "unclocked" | "loop"
    where: str
    signal: str
    slack_ps: int | None = None
    path: tuple[str, ...] = ()

    def __str__(self) -> str:
        slack = (
            f" (slack {format_ns(self.slack_ps)} ns)"
            if self.slack_ps is not None
            else ""
        )
        via = f" via {' -> '.join(self.path)}" if self.path else ""
        return f"{self.where}: {self.kind} on {self.signal!r}{slack}{via}"


@dataclass
class PathReport:
    """Everything the path search produced."""

    arrivals: dict[str, tuple[int, int]] = field(default_factory=dict)
    violations: list[PathViolation] = field(default_factory=list)
    loops: list[list[str]] = field(default_factory=list)
    paths_examined: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def arrival(self, net_name: str) -> tuple[int, int]:
        """(earliest-settled, latest-settled) time of a net, in ps."""
        return self.arrivals[net_name]


class PathAnalyzer:
    """Worst-case register-to-register path search over a :class:`Circuit`.

    Arrival windows are computed per net: ``(min, max)`` time by which the
    net may still be changing after the cycle starts.  Sources are register
    outputs (clock edge plus the element's delay range) and asserted inputs
    (the end of their asserted changing window).  Values are never
    consulted: every multiplexer leg and every gate input is a possible
    path, which is precisely what makes the method pessimistic.
    """

    def __init__(self, circuit: Circuit, config: VerifyConfig | None = None,
                 search_limit: int = 10_000) -> None:
        self.circuit = circuit
        self.config = config or VerifyConfig()
        self.search_limit = search_limit

    # ------------------------------------------------------------------

    def _wire(self, conn) -> tuple[int, int]:
        if conn.wire_delay_ps is not None:
            return conn.wire_delay_ps
        rep = self.circuit.find(conn.net)
        if rep.wire_delay_ps is not None:
            return rep.wire_delay_ps
        return self.config.default_wire_delay_ps

    def _clock_edge(self, comp: Component) -> tuple[int, int] | None:
        """The rising-edge window of a storage element's clock assertion.

        A path searcher cannot evaluate gated clocks; it only understands a
        directly asserted clock (this very limitation generates the
        'unclocked' reports the thesis complains about).
        """
        pin = "CLOCK" if comp.prim.name.startswith("REG") else "ENABLE"
        rep = self.circuit.find(comp.pins[pin].net)
        assertion = rep.assertion
        if assertion is None or not assertion.kind.is_clock:
            return None
        skew = self.config.clock_skew_ns(assertion.kind.name == "PRECISION_CLOCK")
        wf = assertion.waveform(self.circuit.timebase, skew).materialized()
        windows = wf.rising_windows()
        if not windows:
            return None
        return windows[0]

    def analyze(self) -> PathReport:
        report = PathReport()
        circuit = self.circuit
        period = circuit.period_ps

        #: earliest-possible-change of a never-changing signal.
        NEVER = 10 * period + self.search_limit * period

        # Seed arrivals: (earliest possible change, latest settle time).
        arrivals: dict[Net, tuple[int, int]] = {}
        for rep in circuit.representatives():
            assertion = rep.assertion
            if assertion is not None and not assertion.kind.is_clock:
                wf = assertion.waveform(circuit.timebase)
                from ..core.values import CHANGE

                runs = wf.level_runs(CHANGE)
                if runs:
                    # The signal settles at the end of its changing window.
                    arrivals[rep] = (runs[0][0], max(end for _s, end in runs))
                else:
                    arrivals[rep] = (NEVER, 0)

        comb: list[Component] = []
        for comp in circuit.iter_components():
            name = comp.prim.name
            if name in _STORAGE:
                edge = self._clock_edge(comp)
                out = circuit.find(comp.pins["OUT"].net)
                if edge is None:
                    report.violations.append(
                        PathViolation(
                            "unclocked", comp.name,
                            comp.pins["CLOCK" if name.startswith("REG")
                                      else "ENABLE"].net.name,
                        )
                    )
                    arrivals[out] = (0, period)  # worst case: unknown
                else:
                    dmin, dmax = comp.delay_ps()
                    arrivals[out] = (edge[0] + dmin, edge[1] + dmax)
            elif name in _COMBINATIONAL:
                comb.append(comp)

        # Relax combinational arrival windows to a fixed point, with a
        # search limit standing in for GRASP's loop cutoff.
        budget = self.search_limit
        changed = True
        while changed:
            changed = False
            for comp in comb:
                out_rep = circuit.find(comp.pins["OUT"].net)
                dmin, dmax = comp.delay_ps()
                # Inputs with no arrival yet are treated as not-yet-known;
                # the component relaxes from whatever is known so far and
                # is revisited as more arrivals appear (undriven signals
                # with no assertion simply never contribute a change).
                ins = []
                for _pin, conn in comp.input_pins():
                    rep = circuit.find(conn.net)
                    if rep not in arrivals:
                        continue
                    wmin, wmax = self._wire(conn)
                    a = arrivals[rep]
                    ins.append((a[0] + wmin + dmin, a[1] + wmax + dmax))
                if not ins:
                    continue
                window = (min(a for a, _b in ins), max(b for _a, b in ins))
                old = arrivals.get(out_rep)
                if old is not None:
                    window = (min(window[0], old[0]), max(window[1], old[1]))
                if old != window:
                    arrivals[out_rep] = window
                    changed = True
                    report.paths_examined += 1
                    budget -= 1
                    if budget <= 0:
                        report.loops.append(
                            [comp.name, out_rep.name, "search limit hit"]
                        )
                        changed = False
                        break
            if budget <= 0:
                break

        # Check constraints at storage-element and checker inputs.
        for comp in circuit.iter_components():
            name = comp.prim.name
            if name in ("SETUP_HOLD_CHK", "SETUP_RISE_HOLD_FALL_CHK"):
                data_rep = circuit.find(comp.pins["I"].net)
                ck = comp.pins["CK"]
                ck_rep = circuit.find(ck.net)
                assertion = ck_rep.assertion
                if assertion is None or not assertion.kind.is_clock:
                    report.violations.append(
                        PathViolation("unclocked", comp.name, ck_rep.name)
                    )
                    continue
                skew = self.config.clock_skew_ns(
                    assertion.kind.name == "PRECISION_CLOCK"
                )
                wf = assertion.waveform(circuit.timebase, skew)
                if ck.invert:
                    from ..core.values import value_not

                    wf = wf.mapped(value_not)
                windows = wf.materialized().rising_windows()
                if not windows or data_rep not in arrivals:
                    continue
                r0, r1 = windows[0]
                amin, amax = arrivals[data_rep]
                setup, hold = comp.params["setup"], comp.params["hold"]
                if amin > amax:
                    continue  # the signal never changes
                # Rule 1 (cycle limit, RAS-style): the worst path must
                # settle by the capture edge one period after cycle start.
                if amax + setup > r0 + period:
                    report.violations.append(
                        PathViolation(
                            "setup", comp.name, data_rep.name,
                            slack_ps=(r0 + period - setup) - amax,
                        )
                    )
                    continue
                # Rule 2: the clock edge repeats every period; the data's
                # changing window [amin, amax] must not intersect any
                # occurrence's setup region [e0 - setup, e1] or hold
                # region [e0, e1 + hold].
                found_setup = found_hold = False
                n_lo = (amin - setup - r1) // period - 1
                n_hi = (amax + hold - r0) // period + 1
                for n in range(n_lo, n_hi + 1):
                    e0, e1 = r0 + n * period, r1 + n * period
                    if not found_setup and amin < e1 and amax > e0 - setup:
                        report.violations.append(
                            PathViolation(
                                "setup", comp.name, data_rep.name,
                                slack_ps=(e0 - setup) - amax,
                            )
                        )
                        found_setup = True
                    if not found_hold and hold > 0 and \
                            amin < e1 + hold and amax > e0:
                        report.violations.append(
                            PathViolation(
                                "hold", comp.name, data_rep.name,
                                slack_ps=amin - (e1 + hold),
                            )
                        )
                        found_hold = True
        report.arrivals = {
            rep.name: window for rep, window in arrivals.items()
        }
        return report
