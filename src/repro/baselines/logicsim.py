"""A minimum/maximum-based gate-level logic simulator (section 1.4.1.1).

This is the *baseline* the thesis argues against: a TEGAS/SAGE/LAMP-style
event-driven simulator with the six-value system ``0, 1, X (initialisation),
U (rising), D (falling), E (potential spike/hazard)`` and per-component
minimum/maximum delays.  A gate output is set to the transitional value
between its minimum and maximum delay and to its final value afterwards.

It simulates *one sample of value behaviour per vector*: to verify timing it
must be driven with enough vectors to exercise every distinct timing path,
which is exponential in the number of independent inputs — the cost the
Timing Verifier's STABLE value eliminates (sections 2.1 and 4.1).  The
exponential-savings benchmark drives both tools over the same circuits.

Scope: vector-valued nets are simulated as single symbols (the same
vectorisation the Verifier exploits); CHG primitives have no boolean
function and are rejected.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.timeline import format_ns
from ..netlist.circuit import Circuit, Component, Connection, Net


class LV(enum.Enum):
    """The six simulation values of TEGAS-style precise-delay timing."""

    ZERO = "0"
    ONE = "1"
    X = "X"  # unknown / initialisation
    U = "U"  # signal rising (inside a min/max ambiguity region)
    D = "D"  # signal falling
    E = "E"  # potential spike, hazard, or race

    def __str__(self) -> str:
        return self.value


#: (initial, final) level pair each simulation value stands for.
_SPAN = {
    LV.ZERO: (LV.ZERO, LV.ZERO),
    LV.ONE: (LV.ONE, LV.ONE),
    LV.X: (LV.X, LV.X),
    LV.U: (LV.ZERO, LV.ONE),
    LV.D: (LV.ONE, LV.ZERO),
    LV.E: (LV.X, LV.X),
}


def _lv_not(v: LV) -> LV:
    return {LV.ZERO: LV.ONE, LV.ONE: LV.ZERO, LV.U: LV.D, LV.D: LV.U}.get(v, v)


def _bool_fn(name: str, levels: Sequence[LV]) -> LV:
    """Combine definite levels (0/1/X) through a gate function."""
    if name in ("AND", "NAND"):
        if any(v is LV.ZERO for v in levels):
            out = LV.ZERO
        elif all(v is LV.ONE for v in levels):
            out = LV.ONE
        else:
            out = LV.X
    elif name in ("OR", "NOR"):
        if any(v is LV.ONE for v in levels):
            out = LV.ONE
        elif all(v is LV.ZERO for v in levels):
            out = LV.ZERO
        else:
            out = LV.X
    elif name in ("XOR", "XNOR"):
        if any(v is LV.X for v in levels):
            out = LV.X
        else:
            ones = sum(1 for v in levels if v is LV.ONE)
            out = LV.ONE if ones % 2 else LV.ZERO
    elif name in ("BUF", "DELAY", "NOT"):
        out = levels[0]
    else:  # pragma: no cover
        raise AssertionError(name)
    if name in ("NAND", "NOR", "XNOR", "NOT"):
        out = _lv_not(out)
    return out


def gate_value(name: str, inputs: Sequence[LV]) -> LV:
    """Six-value gate evaluation: combine the initial and final levels.

    If the initial and final combined levels differ the output is in
    transition (U/D); an input marked E makes the output E unless a
    controlling level masks it.
    """
    initials = [_SPAN[v][0] for v in inputs]
    finals = [_SPAN[v][1] for v in inputs]
    init = _bool_fn(name, initials)
    final = _bool_fn(name, finals)
    if any(v is LV.E for v in inputs):
        # A potential spike propagates unless a controlling level pins the
        # output to a constant throughout.
        if init == final and final in (LV.ZERO, LV.ONE):
            return final
        return LV.E
    transitional = sum(1 for v in inputs if v in (LV.U, LV.D))
    if init == final:
        if transitional >= 2 and init in (LV.ZERO, LV.ONE):
            # Two crossing transitions may momentarily expose the other
            # level even though start and end agree — a potential spike
            # (TEGAS's E value): e.g. XOR of two rising inputs.
            return LV.E
        return init
    if (init, final) == (LV.ZERO, LV.ONE):
        return LV.U
    if (init, final) == (LV.ONE, LV.ZERO):
        return LV.D
    return LV.X


@dataclass(frozen=True)
class SimViolation:
    """A timing problem observed during simulation (one vector's worth)."""

    kind: str  # "setup" | "hold" | "spike"
    component: str
    signal: str
    time_ps: int
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"{self.component}: {self.kind} at {format_ns(self.time_ps)} ns "
            f"on {self.signal!r} {self.detail}"
        )


@dataclass
class SimResult:
    """The outcome of one simulation run."""

    cycles: int
    events: int
    violations: list[SimViolation] = field(default_factory=list)
    final_values: dict[str, LV] = field(default_factory=dict)
    #: (net name, time, new value) for every applied change, when traced.
    trace: list[tuple[str, int, LV]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


class LogicSimulator:
    """Event-driven min/max logic simulation of a :class:`Circuit`.

    Primary inputs are driven with per-cycle test vectors
    (:meth:`drive`); clock-asserted nets toggle automatically from their
    assertions.  Registers check their ``setup``/``hold`` parameters (taken
    from an attached SETUP HOLD CHK, if any) against observed data-change
    times, which is how a logic simulator finds timing errors — *on the
    vectors it is given*.
    """

    _GATES = frozenset(
        {"AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUF", "DELAY"}
    )

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.period = circuit.period_ps
        for comp in circuit.iter_components():
            if comp.prim.name == "CHG":
                raise ValueError(
                    "CHG primitives have no boolean function; the logic "
                    "simulator needs the full logic design "
                    f"(component {comp.name!r})"
                )
        self._loads: dict[Net, list[Component]] = {}
        self._driven: set[Net] = set()
        for comp in circuit.iter_components():
            for _pin, conn in comp.input_pins():
                self._loads.setdefault(circuit.find(conn.net), []).append(comp)
            for _pin, conn in comp.output_pins():
                self._driven.add(circuit.find(conn.net))
        self._vectors: dict[Net, list[int]] = {}
        # Per-register observation state for dynamic setup/hold checking.
        self._setup_hold: dict[str, tuple[int, int]] = {}
        for comp in circuit.iter_components():
            if comp.prim.name in ("SETUP_HOLD_CHK", "SETUP_RISE_HOLD_FALL_CHK"):
                self._setup_hold[circuit.find(comp.pins["I"].net).name] = (
                    comp.params["setup"],
                    comp.params["hold"],
                )

    # ------------------------------------------------------------------
    # stimulus
    # ------------------------------------------------------------------

    def drive(self, net_name: str, bits: Iterable[int]) -> None:
        """Apply one bit per cycle to a primary input."""
        net = self.circuit.nets.get(net_name)
        if net is None:
            raise KeyError(f"no net named {net_name!r}")
        rep = self.circuit.find(net)
        if rep in self._driven:
            raise ValueError(f"{net_name!r} is driven by logic, not a test input")
        self._vectors[rep] = [int(b) for b in bits]

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def run(self, cycles: int, record_trace: bool = False) -> SimResult:
        values: dict[Net, LV] = {
            rep: LV.X for rep in self.circuit.representatives()
        }
        last_change: dict[Net, int] = {}
        last_clock_edge: dict[str, int] = {}
        held_data: dict[str, LV] = {}
        result = SimResult(cycles=cycles, events=0)
        queue: list[tuple[int, int, Net, LV]] = []
        seq = itertools.count()

        def schedule(t: int, net: Net, value: LV) -> None:
            heapq.heappush(queue, (t, next(seq), net, value))

        # Pre-load stimulus events for every cycle.
        for rep in self.circuit.representatives():
            assertion = rep.assertion
            if assertion is not None and assertion.kind.is_clock:
                wf = assertion.waveform(self.circuit.timebase)
                for cycle in range(cycles):
                    base = cycle * self.period
                    schedule(base, rep, LV(str(wf.value_at(0))))
                    for t, _before, after in wf.boundaries():
                        if t:
                            schedule(base + t, rep, LV(str(after)))
            elif rep in self._vectors:
                bits = self._vectors[rep]
                for cycle in range(cycles):
                    bit = bits[cycle % len(bits)]
                    schedule(cycle * self.period, rep, LV.ONE if bit else LV.ZERO)

        def wire(conn: Connection) -> tuple[int, int]:
            if conn.wire_delay_ps is not None:
                return conn.wire_delay_ps
            rep = self.circuit.find(conn.net)
            if rep.wire_delay_ps is not None:
                return rep.wire_delay_ps
            return (0, 0)

        def input_value(conn: Connection) -> LV:
            v = values[self.circuit.find(conn.net)]
            return _lv_not(v) if conn.invert else v

        def evaluate(comp: Component, now: int) -> None:
            name = comp.prim.name
            if comp.prim.is_checker:
                return
            if name in self._GATES:
                ins = [input_value(conn) for _p, conn in comp.input_pins()]
                out = gate_value(name, ins)
                self._emit(comp, out, now, schedule, values)
            elif name.startswith("MUX"):
                n = int(name[3:])
                n_sel = max(1, n.bit_length() - 1)
                sel = [input_value(comp.pins[f"S{i}"]) for i in range(n_sel)]
                if all(v in (LV.ZERO, LV.ONE) for v in sel):
                    idx = sum((1 << i) for i, v in enumerate(sel) if v is LV.ONE)
                    out = input_value(comp.pins[f"I{idx}"])
                else:
                    out = LV.X
                self._emit(comp, out, now, schedule, values)
            elif name in ("REG", "REG_RS", "LATCH", "LATCH_RS"):
                self._storage(comp, now, schedule, values, last_change,
                              last_clock_edge, held_data, result)

        # Main loop.
        horizon = cycles * self.period
        while queue:
            t, _s, net, value = heapq.heappop(queue)
            if t >= horizon:
                break
            rep = self.circuit.find(net)
            if values[rep] == value:
                continue
            values[rep] = value
            last_change[rep] = t
            result.events += 1
            if record_trace:
                result.trace.append((rep.name, t, value))
            # Dynamic hold check: did this data net change too soon after
            # its register's clock edge?
            sh = self._setup_hold.get(rep.name)
            if sh and rep.name in last_clock_edge:
                _setup, hold = sh
                edge = last_clock_edge[rep.name]
                if 0 <= t - edge < hold:
                    result.violations.append(
                        SimViolation(
                            "hold", "sim", rep.name, t,
                            f"(changed {format_ns(t - edge)} ns after the edge)",
                        )
                    )
            for comp in self._loads.get(rep, ()):  # re-evaluate fanout
                evaluate(comp, t)

        result.final_values = {
            rep.name: values[rep] for rep in self.circuit.representatives()
        }
        return result

    # ------------------------------------------------------------------

    def _emit(self, comp, out, now, schedule, values) -> None:
        conn = comp.pins.get("OUT")
        if conn is None:
            return
        rep = self.circuit.find(conn.net)
        dmin, dmax = comp.delay_ps()
        old = values[rep]
        if out == old:
            return
        if dmax > dmin:
            # Between the minimum and maximum delay the output is in its
            # ambiguity region: U for a rise, D for a fall, X otherwise.
            transitional = {
                (LV.ZERO, LV.ONE): LV.U,
                (LV.ONE, LV.ZERO): LV.D,
            }.get((_SPAN[old][1], _SPAN[out][1]), LV.X)
            schedule(now + dmin, rep, transitional)
        schedule(now + dmax, rep, out)

    def _storage(
        self, comp, now, schedule, values, last_change, last_clock_edge,
        held_data, result
    ) -> None:
        # Asynchronous SET/RESET override the clocked behaviour entirely.
        for pin, forced in (("SET", LV.ONE), ("RESET", LV.ZERO)):
            conn = comp.pins.get(pin)
            if conn is None:
                continue
            v = values[self.circuit.find(conn.net)]
            if conn.invert:
                v = _lv_not(v)
            if v is LV.ONE:
                out_rep = self.circuit.find(comp.pins["OUT"].net)
                if values[out_rep] != forced:
                    schedule(now + comp.delay_ps()[1], out_rep, forced)
                return
        clock_pin = "CLOCK" if comp.prim.name.startswith("REG") else "ENABLE"
        clock_rep = self.circuit.find(comp.pins[clock_pin].net)
        data_conn = comp.pins["DATA"]
        data_rep = self.circuit.find(data_conn.net)
        clock = values[clock_rep]
        data = values[data_rep]
        if data_conn.invert:
            data = _lv_not(data)
        dmin, dmax = comp.delay_ps()
        is_latch = comp.prim.name.startswith("LATCH")
        key = comp.name
        if clock is LV.ONE:
            if is_latch or held_data.get(key + "/ck") != LV.ONE:
                # Latch transparent / register rising edge.
                if not is_latch:
                    last_clock_edge[data_rep.name] = now
                    sh = self._setup_hold.get(data_rep.name)
                    if sh:
                        setup, _hold = sh
                        changed = last_change.get(data_rep, -(10**12))
                        if now - changed < setup:
                            result.violations.append(
                                SimViolation(
                                    "setup", comp.name, data_rep.name, now,
                                    f"(data changed {format_ns(now - changed)}"
                                    " ns before the edge)",
                                )
                            )
                    if data in (LV.U, LV.D, LV.E):
                        data = LV.X  # metastable capture
                out_rep = self.circuit.find(comp.pins["OUT"].net)
                if values[out_rep] != data:
                    if dmax > dmin:
                        schedule(now + dmin, out_rep, LV.E
                                 if data is LV.X else
                                 (LV.U if data is LV.ONE else LV.D))
                    schedule(now + dmax, out_rep, data)
                held_data[key] = data
        elif is_latch and clock is LV.ZERO:
            pass  # holds the captured value
        held_data[key + "/ck"] = clock


def exhaustive_vectors(n_inputs: int) -> list[tuple[int, ...]]:
    """All input combinations — the vector count a simulator needs to cover
    every distinct value state once (transitions need the cross product)."""
    return list(itertools.product((0, 1), repeat=n_inputs))
