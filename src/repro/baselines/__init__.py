"""The two prior approaches the thesis compares against (section 1.4)."""

from .logicsim import LV, LogicSimulator, SimResult, SimViolation, exhaustive_vectors, gate_value
from .pathsearch import PathAnalyzer, PathReport, PathViolation
from .statistical import DelayDist, StatCheck, StatisticalAnalyzer, StatisticalReport

__all__ = [
    "LV",
    "LogicSimulator",
    "SimResult",
    "SimViolation",
    "exhaustive_vectors",
    "gate_value",
    "PathAnalyzer",
    "PathReport",
    "PathViolation",
    "DelayDist",
    "StatCheck",
    "StatisticalAnalyzer",
    "StatisticalReport",
]
