"""Probability-based timing analysis (sections 1.4.1.2 and 4.2.4).

The thesis's future-work proposal: "Such a Timing Verifier could keep
track of means and variances, rather than minimum and maximum values."
Following the DIGSIM model it cites, every component delay is treated as a
normal distribution; along a path the means and variances add, and a path
meets timing when its arrival at a designer-chosen confidence (k sigma)
clears the constraint.

The point the thesis makes with this model (section 1.4.1.1): "a real
design usually could be made to run faster than [the min/max] system will
predict.  This is because the probability is quite low that all of the
components along a time-critical path will have the maximum ... delay
values, if the delays ... are uncorrelated."  And its warning: correlated
delays (chips from one wafer) silently break the model, which is why the
min/max analysis was chosen for the S-1 — reproduced here via the
``correlation`` knob, which interpolates between independent (0.0) and
fully correlated (1.0) path variance.

When a component's delay is stated min/max, the default conversion treats
the range as ±3 sigma around the midpoint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.config import VerifyConfig
from ..core.timeline import format_ns
from ..netlist.circuit import Circuit, Component, Net
from .pathsearch import _COMBINATIONAL, _STORAGE


@dataclass(frozen=True)
class DelayDist:
    """A normally distributed delay, in picoseconds."""

    mean: float
    variance: float

    @classmethod
    def from_range(cls, dmin: int, dmax: int) -> "DelayDist":
        """Treat a min/max specification as a ±3-sigma range."""
        mean = (dmin + dmax) / 2
        sigma = (dmax - dmin) / 6
        return cls(mean=mean, variance=sigma * sigma)

    def plus(self, other: "DelayDist", correlation: float = 0.0) -> "DelayDist":
        """Sum of two delays with the given pairwise correlation."""
        cov = 2 * correlation * math.sqrt(self.variance * other.variance)
        return DelayDist(self.mean + other.mean,
                         self.variance + other.variance + cov)

    def quantile(self, k_sigma: float) -> float:
        """The k-sigma upper arrival bound."""
        return self.mean + k_sigma * math.sqrt(self.variance)


@dataclass
class StatisticalReport:
    """Arrival distributions and slack under both analysis models."""

    arrivals: dict[str, DelayDist] = field(default_factory=dict)
    checks: list["StatCheck"] = field(default_factory=list)

    def worst(self) -> "StatCheck | None":
        return min(self.checks, key=lambda c: c.stat_slack_ps, default=None)

    def min_period_ps(self, k_sigma: float = 3.0) -> tuple[float, float]:
        """(min/max model, statistical model) smallest workable period.

        Computed from the worst check's slack against the current period:
        a negative slack means the clock must stretch by that much.
        """
        if not self.checks:
            return (0.0, 0.0)
        period = self.checks[0].period_ps
        det = max(period - c.det_slack_ps for c in self.checks)
        stat = max(period - c.stat_slack_ps for c in self.checks)
        return (det, stat)


@dataclass(frozen=True)
class StatCheck:
    """One setup constraint evaluated under both models."""

    where: str
    signal: str
    edge_ps: int
    setup_ps: int
    period_ps: int
    det_arrival_ps: int
    arrival: DelayDist
    k_sigma: float

    @property
    def det_slack_ps(self) -> float:
        return (self.edge_ps + self.period_ps - self.setup_ps) - self.det_arrival_ps

    @property
    def stat_slack_ps(self) -> float:
        return (
            self.edge_ps + self.period_ps - self.setup_ps
            - self.arrival.quantile(self.k_sigma)
        )

    def __str__(self) -> str:
        return (
            f"{self.where}: {self.signal!r} det slack "
            f"{format_ns(round(self.det_slack_ps))} ns, "
            f"{self.k_sigma:.0f}-sigma slack "
            f"{format_ns(round(self.stat_slack_ps))} ns"
        )


class StatisticalAnalyzer:
    """Mean/variance worst-path analysis over a :class:`Circuit`.

    Propagates arrival *distributions* through the combinational graph the
    same way :class:`~repro.baselines.PathAnalyzer` propagates min/max
    windows; at a path merge the later-mean input dominates (a standard
    statistical-STA max approximation).
    """

    def __init__(
        self,
        circuit: Circuit,
        config: VerifyConfig | None = None,
        k_sigma: float = 3.0,
        correlation: float = 0.0,
    ) -> None:
        self.circuit = circuit
        self.config = config or VerifyConfig()
        self.k_sigma = k_sigma
        self.correlation = correlation

    def _wire_dist(self, conn) -> DelayDist:
        if conn.wire_delay_ps is not None:
            lo, hi = conn.wire_delay_ps
        else:
            rep = self.circuit.find(conn.net)
            lo, hi = (
                rep.wire_delay_ps
                if rep.wire_delay_ps is not None
                else self.config.default_wire_delay_ps
            )
        return DelayDist.from_range(lo, hi)

    def analyze(self) -> StatisticalReport:
        from .pathsearch import PathAnalyzer

        report = StatisticalReport()
        circuit = self.circuit
        period = circuit.period_ps
        det = PathAnalyzer(circuit, self.config).analyze()

        arrivals: dict[Net, DelayDist] = {}
        edges: dict[str, int] = {}
        for comp in circuit.iter_components():
            if comp.prim.name not in _STORAGE:
                continue
            pin = "CLOCK" if comp.prim.name.startswith("REG") else "ENABLE"
            rep = circuit.find(comp.pins[pin].net)
            assertion = rep.assertion
            if assertion is None or not assertion.kind.is_clock:
                continue
            wf = assertion.waveform(circuit.timebase)
            windows = wf.materialized().rising_windows()
            if not windows:
                continue
            edge = (windows[0][0] + windows[0][1]) // 2
            edges[comp.name] = edge
            out = circuit.find(comp.pins["OUT"].net)
            dmin, dmax = comp.delay_ps()
            arrivals[out] = DelayDist(edge, 0.0).plus(
                DelayDist.from_range(dmin, dmax), self.correlation
            )
        for rep in circuit.representatives():
            assertion = rep.assertion
            if assertion is not None and not assertion.kind.is_clock:
                from ..core.values import CHANGE

                runs = assertion.waveform(circuit.timebase).level_runs(CHANGE)
                if runs:
                    settle = max(end for _s, end in runs)
                    arrivals[rep] = DelayDist(settle, 0.0)

        # Relax through the combinational graph.
        changed = True
        guard = 10_000
        while changed and guard:
            changed = False
            guard -= 1
            for comp in circuit.iter_components():
                if comp.prim.name not in _COMBINATIONAL:
                    continue
                out_rep = circuit.find(comp.pins["OUT"].net)
                gate = DelayDist.from_range(*comp.delay_ps())
                best: DelayDist | None = None
                for _pin, conn in comp.input_pins():
                    rep = circuit.find(conn.net)
                    if rep not in arrivals:
                        continue
                    candidate = arrivals[rep].plus(
                        self._wire_dist(conn), self.correlation
                    ).plus(gate, self.correlation)
                    if best is None or candidate.quantile(self.k_sigma) > \
                            best.quantile(self.k_sigma):
                        best = candidate
                if best is None:
                    continue
                old = arrivals.get(out_rep)
                if old is None or best.quantile(self.k_sigma) > \
                        old.quantile(self.k_sigma) + 1e-9:
                    arrivals[out_rep] = best
                    changed = True

        det_arrival = det.arrivals
        for comp in circuit.iter_components():
            if comp.prim.name not in ("SETUP_HOLD_CHK",):
                continue
            data_rep = circuit.find(comp.pins["I"].net)
            ck_rep = circuit.find(comp.pins["CK"].net)
            assertion = ck_rep.assertion
            if (
                assertion is None
                or not assertion.kind.is_clock
                or data_rep not in arrivals
            ):
                continue
            wf = assertion.waveform(circuit.timebase)
            windows = wf.materialized().rising_windows()
            if not windows:
                continue
            edge = windows[0][0]
            det_amax = det_arrival.get(data_rep.name, (0, 0))[1]
            report.checks.append(
                StatCheck(
                    where=comp.name,
                    signal=data_rep.name,
                    edge_ps=edge,
                    setup_ps=comp.params["setup"],
                    period_ps=period,
                    det_arrival_ps=det_amax,
                    arrival=arrivals[data_rep],
                    k_sigma=self.k_sigma,
                )
            )
        report.arrivals = {
            rep.name: dist for rep, dist in arrivals.items()
        }
        return report
