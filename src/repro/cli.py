"""Command-line entry point: ``scald-tv design.scald``.

Runs the full pipeline of section 3.3.1 on a textual SCALD design: Macro
Expansion (read, Pass 1, Pass 2), timing verification, and the output
listings (timing summary, error listing, cross-reference, execution
statistics).
"""

from __future__ import annotations

import argparse
import sys

from .core.verifier import TimingVerifier
from .core.config import VerifyConfig
from .hdl.expander import MacroExpander
from .reporting.listing import phase_table, violation_listing, xref_listing


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scald-tv",
        description="SCALD Timing Verifier (McWilliams 1980, reproduced)",
    )
    parser.add_argument("design", help="a .scald design source file")
    parser.add_argument(
        "--summary", action="store_true",
        help="print the Figure 3-10 signal-value summary listing",
    )
    parser.add_argument(
        "--xref", action="store_true",
        help="print the cross-reference of signals assumed stable",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print Table 3-1 style execution statistics",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the execution profile: per-phase wall times, events, "
        "evaluations, events/primitive, and engine cache-hit counters",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="with --profile, emit the profile as JSON instead of text",
    )
    parser.add_argument(
        "--wire-delay", metavar="MIN:MAX", default=None,
        help="default interconnection delay in ns (default 0.0:2.0)",
    )
    parser.add_argument(
        "--case", type=int, default=0, metavar="N",
        help="which case's summary to print (default 0)",
    )
    parser.add_argument(
        "--storage", action="store_true",
        help="print Table 3-3 style storage accounting",
    )
    parser.add_argument(
        "--diagram", action="store_true",
        help="draw ASCII timing diagrams of all signals",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="trace the critical contribution to each violation's signal",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="run the static design-rule analyzer first and report findings",
    )
    parser.add_argument(
        "--crosscheck", action="store_true",
        help="assert that the static arrival windows (repro.sta) enclose "
        "every engine transition — a soundness self-test of both analyses",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)

    config = VerifyConfig()
    if args.wire_delay:
        try:
            lo, hi = (float(x) for x in args.wire_delay.split(":"))
        except ValueError:
            print(f"bad --wire-delay {args.wire_delay!r}; use MIN:MAX",
                  file=sys.stderr)
            return 2
        if lo < 0 or hi < 0:
            print(f"bad --wire-delay {args.wire_delay!r}; "
                  "delays must be non-negative", file=sys.stderr)
            return 2
        if lo > hi:
            print(f"bad --wire-delay {args.wire_delay!r}; "
                  "MIN must not exceed MAX", file=sys.stderr)
            return 2
        config = VerifyConfig(default_wire_delay_ns=(lo, hi))

    lint_errors = 0
    if args.lint:
        from .lint import lint_path
        from .reporting.lintfmt import lint_text

        try:
            lint_result = lint_path(args.design)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(lint_text(lint_result))
        print()
        lint_errors = len(lint_result.errors)

    try:
        expander = MacroExpander.from_file(args.design)
        circuit = expander.expand()
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result = TimingVerifier(circuit, config).verify()

    for issue in result.structure_warnings:
        print(f"structure: {issue}")
    if result.structure_warnings:
        print()

    if args.summary:
        print(result.summary_listing(case=args.case))
        print()
    if args.xref:
        print(xref_listing(result))
        print()
    if args.diagram:
        from .reporting.diagram import timing_diagram

        print(timing_diagram(result, case=args.case))
        print()
    print(violation_listing(result))
    if args.explain and result.violations:
        from .reporting.explain import explain_violation

        print()
        for violation in result.violations:
            print(explain_violation(circuit, result, violation, config))
            print()
    if args.stats:
        print()
        print(expander.stats.table())
        print()
        print(phase_table(result))
    if args.profile:
        from .reporting.stats import profile_json, profile_report

        print()
        if args.json:
            import json

            print(json.dumps(profile_json(result), indent=2))
        else:
            print(profile_report(result))
    if args.storage:
        from .core.engine import Engine
        from .reporting.stats import measure_storage

        engine = Engine(circuit, config)
        engine.initialize(circuit.cases[0] if circuit.cases else {})
        engine.run()
        print()
        print(measure_storage(engine).table())
    crosscheck_failed = False
    if args.crosscheck:
        from .sta import check_encloses, compute_windows

        analysis = compute_windows(circuit, config)
        cc = check_encloses(result, analysis)
        print()
        if cc.ok:
            print(
                f"crosscheck: static windows enclose all engine transitions "
                f"({cc.nets_checked} nets x {cc.cases_checked} cases)."
            )
        else:
            crosscheck_failed = True
            print(
                f"crosscheck FAILED: {len(cc.failures)} engine transition "
                "interval(s) outside the static windows:"
            )
            for f in cc.failures[:20]:
                print(
                    f"  case {f.case_index}: {f.net} {f.direction} "
                    f"at {f.span[0]}..{f.span[1]} ps"
                )
            if len(cc.failures) > 20:
                print(f"  ... and {len(cc.failures) - 20} more")
    return 0 if result.ok and not lint_errors and not crosscheck_failed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
