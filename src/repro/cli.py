"""Command-line entry point: ``scald-tv design.scald``.

Runs the full pipeline of section 3.3.1 on a textual SCALD design: Macro
Expansion (read, Pass 1, Pass 2), timing verification, and the output
listings (timing summary, error listing, cross-reference, execution
statistics).
"""

from __future__ import annotations

import argparse
import sys

from .core.verifier import TimingVerifier
from .core.config import VerifyConfig
from .hdl.expander import MacroExpander
from .reporting.listing import phase_table, violation_listing, xref_listing


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="scald-tv",
        description="SCALD Timing Verifier (McWilliams 1980, reproduced)",
    )
    parser.add_argument("design", help="a .scald design source file")
    parser.add_argument(
        "--summary", action="store_true",
        help="print the Figure 3-10 signal-value summary listing",
    )
    parser.add_argument(
        "--xref", action="store_true",
        help="print the cross-reference of signals assumed stable",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print Table 3-1 style execution statistics",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the execution profile: per-phase wall times, events, "
        "evaluations, events/primitive, and engine cache-hit counters",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the execution profile as JSON on stdout (implies "
        "--profile); all human-readable output moves to stderr so the "
        "stream stays machine-parseable",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="verify in N parallel worker processes: cases are sharded "
        "into contiguous blocks, and a single-case design is partitioned "
        "along its register/feedback cuts (default 1: serial in-process)",
    )
    parser.add_argument(
        "--wire-delay", metavar="MIN:MAX", default=None,
        help="default interconnection delay in ns (default 0.0:2.0)",
    )
    parser.add_argument(
        "--case", type=int, default=None, metavar="N",
        help="which case's summary to print (default 0)",
    )
    parser.add_argument(
        "--storage", action="store_true",
        help="print Table 3-3 style storage accounting",
    )
    parser.add_argument(
        "--diagram", action="store_true",
        help="draw ASCII timing diagrams of all signals",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="trace the critical contribution to each violation's signal",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="run the static design-rule analyzer first and report findings",
    )
    parser.add_argument(
        "--crosscheck", action="store_true",
        help="assert that the static arrival windows (repro.sta) enclose "
        "every engine transition — a soundness self-test of both analyses; "
        "with --sdc it also compares per-check verdicts",
    )
    parser.add_argument(
        "--sdc", metavar="FILE", default=None,
        help="apply an SDC-subset constraint file (create_clock, "
        "set_multicycle_path, set_false_path, set_clock_uncertainty, "
        "set_clock_latency, set_input_delay/set_output_delay, "
        "set_recovery/set_removal, set_max_time_borrow)",
    )
    parser.add_argument(
        "--bit-blast", action="store_true",
        help="expand every vector primitive and net to per-bit scalars "
        "before verifying — the legacy Table 3-2 representation, kept as "
        "the word-level engine's differential oracle",
    )
    parser.add_argument(
        "--fmax", action="store_true",
        help="after verifying at the design period, bisect over the clock "
        "period with full engine runs to find the fastest clean period "
        "(the independent oracle for scald-sta --fmax)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)

    # With --json the only bytes on stdout are the JSON object itself;
    # every human-readable line moves to stderr (scald-sta's envelope).
    if args.json:
        args.profile = True
    human = sys.stderr if args.json else sys.stdout

    def say(*parts: object) -> None:
        print(*parts, file=human)

    # Contradictory flag combinations die with one line and exit 2, the
    # documented usage-error status, before any work starts.
    if args.jobs < 1:
        print(f"bad --jobs {args.jobs}; need at least 1", file=sys.stderr)
        return 2
    if args.fmax and args.case is not None:
        print("bad flags: --fmax sweeps the clock period across every case; "
              "it cannot be combined with --case", file=sys.stderr)
        return 2
    if args.bit_blast and args.jobs > 1:
        print("bad flags: --bit-blast verifies the per-bit expansion "
              "in-process; it cannot be combined with --jobs", file=sys.stderr)
        return 2
    if args.fmax and args.jobs > 1:
        print("bad flags: --fmax bisects over the clock period with serial "
              "engine runs (the pool workers would hold the stale period); "
              "it cannot be combined with --jobs", file=sys.stderr)
        return 2
    if args.case is None:
        args.case = 0

    config = VerifyConfig()
    if args.wire_delay:
        try:
            lo, hi = (float(x) for x in args.wire_delay.split(":"))
        except ValueError:
            print(f"bad --wire-delay {args.wire_delay!r}; use MIN:MAX",
                  file=sys.stderr)
            return 2
        if lo < 0 or hi < 0:
            print(f"bad --wire-delay {args.wire_delay!r}; "
                  "delays must be non-negative", file=sys.stderr)
            return 2
        if lo > hi:
            print(f"bad --wire-delay {args.wire_delay!r}; "
                  "MIN must not exceed MAX", file=sys.stderr)
            return 2
        config = VerifyConfig(default_wire_delay_ns=(lo, hi))

    lint_errors = 0
    if args.lint:
        from .lint import lint_path
        from .reporting.lintfmt import lint_text

        try:
            lint_result = lint_path(args.design)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        say(lint_text(lint_result))
        say()
        lint_errors = len(lint_result.errors)

    try:
        expander = MacroExpander.from_file(args.design)
        circuit = expander.expand()
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    constraints = None
    sdc_errors = 0
    if args.sdc:
        from .constraints import load_constraints

        try:
            constraints = load_constraints(args.sdc, circuit)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for finding in constraints.findings:
            say(str(finding))
        if constraints.findings:
            say()
        sdc_errors = len(constraints.errors)

    if args.bit_blast:
        # Constraints are resolved against the vector circuit first; the
        # lookup fallbacks map them onto the per-bit clone names.
        from .netlist import bit_blast

        circuit = bit_blast(circuit)

    if args.jobs > 1:
        from .parallel import WorkerCrash, verify_parallel

        try:
            result = verify_parallel(
                circuit, config, jobs=args.jobs, constraints=constraints
            )
        except WorkerCrash as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        result = TimingVerifier(
            circuit, config, constraints=constraints
        ).verify()

    if not 0 <= args.case < len(result.cases):
        last = len(result.cases) - 1
        print(
            f"bad --case {args.case}; the design has {len(result.cases)} "
            f"case(s) (use 0..{last})",
            file=sys.stderr,
        )
        return 2

    for issue in result.structure_warnings:
        say(f"structure: {issue}")
    if result.structure_warnings:
        say()

    if args.summary:
        say(result.summary_listing(case=args.case))
        say()
    if args.xref:
        say(xref_listing(result))
        say()
    if args.diagram:
        from .reporting.diagram import timing_diagram

        say(timing_diagram(result, case=args.case))
        say()
    say(violation_listing(result))
    fmax = None
    if args.fmax:
        from .reporting.stafmt import fmax_text
        from .sta.parametric import bisect_fmax

        fmax = bisect_fmax(circuit, config, constraints=constraints)
        say()
        say(fmax_text(fmax))
    if args.explain and result.violations:
        from .reporting.explain import explain_violation

        say()
        for violation in result.violations:
            say(explain_violation(circuit, result, violation, config))
            say()
    if args.stats:
        say()
        say(expander.stats.table())
        say()
        say(phase_table(result))
    if args.profile:
        from .reporting.stats import profile_json, profile_report

        if args.json:
            import json

            doc = profile_json(result)
            if fmax is not None:
                from .reporting.stafmt import fmax_doc

                doc["fmax"] = fmax_doc(fmax)
            print(json.dumps(doc, indent=2))
        else:
            say()
            say(profile_report(result))
    if args.storage:
        from .core.engine import Engine
        from .reporting.stats import measure_storage

        engine = Engine(circuit, config)
        engine.initialize(circuit.cases[0] if circuit.cases else {})
        engine.run()
        say()
        say(measure_storage(engine).table())
    crosscheck_failed = False
    if args.crosscheck:
        from .sta import check_encloses, compute_windows
        from .sta.slack import compute_slack

        analysis = compute_windows(circuit, config, constraints=constraints)
        slack = compute_slack(circuit, analysis, constraints=constraints)
        cc = check_encloses(result, analysis, slack=slack)
        say()
        if cc.ok:
            say(
                f"crosscheck: static windows enclose all engine transitions "
                f"({cc.nets_checked} nets x {cc.cases_checked} cases)."
            )
            say(
                f"crosscheck: {cc.verdicts_checked} statically-positive "
                "check(s) confirmed clean in the engine."
            )
        else:
            crosscheck_failed = True
            if cc.failures:
                say(
                    f"crosscheck FAILED: {len(cc.failures)} engine transition "
                    "interval(s) outside the static windows:"
                )
                for f in cc.failures[:20]:
                    say(
                        f"  case {f.case_index}: {f.net} {f.direction} "
                        f"at {f.span[0]}..{f.span[1]} ps"
                    )
                if len(cc.failures) > 20:
                    say(f"  ... and {len(cc.failures) - 20} more")
            if cc.verdict_failures:
                say(
                    f"crosscheck FAILED: {len(cc.verdict_failures)} engine "
                    "violation(s) on checks the static analysis cleared:"
                )
                for v in cc.verdict_failures[:20]:
                    say(
                        f"  case {v.case_index}: {v.component} {v.kind} on "
                        f"{v.signal} (static slack {v.slack_ps} ps)"
                    )
    return (
        0
        if result.ok and not lint_errors and not crosscheck_failed
        and not sdc_errors
        else 1
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
