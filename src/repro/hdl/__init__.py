"""SCALD-style hardware description: assertions, macros, the expander."""

from .assertions import (
    Assertion,
    AssertionKind,
    AssertionSyntaxError,
    TimeRange,
    parse_assertion_spec,
    parse_signal_name,
    split_signal_name,
)

__all__ = [
    "Assertion",
    "AssertionKind",
    "AssertionSyntaxError",
    "TimeRange",
    "parse_assertion_spec",
    "parse_signal_name",
    "split_signal_name",
]
