"""Signal-name timing assertions (section 2.5).

Assertions are written *inside* signal names, preceded by a period, and are
considered part of the name by the rest of the SCALD system — which is what
guarantees that every use of a signal carries the same assertion.  Three
kinds exist:

* ``.P`` — precision clock (default skew trimmed tight, ±1 ns in the S-1);
* ``.C`` — non-precision clock (default skew ±5 ns in the S-1);
* ``.S`` — stable assertion for control and data signals.

The grammar (section 2.5.1)::

    <clock>      ::= <name> .P <spec> | <name> .C <spec>
    <stable>     ::= <name> .S <spec>
    <spec>       ::= <ranges> [ ( <minus skew> , <plus skew> ) ] [ L ]
    <ranges>     ::= <range> { , <range> }
    <range>      ::= <time> | <time> - <time> | <time> + <time>

Times are in designer clock units and are taken modulo the cycle.  The
``t1 + w`` form gives a pulse whose *width* ``w`` is in absolute nanoseconds
so it does not scale with the cycle time (section 2.5.1's ``XYZ .P2+10.0``).
``L`` asserts the signal is LOW during the listed ranges instead of high.
Skew is in nanoseconds relative to the stated times.

Example: ``MAIN CLOCK .P2-3,5-6 L`` or ``WRITE .S0-6``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from ..core.timeline import Timebase, ns_to_ps
from ..core.values import CHANGE, ONE, STABLE, ZERO
from ..core.waveform import Waveform


class AssertionKind(Enum):
    """The three assertion categories of section 2.5."""

    PRECISION_CLOCK = "P"
    CLOCK = "C"
    STABLE = "S"

    @property
    def is_clock(self) -> bool:
        return self is not AssertionKind.STABLE


@dataclass(frozen=True)
class TimeRange:
    """One asserted range in clock units.

    ``width_ns`` is set for the ``start + width`` form, whose width is in
    absolute nanoseconds; otherwise ``end`` is in clock units.  A bare time
    ``t`` is ``t - (t + 1)``: "if a single time is given instead of a range,
    a time interval of one clock unit is assumed."
    """

    start: float
    end: float | None = None
    width_ns: float | None = None

    def bounds_ps(self, timebase: Timebase) -> tuple[int, int]:
        start_ps = timebase.units_to_ps(self.start)
        if self.width_ns is not None:
            return start_ps, start_ps + ns_to_ps(self.width_ns)
        end = self.start + 1 if self.end is None else self.end
        end_ps = timebase.units_to_ps(end)
        if end_ps < start_ps:
            # e.g. .S4-1 on an 8-unit cycle: the range wraps.
            end_ps += timebase.period_ps
        return start_ps, end_ps


@dataclass(frozen=True)
class Assertion:
    """A parsed signal-name assertion.

    Attributes:
        kind: precision clock, non-precision clock, or stable.
        ranges: the asserted time ranges, in clock units.
        skew_ns: explicit ``(minus, plus)`` skew in nanoseconds, or None to
            use the verifier's per-kind default.
        low: True when the ``L`` polarity assertion is present (the signal
            is low during the ranges).
        text: the original assertion text (everything from the period on).
    """

    kind: AssertionKind
    ranges: tuple[TimeRange, ...]
    skew_ns: tuple[float, float] | None = None
    low: bool = False
    text: str = ""

    def skew_ps(self, default_ns: tuple[float, float]) -> tuple[int, int]:
        minus, plus = self.skew_ns if self.skew_ns is not None else default_ns
        early, late = ns_to_ps(minus), ns_to_ps(plus)
        if early > late:
            early, late = late, early
        return min(early, 0), max(late, 0)

    def waveform(
        self,
        timebase: Timebase,
        default_skew_ns: tuple[float, float] = (0.0, 0.0),
    ) -> Waveform:
        """Build the initial waveform this assertion pins a signal to.

        Clock assertions give a 0/1 waveform (inverted under ``L``) with the
        skew in the separate skew field.  Stable assertions give STABLE
        during the ranges and CHANGE elsewhere (section 2.9).
        """
        intervals = [r.bounds_ps(timebase) for r in self.ranges]
        if self.kind.is_clock:
            inside, outside = (ZERO, ONE) if self.low else (ONE, ZERO)
            skew = self.skew_ps(default_skew_ns)
        else:
            inside, outside = STABLE, CHANGE
            skew = (0, 0)
        return Waveform.from_intervals(
            timebase.period_ps,
            outside,
            [(lo, hi, inside) for lo, hi in intervals],
            skew=skew,
        )


class AssertionSyntaxError(ValueError):
    """Raised when a signal name contains a malformed assertion."""


_NUMBER = r"-?\d+(?:\.\d+)?"
_UNSIGNED = r"\d+(?:\.\d+)?"
_ASSERT_RE = re.compile(
    r"""^\s*
        (?P<ranges>{u}(?:[-+]{u})?(?:\s*,\s*{u}(?:[-+]{u})?)*)
        (?:\s*\(\s*(?P<minus>{n})\s*,\s*(?P<plus>{n})\s*\))?
        (?:\s*(?P<low>L))?
        \s*$""".format(n=_NUMBER, u=_UNSIGNED),
    re.VERBOSE,
)
_RANGE_RE = re.compile(
    r"^(?P<start>{u})(?:(?P<op>[-+])(?P<second>{u}))?$".format(u=_UNSIGNED)
)

#: Finds the assertion suffix: the *last* ``.P`` / ``.C`` / ``.S`` marker.
_MARKER_RE = re.compile(r"\s\.(?P<kind>[PCS])(?=[\s\d])")


def split_signal_name(name: str) -> tuple[str, str | None, str | None]:
    """Split a full signal name into ``(base, kind_letter, spec_text)``.

    ``"WRITE .S0-6 L"`` gives ``("WRITE", "S", "0-6 L")``; a name with no
    assertion gives ``(name, None, None)``.  The marker must be preceded by
    a space and followed by a digit or space, mirroring the drawings in the
    thesis (``CLK A .P2-3``).
    """
    matches = list(_MARKER_RE.finditer(name))
    if not matches:
        return name.strip(), None, None
    m = matches[-1]
    base = name[: m.start()].strip()
    spec = name[m.end() :].strip()
    return base, m.group("kind"), spec


def _parse_range(text: str) -> TimeRange:
    m = _RANGE_RE.match(text.strip())
    if not m:
        raise AssertionSyntaxError(f"malformed time range {text!r}")
    start = float(m.group("start"))
    if m.group("op") is None:
        return TimeRange(start=start)
    second = float(m.group("second"))
    if m.group("op") == "-":
        return TimeRange(start=start, end=second)
    return TimeRange(start=start, width_ns=second)


def parse_assertion_spec(kind_letter: str, spec: str, text: str = "") -> Assertion:
    """Parse the part of an assertion after the ``.P``/``.C``/``.S`` marker."""
    kind = AssertionKind(kind_letter)
    m = _ASSERT_RE.match(spec)
    if not m:
        raise AssertionSyntaxError(f"malformed assertion spec {spec!r}")
    ranges = tuple(_parse_range(r) for r in m.group("ranges").split(","))
    skew = None
    if m.group("minus") is not None:
        skew = (float(m.group("minus")), float(m.group("plus")))
    return Assertion(
        kind=kind,
        ranges=ranges,
        skew_ns=skew,
        low=m.group("low") is not None,
        text=text or f".{kind_letter}{spec}",
    )


def parse_signal_name(name: str) -> tuple[str, Assertion | None]:
    """Parse a full signal name, returning ``(base_name, assertion)``.

    Raises :class:`AssertionSyntaxError` on a malformed assertion; a name
    with no assertion marker parses to ``(name, None)``.
    """
    base, kind, spec = split_signal_name(name)
    if kind is None:
        return base, None
    if not spec:
        raise AssertionSyntaxError(f"empty assertion spec in {name!r}")
    return base, parse_assertion_spec(kind, spec, text=name[len(base) :].strip())
