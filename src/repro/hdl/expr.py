"""Arithmetic expressions over macro parameters.

SCALD macro definitions size their signals with expressions such as
``SIZE-1`` in ``I<0:SIZE-1>`` (Figure 3-5).  This module provides a small,
safe evaluator for integer/float arithmetic over named parameters —
no ``eval``, no attribute access, just ``+ - * / ( )`` and names.
"""

from __future__ import annotations

import re
from typing import Mapping

Number = int | float


class ExpressionError(ValueError):
    """Raised for malformed expressions or unknown parameter names."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+(?:\.\d+)?)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)|(?P<op>[-+*/()]))"
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m or m.end() == pos:
            raise ExpressionError(f"bad character in expression {text!r} at {pos}")
        tokens.append(m.group(m.lastgroup))  # type: ignore[arg-type]
        pos = m.end()
    return tokens


class _Parser:
    """Recursive-descent parser for ``expr := term (('+'|'-') term)*``."""

    def __init__(self, tokens: list[str], env: Mapping[str, Number]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.env = env

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ExpressionError("unexpected end of expression")
        self.pos += 1
        return tok

    def expr(self) -> Number:
        value = self.term()
        while self.peek() in ("+", "-"):
            op = self.take()
            rhs = self.term()
            value = value + rhs if op == "+" else value - rhs
        return value

    def term(self) -> Number:
        value = self.unary()
        while self.peek() in ("*", "/"):
            op = self.take()
            rhs = self.unary()
            if op == "*":
                value = value * rhs
            else:
                if rhs == 0:
                    raise ExpressionError("division by zero in expression")
                value = value / rhs
                if isinstance(value, float) and value.is_integer():
                    value = int(value)
        return value

    def unary(self) -> Number:
        if self.peek() == "-":
            self.take()
            return -self.unary()
        return self.atom()

    def atom(self) -> Number:
        tok = self.take()
        if tok == "(":
            value = self.expr()
            if self.take() != ")":
                raise ExpressionError("missing closing parenthesis")
            return value
        if re.fullmatch(r"\d+(?:\.\d+)?", tok):
            return float(tok) if "." in tok else int(tok)
        if tok in self.env:
            return self.env[tok]
        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", tok):
            raise ExpressionError(f"unknown parameter {tok!r}")
        raise ExpressionError(f"unexpected token {tok!r}")


def evaluate(text: str, env: Mapping[str, Number] | None = None) -> Number:
    """Evaluate an arithmetic expression with parameters from ``env``.

    >>> evaluate("SIZE-1", {"SIZE": 32})
    31
    """
    parser = _Parser(_tokenize(text), env or {})
    value = parser.expr()
    if parser.peek() is not None:
        raise ExpressionError(f"trailing input in expression {text!r}")
    return value


def evaluate_int(text: str, env: Mapping[str, Number] | None = None) -> int:
    """Evaluate and require an integral result (for widths and counts)."""
    value = evaluate(text, env)
    if isinstance(value, float):
        if not value.is_integer():
            raise ExpressionError(f"expression {text!r} is not an integer")
        value = int(value)
    return value
