"""Parser for the textual SCALD hardware description language.

The original SCALD was graphics-based (SUDS drawings); the Timing Verifier,
however, consumed a *textual* expanded design produced by the Macro
Expander.  This module defines an equivalent text source format carrying
every semantic feature the thesis describes — macros with size parameters,
``/P``/``/M`` signal scoping, bit-vector subscripts, assertions inside
signal names, complement markers, and ``&`` evaluation directives:

.. code-block:: text

    design EXAMPLE;
    period 50 ns;
    clock_unit 6.25 ns;

    macro "REG 100141" (SIZE);
      param "I"<0:SIZE-1>, "CK", "Q"<0:SIZE-1>;
      prim REG r (CLOCK="CK"/P, DATA="I"/P<0:SIZE-1>, OUT="Q"/P<0:SIZE-1>)
           delay=1.5:4.5 width=SIZE;
      prim "SETUP HOLD CHK" su (I="I"/P, CK="CK"/P)
           setup=2.5 hold=1.5 width=SIZE;
    endmacro;

    use "REG 100141" rega (I="W DATA .S0-6"<0:31>, CK="CLK A .P2-3",
                           Q="R DATA"<0:31>) SIZE=32;

    wire "ADR" 0.0:6.0;
    case "CONTROL SIGNAL .S0-8" = 0;

Comments run from ``--`` to end of line.  Statements end with ``;``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class ScaldSyntaxError(ValueError):
    """Raised with line/column context on malformed input."""

    def __init__(self, message: str, line: int, source: str = "") -> None:
        where = f"{source or '<input>'}:{line}"
        super().__init__(f"{where}: {message}")
        self.line = line


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SigRef:
    """A reference to a signal inside a connection.

    Attributes:
        name: the quoted signal name (may embed an assertion).
        invert: leading ``-`` — use the complement (Figure 3-5's ``- WE``).
        scope: ``"P"`` (macro parameter), ``"M"`` (macro local) or ``""``
            (global) — the ``/P`` and ``/M`` markers of section 3.1.
        subscript: ``(low_expr, high_expr)`` bit-range text, or None.
        directives: evaluation-directive letters after ``&``.
    """

    name: str
    invert: bool = False
    scope: str = ""
    subscript: tuple[str, str] | None = None
    directives: str = ""


@dataclass(frozen=True)
class PrimStmt:
    """A primitive instantiation.

    ``line``/``source_file`` locate the statement in its source text (the
    *span*), so later pipeline stages — notably the ``repro.lint`` static
    analyzer — can report diagnostics as ``file:line``.
    """

    prim: str
    inst: str
    pins: tuple[tuple[str, SigRef], ...]
    props: tuple[tuple[str, str], ...]  # name -> expression / a:b pair text
    line: int = 0
    source_file: str = ""


@dataclass(frozen=True)
class UseStmt:
    """A macro call."""

    macro: str
    inst: str
    bindings: tuple[tuple[str, SigRef], ...]  # formal name -> actual
    params: tuple[tuple[str, str], ...]  # SIZE=32 style
    line: int = 0
    source_file: str = ""


@dataclass
class MacroDef:
    """A macro definition: parameters, declared pins, and a body."""

    name: str
    size_params: tuple[str, ...]
    pin_decls: list[tuple[str, tuple[str, str] | None]] = field(default_factory=list)
    body: list["PrimStmt | UseStmt"] = field(default_factory=list)
    line: int = 0
    source_file: str = ""


@dataclass
class Design:
    """A parsed source file (plus anything it included)."""

    name: str = "UNNAMED"
    period_ns: float | None = None
    clock_unit_ns: float | None = None
    macros: dict[str, MacroDef] = field(default_factory=dict)
    top: list["PrimStmt | UseStmt"] = field(default_factory=list)
    wires: list[tuple[str, float, float]] = field(default_factory=list)
    cases: list[dict[str, int]] = field(default_factory=list)
    files_read: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<sym>[;,()<>:=&/\-+*])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "string" | "number" | "ident" | "sym"
    text: str
    line: int


def tokenize(source: str, filename: str = "") -> list[Token]:
    tokens: list[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if not m:
            raise ScaldSyntaxError(
                f"unexpected character {source[pos]!r}", line, filename
            )
        text = m.group(0)
        kind = m.lastgroup or ""
        if kind == "string":
            tokens.append(Token("string", text[1:-1].replace('\\"', '"'), line))
        elif kind in ("number", "ident", "sym"):
            tokens.append(Token(kind, text, line))
        line += text.count("\n")
        pos = m.end()
    return tokens


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


class Parser:
    """Recursive-descent parser producing a :class:`Design`."""

    def __init__(self, source: str, filename: str = "") -> None:
        self.tokens = tokenize(source, filename)
        self.pos = 0
        self.filename = filename

    # -- token helpers ---------------------------------------------------

    def _peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _take(self) -> Token:
        tok = self._peek()
        if tok is None:
            last_line = self.tokens[-1].line if self.tokens else 1
            raise ScaldSyntaxError("unexpected end of input", last_line, self.filename)
        self.pos += 1
        return tok

    def _expect(self, kind: str, text: str | None = None) -> Token:
        tok = self._take()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ScaldSyntaxError(
                f"expected {want!r}, found {tok.text!r}", tok.line, self.filename
            )
        return tok

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self._peek()
        if tok and tok.kind == kind and (text is None or tok.text == text):
            self.pos += 1
            return tok
        return None

    def _keyword(self) -> str | None:
        tok = self._peek()
        return tok.text if tok and tok.kind == "ident" else None

    # -- grammar ----------------------------------------------------------

    def parse(self, design: Design | None = None) -> Design:
        """Parse this source, optionally splicing into an existing design
        (used by ``include``).  Header statements (design/period/clock
        unit) from included files only apply where not already set."""
        if design is None:
            design = Design()
            if self.filename:
                design.files_read.append(self.filename)
        while self._peek() is not None:
            kw = self._keyword()
            tok = self._peek()
            assert tok is not None
            if kw == "design":
                self._take()
                name = self._take().text
                if design.name == "UNNAMED":
                    design.name = name
                self._expect("sym", ";")
            elif kw == "period":
                self._take()
                period = float(self._expect("number").text)
                if design.period_ns is None:
                    design.period_ns = period
                self._accept("ident", "ns")
                self._expect("sym", ";")
            elif kw == "clock_unit":
                self._take()
                unit = float(self._expect("number").text)
                if design.clock_unit_ns is None:
                    design.clock_unit_ns = unit
                self._accept("ident", "ns")
                self._expect("sym", ";")
            elif kw == "macro":
                macro = self._parse_macro()
                if macro.name in design.macros:
                    raise ScaldSyntaxError(
                        f"duplicate macro {macro.name!r}", macro.line, self.filename
                    )
                design.macros[macro.name] = macro
            elif kw == "prim":
                design.top.append(self._parse_prim())
            elif kw == "use":
                design.top.append(self._parse_use())
            elif kw == "wire":
                self._take()
                name = self._expect("string").text
                lo = float(self._expect("number").text)
                self._expect("sym", ":")
                hi = float(self._expect("number").text)
                self._expect("sym", ";")
                design.wires.append((name, lo, hi))
            elif kw == "include":
                # 'include "file.scald";' splices another source file's
                # macros and statements — the thesis's Expander read a set
                # of input files (Table 3-1's "reading input files").
                inc_tok = self._take()
                path_tok = self._expect("string")
                self._expect("sym", ";")
                self._include(design, path_tok.text, inc_tok.line)
            elif kw == "case":
                self._take()
                case: dict[str, int] = {}
                while True:
                    name = self._expect("string").text
                    self._expect("sym", "=")
                    value = self._expect("number").text
                    if value not in ("0", "1"):
                        raise ScaldSyntaxError(
                            f"case value must be 0 or 1, got {value}",
                            tok.line,
                            self.filename,
                        )
                    case[name] = int(value)
                    if not self._accept("sym", ","):
                        break
                self._expect("sym", ";")
                design.cases.append(case)
            else:
                raise ScaldSyntaxError(
                    f"unexpected token {tok.text!r}", tok.line, self.filename
                )
        return design

    def _include(self, design: Design, path: str, line: int) -> None:
        import os

        base = os.path.dirname(self.filename) if self.filename else "."
        full = path if os.path.isabs(path) else os.path.join(base, path)
        full = os.path.normpath(full)
        if full in design.files_read:
            raise ScaldSyntaxError(
                f"circular include of {path!r}", line, self.filename
            )
        try:
            with open(full, encoding="utf-8") as f:
                source = f.read()
        except OSError as exc:
            raise ScaldSyntaxError(
                f"cannot include {path!r}: {exc}", line, self.filename
            ) from exc
        design.files_read.append(full)
        Parser(source, filename=full).parse(design)

    def _parse_macro(self) -> MacroDef:
        start = self._expect("ident", "macro")
        name = self._expect("string").text
        size_params: list[str] = []
        if self._accept("sym", "("):
            if not self._accept("sym", ")"):
                while True:
                    size_params.append(self._expect("ident").text)
                    if self._accept("sym", ")"):
                        break
                    self._expect("sym", ",")
        self._expect("sym", ";")
        macro = MacroDef(
            name=name,
            size_params=tuple(size_params),
            line=start.line,
            source_file=self.filename,
        )
        while True:
            kw = self._keyword()
            if kw == "endmacro":
                self._take()
                self._expect("sym", ";")
                return macro
            if kw == "param":
                self._take()
                while True:
                    pname = self._expect("string").text
                    sub = self._parse_subscript()
                    macro.pin_decls.append((pname, sub))
                    if not self._accept("sym", ","):
                        break
                self._expect("sym", ";")
            elif kw == "prim":
                macro.body.append(self._parse_prim())
            elif kw == "use":
                macro.body.append(self._parse_use())
            else:
                tok = self._peek()
                raise ScaldSyntaxError(
                    f"unexpected {tok.text!r} in macro body"
                    if tok
                    else "unterminated macro",
                    tok.line if tok else macro.line,
                    self.filename,
                )

    def _parse_subscript(self) -> tuple[str, str] | None:
        if not self._accept("sym", "<"):
            return None
        lo = self._parse_expr_text(stop={":"})
        self._expect("sym", ":")
        hi = self._parse_expr_text(stop={">"})
        self._expect("sym", ">")
        return (lo, hi)

    def _parse_expr_text(self, stop: set[str]) -> str:
        """Collect raw expression text up to (not including) a stop symbol."""
        parts: list[str] = []
        depth = 0
        allowed_syms = set("+-*/()")
        while True:
            tok = self._peek()
            if tok is None:
                raise ScaldSyntaxError("unterminated expression", 0, self.filename)
            if tok.kind == "sym":
                if depth == 0 and tok.text in stop:
                    break
                if tok.text not in allowed_syms:
                    break
                if tok.text == "(":
                    depth += 1
                elif tok.text == ")":
                    if depth == 0:
                        break
                    depth -= 1
            elif tok.kind not in ("number", "ident"):
                break
            parts.append(tok.text)
            self._take()
        if not parts:
            tok = self._peek()
            raise ScaldSyntaxError(
                f"expected expression before {tok.text if tok else 'EOF'!r}",
                tok.line if tok else 0,
                self.filename,
            )
        return " ".join(parts)

    def _parse_sigref(self) -> SigRef:
        invert = bool(self._accept("sym", "-"))
        name = self._expect("string").text
        scope = ""
        if self._accept("sym", "/"):
            marker = self._expect("ident").text
            if marker not in ("P", "M"):
                raise ScaldSyntaxError(
                    f"signal scope must be /P or /M, got /{marker}",
                    self.tokens[self.pos - 1].line,
                    self.filename,
                )
            scope = marker
        subscript = self._parse_subscript()
        directives = ""
        if self._accept("sym", "&"):
            directives = self._expect("ident").text
        return SigRef(
            name=name,
            invert=invert,
            scope=scope,
            subscript=subscript,
            directives=directives,
        )

    def _parse_prop_value(self) -> str:
        """An expression that also stops before the next ``name =`` prop."""
        parts: list[str] = []
        depth = 0
        allowed_syms = set("+-*/()")
        while True:
            tok = self._peek()
            if tok is None:
                raise ScaldSyntaxError("unterminated property", 0, self.filename)
            if tok.kind == "sym":
                if depth == 0 and tok.text in (";", ":", ","):
                    break
                if tok.text not in allowed_syms:
                    break
                if tok.text == "(":
                    depth += 1
                elif tok.text == ")":
                    if depth == 0:
                        break
                    depth -= 1
            elif tok.kind == "ident":
                nxt = (
                    self.tokens[self.pos + 1]
                    if self.pos + 1 < len(self.tokens)
                    else None
                )
                if parts and nxt and nxt.kind == "sym" and nxt.text == "=":
                    break  # this ident starts the next property
            elif tok.kind != "number":
                break
            parts.append(tok.text)
            self._take()
        if not parts:
            tok = self._peek()
            raise ScaldSyntaxError(
                f"expected property value before {tok.text if tok else 'EOF'!r}",
                tok.line if tok else 0,
                self.filename,
            )
        return " ".join(parts)

    def _parse_props(self) -> tuple[tuple[str, str], ...]:
        props: list[tuple[str, str]] = []
        while True:
            tok = self._peek()
            if tok is None or tok.kind != "ident":
                break
            name = self._take().text
            self._expect("sym", "=")
            value = self._parse_prop_value()
            if self._accept("sym", ":"):
                value = f"{value}:{self._parse_prop_value()}"
            props.append((name, value))
        return tuple(props)

    def _parse_prim(self) -> PrimStmt:
        start = self._expect("ident", "prim")
        tok = self._take()
        if tok.kind not in ("ident", "string"):
            raise ScaldSyntaxError(
                f"expected primitive name, found {tok.text!r}", tok.line, self.filename
            )
        prim = tok.text
        inst = self._take().text
        self._expect("sym", "(")
        pins: list[tuple[str, SigRef]] = []
        if not self._accept("sym", ")"):
            while True:
                pin = self._expect("ident").text
                self._expect("sym", "=")
                pins.append((pin, self._parse_sigref()))
                if self._accept("sym", ")"):
                    break
                self._expect("sym", ",")
        props = self._parse_props()
        self._expect("sym", ";")
        return PrimStmt(
            prim=prim, inst=inst, pins=tuple(pins), props=props, line=start.line,
            source_file=self.filename,
        )

    def _parse_use(self) -> UseStmt:
        start = self._expect("ident", "use")
        macro = self._expect("string").text
        inst = self._take().text
        self._expect("sym", "(")
        bindings: list[tuple[str, SigRef]] = []
        if not self._accept("sym", ")"):
            while True:
                formal = self._take()
                if formal.kind not in ("ident", "string"):
                    raise ScaldSyntaxError(
                        f"expected formal parameter name, found {formal.text!r}",
                        formal.line,
                        self.filename,
                    )
                self._expect("sym", "=")
                bindings.append((formal.text, self._parse_sigref()))
                if self._accept("sym", ")"):
                    break
                self._expect("sym", ",")
        params = self._parse_props()
        self._expect("sym", ";")
        return UseStmt(
            macro=macro, inst=inst, bindings=tuple(bindings), params=params,
            line=start.line, source_file=self.filename,
        )


def parse(source: str, filename: str = "") -> Design:
    """Parse SCALD text into a :class:`Design`."""
    return Parser(source, filename).parse()


def parse_file(path: str) -> Design:
    """Parse a ``.scald`` source file."""
    with open(path, encoding="utf-8") as f:
        return parse(f.read(), filename=path)
