"""The SCALD Macro Expander (sections 3.1 and 3.3.2).

The expander turns a macro-based design description into the flat primitive
netlist the Timing Verifier consumes, in the thesis's three phases, each
individually timed for the Table 3-1 execution statistics:

* **Reading input files and building data structures** — parsing;
* **Pass 1** — walk the macro call tree resolving parameter bindings,
  checking declarations, and building the structure that resolves all
  *synonyms* between signals (a formal macro parameter and the actual
  signal bound to it are the same signal);
* **Pass 2** — emit the fully elaborated design (a
  :class:`~repro.netlist.Circuit`) for the Timing Verifier.

Signal scoping follows section 3.1: ``/P`` marks a macro parameter (and is
checked against the ``param`` declaration), ``/M`` marks a signal local to
the macro instance, and unmarked signals are global.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..netlist.circuit import Circuit, Connection
from ..netlist.primitives import lookup
from .expr import ExpressionError, evaluate, evaluate_int
from .parser import Design, MacroDef, PrimStmt, ScaldSyntaxError, SigRef, UseStmt


class ExpansionError(ValueError):
    """Raised for semantic errors during macro expansion."""


@dataclass
class ExpanderStats:
    """Execution statistics in the shape of Table 3-1's Expander half."""

    read_seconds: float = 0.0
    pass1_seconds: float = 0.0
    pass2_seconds: float = 0.0
    macro_calls: int = 0
    primitives: int = 0
    synonyms: int = 0
    max_depth: int = 0

    @property
    def total_seconds(self) -> float:
        return self.read_seconds + self.pass1_seconds + self.pass2_seconds

    def table(self) -> str:
        rows = [
            ("Reading input files and building data structures", self.read_seconds),
            ("Pass 1 of Macro Expansion", self.pass1_seconds),
            ("Pass 2 of Macro Expansion", self.pass2_seconds),
        ]
        lines = ["MACRO EXPANSION EXECUTION STATISTICS", ""]
        for label, seconds in rows:
            lines.append(f"  {label:<52} {seconds * 1000:10.2f} ms")
        lines.append(f"  {'Total':<52} {self.total_seconds * 1000:10.2f} ms")
        lines.append("")
        lines.append(
            f"  macro calls: {self.macro_calls}, primitives: {self.primitives}, "
            f"synonyms resolved: {self.synonyms}, max depth: {self.max_depth}"
        )
        return "\n".join(lines)


@dataclass
class _Scope:
    """One level of macro instantiation."""

    path: str  # hierarchical instance prefix, e.g. "cpu/alu0/"
    params: dict[str, float | int] = field(default_factory=dict)
    formals: dict[str, "ResolvedSig"] = field(default_factory=dict)
    declared: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class ResolvedSig:
    """A fully resolved signal reference.

    ``internal`` marks an ``/M`` macro-local signal: it lives on the chip
    the macro describes, so it carries no default interconnection delay
    (inter-chip wire delay applies to the macro's pin signals only).
    """

    name: str
    invert: bool = False
    width: int = 1
    directives: str = ""
    internal: bool = False


class MacroExpander:
    """Expands a parsed :class:`Design` into a flat :class:`Circuit`."""

    def __init__(self, design: Design) -> None:
        self.design = design
        self.stats = ExpanderStats()
        self._synonym_pairs: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @classmethod
    def from_source(cls, source: str, filename: str = "") -> "MacroExpander":
        """Parse and wrap; the parse time is recorded as the read phase."""
        from .parser import parse

        t0 = time.perf_counter()
        design = parse(source, filename)
        expander = cls(design)
        expander.stats.read_seconds = time.perf_counter() - t0
        return expander

    @classmethod
    def from_file(cls, path: str) -> "MacroExpander":
        with open(path, encoding="utf-8") as f:
            source = f.read()
        return cls.from_source(source, filename=path)

    def expand(self) -> Circuit:
        """Run Pass 1 and Pass 2, returning the flat circuit."""
        t0 = time.perf_counter()
        self._pass1()
        self.stats.pass1_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        circuit = self._pass2()
        self.stats.pass2_seconds = time.perf_counter() - t0
        return circuit

    @property
    def synonyms(self) -> list[tuple[str, str]]:
        """The formal-to-actual signal pairs resolved in Pass 1."""
        return list(self._synonym_pairs)

    # ------------------------------------------------------------------
    # Pass 1: validate the call tree and resolve synonyms
    # ------------------------------------------------------------------

    def _pass1(self) -> None:
        self._synonym_pairs.clear()
        self.stats.macro_calls = 0
        self.stats.primitives = 0
        self.stats.max_depth = 0
        for stmt in self.design.top:
            self._walk(stmt, _Scope(path=""), depth=0, emit=None)
        self.stats.synonyms = len(self._synonym_pairs)

    # ------------------------------------------------------------------
    # Pass 2: emit the flat circuit
    # ------------------------------------------------------------------

    def _pass2(self) -> Circuit:
        if self.design.period_ns is None:
            raise ExpansionError("design does not specify a period")
        circuit = Circuit(
            self.design.name,
            period_ns=self.design.period_ns,
            clock_unit_ns=self.design.clock_unit_ns,
        )
        for stmt in self.design.top:
            self._walk(stmt, _Scope(path=""), depth=0, emit=circuit)
        for name, lo, hi in self.design.wires:
            net = circuit.net(name)
            net.wire_delay_ps = (round(lo * 1000), round(hi * 1000))
        for case in self.design.cases:
            circuit.add_case_by_name(dict(case))
        return circuit

    # ------------------------------------------------------------------
    # shared walk (Pass 1 validates; Pass 2 also emits)
    # ------------------------------------------------------------------

    def _walk(
        self,
        stmt: PrimStmt | UseStmt,
        scope: _Scope,
        depth: int,
        emit: Circuit | None,
    ) -> None:
        self.stats.max_depth = max(self.stats.max_depth, depth)
        if isinstance(stmt, PrimStmt):
            self._walk_prim(stmt, scope, emit)
        else:
            self._walk_use(stmt, scope, depth, emit)

    # Counters are accumulated in Pass 1 only (emit is None); Pass 2 walks
    # the same tree and must not double-count.

    def _walk_prim(self, stmt: PrimStmt, scope: _Scope, emit: Circuit | None) -> None:
        if emit is None:
            self.stats.primitives += 1
        try:
            prim = lookup(stmt.prim)
        except KeyError as exc:
            raise ExpansionError(f"line {stmt.line}: {exc.args[0]}") from exc
        resolved = [(pin, self._resolve(ref, scope, stmt.line)) for pin, ref in stmt.pins]
        params = self._eval_props(stmt.props, scope, stmt.line)
        if emit is None:
            return
        width = int(params.get("width", 0)) or max(
            (sig.width for _pin, sig in resolved), default=1
        )
        params.setdefault("width", width)
        origin = (stmt.source_file, stmt.line)
        pins: dict[str, object] = {}
        for pin, sig in resolved:
            net = emit.net(sig.name, width=sig.width)
            if net.origin is None:
                net.origin = origin
            if sig.internal and net.wire_delay_ps is None:
                net.wire_delay_ps = (0, 0)  # on-die: no interconnection run
            pins[pin] = Connection(
                net=net,
                invert=sig.invert,
                directives=sig.directives,
            )
        emit.add(
            f"{scope.path}{stmt.inst}", prim.name, pins, origin=origin, **params
        )

    def _walk_use(
        self, stmt: UseStmt, scope: _Scope, depth: int, emit: Circuit | None
    ) -> None:
        if emit is None:
            self.stats.macro_calls += 1
        macro = self.design.macros.get(stmt.macro)
        if macro is None:
            raise ExpansionError(
                f"line {stmt.line}: no macro named {stmt.macro!r}"
            )
        if depth > 64:
            raise ExpansionError(
                f"line {stmt.line}: macro nesting exceeds 64 levels — "
                f"is {stmt.macro!r} recursive?"
            )
        child = _Scope(path=f"{scope.path}{stmt.inst}/")
        # Size parameters.
        given = dict(stmt.params)
        for pname in macro.size_params:
            if pname in given:
                child.params[pname] = self._eval_number(
                    given.pop(pname), scope, stmt.line
                )
            else:
                raise ExpansionError(
                    f"line {stmt.line}: macro {stmt.macro!r} requires "
                    f"parameter {pname}"
                )
        if given:
            raise ExpansionError(
                f"line {stmt.line}: macro {stmt.macro!r} does not take "
                f"parameter(s) {sorted(given)}"
            )
        # Declared pins and their widths (evaluated with the child params).
        declared_width: dict[str, int] = {}
        for pname, sub in macro.pin_decls:
            child.declared.add(pname)
            declared_width[pname] = self._subscript_width(sub, child, macro.line)
        # Formal-to-actual bindings.
        for formal, actual_ref in stmt.bindings:
            if formal not in child.declared:
                raise ExpansionError(
                    f"line {stmt.line}: macro {stmt.macro!r} has no "
                    f"parameter {formal!r}"
                )
            actual = self._resolve(actual_ref, scope, stmt.line)
            want = declared_width.get(formal, 1)
            if actual_ref.subscript is not None and actual.width != want:
                raise ExpansionError(
                    f"line {stmt.line}: {formal!r} of {stmt.macro!r} is "
                    f"{want} bits wide but is bound to {actual.width} bits"
                )
            child.formals[formal] = ResolvedSig(
                name=actual.name,
                invert=actual.invert,
                width=max(actual.width, want),
                directives=actual.directives,
            )
            if emit is None:
                self._synonym_pairs.append((f"{child.path}{formal}", actual.name))
        missing = child.declared - set(child.formals)
        if missing:
            raise ExpansionError(
                f"line {stmt.line}: macro {stmt.macro!r} called without "
                f"binding parameter(s) {sorted(missing)}"
            )
        for inner in macro.body:
            self._walk(inner, child, depth + 1, emit)

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------

    def _resolve(self, ref: SigRef, scope: _Scope, line: int) -> ResolvedSig:
        width = self._subscript_width(ref.subscript, scope, line)
        if ref.scope == "P":
            bound = scope.formals.get(ref.name)
            if bound is None:
                raise ExpansionError(
                    f"line {line}: {ref.name!r}/P is not a declared parameter "
                    "of the enclosing macro"
                )
            return ResolvedSig(
                name=bound.name,
                invert=bound.invert ^ ref.invert,
                width=max(width, bound.width),
                directives=ref.directives or bound.directives,
            )
        if ref.scope == "M":
            if not scope.path:
                raise ExpansionError(
                    f"line {line}: {ref.name!r}/M used outside a macro"
                )
            return ResolvedSig(
                name=f"{scope.path}{ref.name}",
                invert=ref.invert,
                width=width,
                directives=ref.directives,
                internal=True,
            )
        return ResolvedSig(
            name=ref.name, invert=ref.invert, width=width, directives=ref.directives
        )

    def _subscript_width(
        self, sub: tuple[str, str] | None, scope: _Scope, line: int
    ) -> int:
        if sub is None:
            return 1
        try:
            lo = evaluate_int(sub[0], scope.params)
            hi = evaluate_int(sub[1], scope.params)
        except ExpressionError as exc:
            raise ExpansionError(f"line {line}: {exc}") from exc
        return abs(hi - lo) + 1

    def _eval_number(self, text: str, scope: _Scope, line: int) -> float | int:
        try:
            return evaluate(text, scope.params)
        except ExpressionError as exc:
            raise ExpansionError(f"line {line}: {exc}") from exc

    def _eval_props(
        self, props: tuple[tuple[str, str], ...], scope: _Scope, line: int
    ) -> dict[str, object]:
        out: dict[str, object] = {}
        for name, text in props:
            if ":" in text:
                lo_text, hi_text = text.split(":", 1)
                out[name] = (
                    self._eval_number(lo_text, scope, line),
                    self._eval_number(hi_text, scope, line),
                )
            else:
                out[name] = self._eval_number(text, scope, line)
        return out


def expand_source(source: str, filename: str = "") -> tuple[Circuit, ExpanderStats]:
    """One-shot: parse, expand, and return the circuit with its statistics."""
    expander = MacroExpander.from_source(source, filename)
    circuit = expander.expand()
    return circuit, expander.stats


def expand_file(path: str) -> tuple[Circuit, ExpanderStats]:
    """Parse and expand a ``.scald`` file."""
    expander = MacroExpander.from_file(path)
    circuit = expander.expand()
    return circuit, expander.stats
