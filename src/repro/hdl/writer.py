"""Serializer: a flat :class:`Circuit` back to SCALD text.

The Macro Expander's output — the fully elaborated design of Pass 2 — can
be written out as a flat ``.scald`` source of primitive statements.  This
is the textual equivalent of the expanded-design file the thesis's Macro
Expander handed to the Timing Verifier, and it makes the text format a
complete interchange: any circuit built with the Python API can be saved,
inspected, diffed, and reloaded.

Instance names are preserved: hierarchical names like ``rf/su data`` are
not bare identifiers in the source grammar, so any name that is not a
plain identifier is written as a quoted string (which the parser accepts
wherever an instance name is expected).  Violation listings from a
written-and-re-expanded design therefore name the same components as the
original — provenance survives the round-trip.
"""

from __future__ import annotations

import re

from ..core.timeline import ps_to_ns
from ..netlist.circuit import Circuit, Component, Connection

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*\Z")


def _fmt_ns(ps: int) -> str:
    ns = ps_to_ns(ps)
    text = f"{ns:g}"
    return text if "." in text or "e" in text else f"{text}.0"


def _sigref(circuit: Circuit, conn: Connection) -> str:
    # Aliased nets are written under their representative's name, so the
    # reloaded circuit needs no synonym table.
    rep = circuit.find(conn.net)
    name = rep.name.replace('"', '\\"')
    parts = []
    if conn.invert:
        parts.append("-")
    parts.append(f'"{name}"')
    if rep.width > 1:
        parts.append(f"<0:{rep.width - 1}>")
    if conn.directives:
        parts.append(f"&{conn.directives}")
    return "".join(parts)


def _inst_ref(name: str) -> str:
    """An instance name as source text: bare when a plain identifier,
    quoted otherwise (hierarchical names carry ``/`` and spaces)."""
    if _IDENT_RE.match(name):
        return name
    return '"' + name.replace('"', '\\"') + '"'


def _props(comp: Component) -> str:
    chunks: list[str] = []
    for name, value in comp.params.items():
        if value is None:
            continue
        if isinstance(value, tuple):
            chunks.append(f"{name}={_fmt_ns(value[0])}:{_fmt_ns(value[1])}")
        elif name == "width":
            chunks.append(f"width={int(value)}")
        else:
            chunks.append(f"{name}={_fmt_ns(int(value))}")
    return " ".join(chunks)


def write_scald(circuit: Circuit) -> str:
    """Render a flat circuit as SCALD source text.

    The output re-parses through :func:`repro.hdl.expander.expand_source`
    into a structurally identical circuit (same primitives, connections,
    parameters, wire overrides, and cases).
    """
    lines = [
        f"-- expanded design {circuit.name!r}, written by repro",
        f"design {_ident(circuit.name)};",
        f"period {circuit.timebase.period_ns:g} ns;",
        f"clock_unit {circuit.timebase.clock_unit_ns:g} ns;",
        "",
    ]
    for net in circuit.nets.values():
        if net.wire_delay_ps is not None and circuit.find(net) is net:
            lo, hi = net.wire_delay_ps
            name = net.name.replace('"', '\\"')
            lines.append(f'wire "{name}" {_fmt_ns(lo)}:{_fmt_ns(hi)};')
    lines.append("")
    for comp in circuit.iter_components():
        pins = []
        for pin, conn in comp.pins.items():
            pins.append(f"{pin}={_sigref(circuit, conn)}")
        prim = comp.prim.name
        prim_text = f'"{comp.prim.display}"' if " " in comp.prim.display else prim
        props = _props(comp)
        props_text = f" {props}" if props else ""
        lines.append(
            f"prim {prim_text} {_inst_ref(comp.name)} "
            f"({', '.join(pins)}){props_text};"
        )
    if circuit.cases:
        lines.append("")
        for case in circuit.cases:
            assigns = ", ".join(
                f'"{name.replace(chr(34), chr(92) + chr(34))}" = {value}'
                for name, value in case.items()
            )
            lines.append(f"case {assigns};")
    return "\n".join(lines) + "\n"


def _ident(name: str) -> str:
    """Coerce a design name into a source-grammar identifier."""
    out = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not out or out[0].isdigit():
        out = f"D_{out}"
    return out


def save_scald(circuit: Circuit, path: str) -> None:
    """Write the circuit to a ``.scald`` file."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(write_scald(circuit))
