#!/usr/bin/env python3
"""Incremental sessions: the edit-verify loop without the from-scratch tax.

Opens the shipped shifter design in a long-lived Session, verifies it
once in full, then walks the day-by-day loop of section 3.3.1 as typed
edits: slow a net down until the design breaks, watch the incremental
re-verification report the identical violations a from-scratch run
would, then fix it and re-verify clean.  Along the way it prints how
little of the design each re-verification actually touched, and checks
every incremental answer against the from-scratch oracle.

Run with:  python examples/incremental.py
"""

from repro import Session, WireDelayEdit, ParamEdit
from repro.incremental import assert_incremental_equivalent

DESIGN = "examples/designs/shifter.scald"


def show(tag, inc):
    s = inc.stats
    print(
        f"  {tag:<28} ok={str(inc.ok):<5} "
        f"dirty={s.dirty_primitives:<3} reused={s.reused_waveforms:<3} "
        f"violations={len(inc.violations)}"
    )


def main() -> int:
    session = Session.from_file(DESIGN)

    first = session.verify()
    assert first.ok
    print(f"full verification: ok={first.ok}, "
          f"{first.primitive_count} primitives, {first.stats.events} events")

    # 1. A routing change makes the inter-stage bus slow: the design now
    #    misses setup at the output register.  The incremental run pays
    #    only for the cone behind the edited net — and byte-identity with
    #    a from-scratch run is asserted, not assumed.
    session.edit(WireDelayEdit("AFTER 1", (0.0, 25.0)))
    broken = assert_incremental_equivalent(session)
    show("slow bus (25 ns):", broken)
    assert not broken.ok
    print(broken.result.error_listing().splitlines()[0])

    # 2. The prescreen: the static windows pass renders an instant (and
    #    conservative) verdict before the engine confirms it.
    session.edit(WireDelayEdit("AFTER 1", (0.0, 20.0)))
    screened = session.reverify(prescreen=True)
    print(f"  prescreen: ok={screened.prescreen.ok} "
          f"worst_slack={screened.prescreen.worst_slack_ps} ps "
          f"({screened.prescreen.seconds * 1000:.1f} ms)")

    # 3. Fix the routing and relax the barrel slice that was marginal:
    #    one batched re-verification, clean again.
    session.edit(
        WireDelayEdit("AFTER 1", None),
        ParamEdit("s2/rot", {"delay": (2.2, 6.0)}),
    )
    fixed = assert_incremental_equivalent(session)
    show("rerouted + faster slice:", fixed)
    assert fixed.ok

    print(f"session served {session.runs} runs on one engine; "
          f"{len(session.intern_table)} waveforms interned")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
