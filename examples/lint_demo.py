#!/usr/bin/env python3
"""Static design-rule analysis: catching the Figure 1-5 hazard before a run.

Builds the classic gated-clock mistake — an AND between a clock and an
enable with no ``&A`` stability directive — three ways, and shows what
``repro.lint`` reports for each:

1. the broken circuit (the gate fires ``gated-clock``, an error);
2. the idiomatic fix (``&H`` on the clock input — clean);
3. the same analysis over a ``.scald`` source file, where every finding
   carries a ``file:line`` span threaded through macro expansion.
"""

from pathlib import Path

from repro.lint import LintConfig, lint_circuit, lint_path
from repro.netlist import Circuit, Connection
from repro.reporting import lint_text

FIXTURE = Path(__file__).parent.parent / "tests" / "fixtures" / "gated_clock.scald"


def broken() -> Circuit:
    c = Circuit("BROKEN", period_ns=50.0, clock_unit_ns=6.25)
    c.gate("AND", "GCLK", ["MAIN CLK .P2-3", "ENABLE .S0-8"],
           delay=(1.0, 2.9), name="gate")
    c.reg("HELD", clock="GCLK", data="DATA .S0-6", delay=(1.5, 4.5))
    return c


def fixed() -> Circuit:
    c = Circuit("FIXED", period_ns=50.0, clock_unit_ns=6.25)
    ck = Connection(net=c.net("MAIN CLK .P2-3"), directives="H")
    c.gate("AND", "GCLK", [ck, "ENABLE .S0-8"], delay=(1.0, 2.9), name="gate")
    c.reg("HELD", clock="GCLK", data="DATA .S0-6", delay=(1.5, 4.5))
    return c


def main() -> None:
    print("-- the Figure 1-5 mistake, hand-built --")
    bad = lint_circuit(broken())
    print(lint_text(bad))
    assert any(d.rule == "gated-clock" for d in bad.errors)
    print()

    print("-- the &H fix --")
    good = lint_circuit(fixed(), LintConfig(disabled=frozenset({"dead-net"})))
    print(lint_text(good))
    assert good.ok and not good.warnings
    print()

    print(f"-- the same hazard in source form ({FIXTURE.name}) --")
    from_source = lint_path(str(FIXTURE))
    print(lint_text(from_source))
    spans = {(d.rule, d.line) for d in from_source.diagnostics}
    assert ("gated-clock", 10) in spans, spans
    assert ("short-directive", 13) in spans, spans
    assert from_source.exit_code() == 1


if __name__ == "__main__":
    main()
