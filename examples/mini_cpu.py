#!/usr/bin/env python3
"""Verifying a complete mini-CPU datapath — the S-1 workflow in miniature.

A three-stage pipelined processor built entirely from the Chapter III
component library: program counter with CORR feedback, instruction memory
and register file from the Figure 3-5 RAM macro, gated write strobes under
&H directives, a phase-multiplexed register-file address, the Figure 3-9
ALU with output latch, and pipeline registers with setup/hold checkers.

The run shows the day-by-day workflow of section 3.3.1: verify the clean
design, draw its timing, then plant each of three realistic timing bugs and
watch the Verifier find them (with critical-path explanations).
"""

from repro import TimingVerifier
from repro.reporting import timing_diagram
from repro.reporting.explain import explain_violation
from repro.workloads.minicpu import BUGS, build_minicpu


def main() -> None:
    cpu = build_minicpu()
    result = TimingVerifier(cpu).verify()
    print(f"clean design: {cpu} — {len(result.violations)} violations, "
          f"{result.stats.events} events")
    print()
    print(timing_diagram(result, [
        "PIPE CLK .P0-1", "PC CLK .P3-4", "WE CLK .P5-6", "PC",
        "INSTR", "INSTR REG", "CTL", "RF ADR", "RF OUT", "OPS REG",
        "ALU OUT .S3.4-8", "WB DATA",
    ]))
    assert result.ok

    for bug, description in BUGS.items():
        print()
        print("=" * 72)
        print(f"seeded bug '{bug}': {description}")
        print("=" * 72)
        buggy = build_minicpu(bug=bug)
        bug_result = TimingVerifier(buggy).verify()
        assert not bug_result.ok
        for violation in bug_result.violations:
            print(f"  {violation}")
        print()
        print(explain_violation(buggy, bug_result, bug_result.violations[0]))


if __name__ == "__main__":
    main()
