#!/usr/bin/env python3
"""Modular verification of an S-1-style datapath (sections 2.5.2, 3.3.1).

Splits a design into two sections — the Figure 3-12 arithmetic slice and a
writeback stage that consumes its result — and verifies them independently,
exactly the workflow that let each S-1 designer check their own section
"even on a day-by-day basis".  Then demonstrates the interface-assertion
consistency check: when the writeback designer assumes the ALU result is
stable *earlier* than the arithmetic section guarantees, the whole-design
claim is rejected even though each section might pass alone.
"""

from repro import Circuit
from repro.modular import verify_sections
from repro.workloads import fig_3_12_alu_datapath


def writeback_section(alu_assertion: str) -> Circuit:
    """A consumer section reading the ALU result across the interface."""
    c = Circuit("writeback", period_ns=50.0, clock_unit_ns=6.25)
    wb_clk = c.net("WB CLK .P0-1")
    wb_clk.wire_delay_ps = (0, 0)
    c.reg("WB REG", clock=wb_clk, data=f"ALU OUT {alu_assertion}",
          delay=(1.5, 4.5), width=36)
    c.setup_hold(f"ALU OUT {alu_assertion}", wb_clk, setup=2.5, hold=1.5,
                 width=36)
    return c


def main() -> None:
    print("=" * 72)
    print("Consistent interfaces: both sections clean, whole design verified")
    print("=" * 72)
    result = verify_sections({
        "arithmetic": fig_3_12_alu_datapath(),
        "writeback": writeback_section(".S7-12"),
    })
    print(result.report())
    assert result.ok

    print()
    print("=" * 72)
    print("Writeback assumes stability from unit 5; arithmetic promises unit 7")
    print("=" * 72)
    result = verify_sections({
        "arithmetic": fig_3_12_alu_datapath(),
        "writeback": writeback_section(".S5-12"),
    })
    print(result.report())
    assert not result.ok
    print()
    print("The inconsistency is caught at the interface even though the "
          "sections were verified separately.")


if __name__ == "__main__":
    main()
