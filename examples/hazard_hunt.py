#!/usr/bin/env python3
"""Hunting the Figure 1-5 gated-clock hazard, three ways.

The circuit: a register is conditionally clocked by ``AND(CLOCK, ENABLE)``,
but ENABLE is generated too late — it only reaches its inhibiting zero at
25 ns while CLOCK is high 20-30 ns, so a 5 ns runt pulse may clock the
register.  This is the thesis's archetypal "circuit that usually works but
occasionally fails".

1. The Timing Verifier's minimum-pulse-width checker flags the possible
   runt in one symbolic pass.
2. The ``&A`` evaluation directive reports the unstable control directly.
3. The min/max *logic simulator* baseline only sees the hazard on a vector
   where ENABLE actually falls late — timing coverage depends on stimulus.
"""

from repro import Circuit, EXACT, TimingVerifier
from repro.baselines import LogicSimulator
from repro.workloads import fig_1_5_gated_clock


def main() -> None:
    print("1) Timing Verifier, pulse-width checker")
    result = TimingVerifier(fig_1_5_gated_clock(), EXACT).verify()
    for violation in result.violations:
        print(f"   {violation}")

    print()
    print("2) Timing Verifier, &A directive on the clock input")
    result = TimingVerifier(fig_1_5_gated_clock(use_directive=True), EXACT).verify()
    for violation in result.violations:
        print(f"   {violation}")

    print()
    print("3) Logic-simulator baseline (section 1.4.1)")
    # The same gate, with ENABLE's late fall modelled explicitly: it
    # arrives through a slow inverter, 25 ns into the cycle.
    c = Circuit("fig-1-5-sim", period_ns=50.0, clock_unit_ns=10.0)
    c.gate("NOT", "ENABLE", ["SLOW CTL"], delay=(24.0, 25.0), name="slow inv")
    c.gate("AND", "REG CLOCK", ["CLOCK .P2-3", "ENABLE"], name="gate")
    c.reg("Q", clock="REG CLOCK", data="DATA", delay=(1.0, 3.0))

    quiet = LogicSimulator(c)
    quiet.drive("SLOW CTL", [0, 0])  # enable stays high: no runt, no report
    quiet.drive("DATA", [1, 1])
    r = quiet.run(cycles=2)
    print(f"   vector CTL=0: {len(r.violations)} findings — looks fine")

    loud = LogicSimulator(c)
    loud.drive("SLOW CTL", [0, 1])  # this vector creates the 5 ns runt
    loud.drive("DATA", [1, 1])
    r = loud.run(cycles=2)
    final = r.final_values["REG CLOCK"]
    print(f"   vector CTL=0->1: REG CLOCK passes through a runt "
          f"(gate events: {r.events}); only this stimulus exposes it")
    print()
    print("The Verifier needed no vectors; the simulator's answer depends "
          "on the ones you thought to try (section 1.4.1's core problem).")


if __name__ == "__main__":
    main()
