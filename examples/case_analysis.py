#!/usr/bin/env python3
"""Case analysis on the Figure 2-6 circuit (section 2.7).

Two multiplexers share complementary uses of one control signal; each
element contributes 10 ns and each long input leg an extra 10 ns.  Without
value knowledge the Verifier must assume both multiplexers can select their
long legs at once and computes a 40 ns input-to-output delay.  The designer
knows the selects are complementary and specifies two cases::

    CONTROL SIGNAL = 0;
    CONTROL SIGNAL = 1;

Each case maps the control's STABLE values to a constant, the impossible
path disappears, and both cases measure the true 30 ns.  Between cases only
the affected part of the circuit is re-evaluated.
"""

from repro import EXACT, TimingVerifier
from repro.workloads import fig_2_6_case_analysis


def settle_ns(waveform) -> float:
    """When the output stops changing, in ns from cycle start."""
    last = max(end for _s, end, v in waveform.iter_segments() if str(v) == "C")
    return last / 1000.0


def main() -> None:
    print("Without case analysis:")
    result = TimingVerifier(fig_2_6_case_analysis(with_cases=False), EXACT).verify()
    out = result.waveform("OUTPUT")
    print(f"  OUTPUT: {out.describe()}")
    print(f"  settles {settle_ns(out) - 10.0:.0f} ns after the input "
          "(the impossible 40 ns path)")
    print()

    print("With the two cases of section 2.7.1:")
    result = TimingVerifier(fig_2_6_case_analysis(with_cases=True), EXACT).verify()
    for case in result.cases:
        out = case.waveforms["OUTPUT"]
        assignment = ", ".join(f"{k}={v}" for k, v in case.assignments.items())
        print(f"  case {case.index} ({assignment}):")
        print(f"    OUTPUT: {out.describe()}  "
              f"(path {settle_ns(out) - 10.0:.0f} ns; {case.events} events)")
    print()
    print("The second case re-evaluated only the affected primitives "
          f"({result.cases[1].events} events vs {result.cases[0].events}).")


if __name__ == "__main__":
    main()
