# Constraints for examples/designs/shifter.scald — the quickstart SDC.
#
# The design's asserted period is 50 ns; create_clock must agree (a
# mismatch is reported, the design period wins).  The 0.1 ns uncertainty
# tightens both registers' setup/hold guards; the design still passes
# with margin (static setup slack drops from +0.4 ns to +0.3 ns).
create_clock -period 50 -name MAINCLK "MAIN CLK .P2-3"
set_clock_uncertainty 0.1 MAINCLK
