# Constraints for multicycle.scald: the slow path is sampled every other
# clock, so its setup requirement moves one full cycle out.  On the
# verifier's folded single-period axis a 2-cycle setup guard has nothing
# left to protect (the effective setup is 2.5 - 50 ns < 0); the hold side
# is untouched and still enforced.  Expected static slack flips from
# -1502 ps (unconstrained) to +998 ps (hold-limited); see the design's
# header comment for the arithmetic.
create_clock -period 50 -name MAINCLK "MAIN CLK .P2-3"
set_multicycle_path 2 -setup -to SLOW
