# Modern asynchronous-control checks for recovery.scald.
#
# set_recovery: the control must be stable 4 ns before the active clock
# edge (like setup, but for SET/RESET release).  set_removal: it must be
# held 2 ns past the edge (like hold).  Expected static slacks are worked
# out in recovery.scald's header comment: +7500 ps and +11500 ps.
create_clock -period 50 -name MAINCLK "MAIN CLK .P2-3"
set_recovery 4 hold
set_removal 2 hold
