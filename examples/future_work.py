#!/usr/bin/env python3
"""The thesis's future-work chapter (4.2), exercised.

Three of the four section 4.2 research directions are implemented in this
repository; this example runs each:

* 4.2.1 — self-timed circuits: measure a module's propagation-delay
  envelope and size its matched "done" delay;
* 4.2.2 — different rising and falling delays: an nMOS-style inverter
  chain analysed directionally instead of with max-of-both;
* 4.2.4 — probability-based analysis: the 3-sigma clock vs the min/max
  clock, and the correlation caveat that made the thesis keep min/max.

(4.2.3 — the correlation problem — is part of the main reproduction: see
``repro.workloads.fig_4_1_correlation`` and the ``CORR`` library macro.)
"""

from repro import Circuit, EXACT, TimingVerifier
from repro.baselines.statistical import StatisticalAnalyzer
from repro.selftimed import done_delay_ns, module_delay


def self_timed() -> None:
    print("4.2.1 — module delay for self-timed design")
    c = Circuit("alu-module", period_ns=200.0, clock_unit_ns=25.0)
    for name in ("SUM", "CARRY OUT"):
        c.net(name).wire_delay_ps = (0, 0)
    c.chg("CARRY OUT", ["A", "B", "CARRY IN"], delay=(1.5, 5.0), name="carry")
    c.chg("SUM", ["A", "B", "CARRY OUT"], delay=(2.0, 7.0), name="sum")
    delays = module_delay(c, ["A", "B", "CARRY IN"], ["SUM", "CARRY OUT"])
    for d in delays.values():
        print(f"   {d}")
    print(f"   matched 'done' delay: {done_delay_ns(delays, margin_ns=1.0):.1f} ns"
          " (slowest output + 1 ns margin)")
    print()


def rise_fall() -> None:
    print("4.2.2 — different rising and falling delays (nMOS)")
    c = Circuit("nmos", period_ns=50.0, clock_unit_ns=10.0)
    prev = c.net("CK .P1-2")
    prev.wire_delay_ps = (0, 0)
    for i in range(3):
        out = c.net(f"INV{i}")
        out.wire_delay_ps = (0, 0)
        c.gate("NOT", out, [prev], rise_delay=(1.0, 2.0),
               fall_delay=(4.0, 6.0), name=f"inv{i}")
        prev = out
    result = TimingVerifier(c, EXACT).verify()
    for i in range(3):
        print(f"   INV{i}: {result.waveform(f'INV{i}').describe()}")
    print("   each level alternates the rise/fall roles; max-of-both would"
          " smear every edge by 1..6 ns")
    print()


def statistical() -> None:
    print("4.2.4 — probability-based analysis")
    c = Circuit("stat", period_ns=100.0, clock_unit_ns=12.5)
    ck = c.net("CK .P1-2")
    ck.wire_delay_ps = (0, 0)
    c.reg("Q0", clock=ck, data="D .S0-7", delay=(1.5, 4.5))
    prev = "Q0"
    for i in range(8):
        nxt = f"N{i}"
        c.net(nxt).wire_delay_ps = (0, 0)
        c.gate("BUF", nxt, [prev], delay=(2.0, 7.0), name=f"g{i}")
        prev = nxt
    c.setup_hold(prev, ck, setup=2.5, hold=0.0)
    for rho, label in ((0.0, "uncorrelated"), (1.0, "one-wafer (rho=1)")):
        report = StatisticalAnalyzer(c, EXACT, correlation=rho).analyze()
        det, stat = report.min_period_ps()
        print(f"   {label:<20} min period: min/max {det / 1000:.1f} ns, "
              f"3-sigma {stat / 1000:.1f} ns")
    print("   -> uncorrelated parts could run ~29% faster than min/max"
          " predicts; correlated parts could not — the thesis's reason to"
          " keep min/max for the S-1")


def main() -> None:
    self_timed()
    rise_fall()
    statistical()


if __name__ == "__main__":
    main()
