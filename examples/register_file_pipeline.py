#!/usr/bin/env python3
"""The Figure 2-5 register-file circuit, end to end.

Reproduces the thesis's central worked example: a 16-word by 32-bit
register file with an address multiplexer, gated write-enable, and output
register, verified under the S-1 design rules (50 ns cycle, 6.25 ns clock
units, 0.0/2.0 ns default wire delay, ±1 ns precision-clock skew).

The run regenerates:
  * the Figure 3-10 summary listing of signal values over the cycle, and
  * the two Figure 3-11 setup errors — the RAM address checker missed by
    the full 3.5 ns, and the output register missed by ~1 ns with its
    clock starting to rise at 49.0 ns.
"""

from repro import TimingVerifier
from repro.reporting import timing_diagram, xref_listing
from repro.workloads import fig_2_5_register_file


def main() -> None:
    circuit = fig_2_5_register_file()
    print(f"circuit: {circuit}")
    result = TimingVerifier(circuit).verify()

    print()
    print(result.summary_listing())  # Figure 3-10
    print()
    print(result.error_listing())  # Figure 3-11
    print()
    print(timing_diagram(result, [
        "WE CLK .P2-3", "RAM WE", "ADR", "W DATA .S6.5-6",
        "RAM OUT", "REG CLK .P0-1", "R DATA",
    ]))
    print()
    print(xref_listing(result))
    print()
    print(f"{len(result.violations)} violations "
          f"(the thesis's Figure 3-11 shows the same two setup errors)")
    assert len(result.violations) == 2


if __name__ == "__main__":
    main()
