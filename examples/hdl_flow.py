#!/usr/bin/env python3
"""The textual SCALD flow: source file -> Macro Expander -> Timing Verifier.

Reads ``examples/designs/shifter.scald``, expands it through the two-pass
Macro Expander (section 3.3.2's phases), verifies all three cases of its
one-hot shift controls, and prints the execution-statistics tables in the
shape of Table 3-1.
"""

from pathlib import Path

from repro import TimingVerifier
from repro.hdl.expander import MacroExpander
from repro.reporting import phase_table

DESIGN = Path(__file__).parent / "designs" / "shifter.scald"


def main() -> None:
    expander = MacroExpander.from_file(str(DESIGN))
    circuit = expander.expand()
    print(f"expanded: {circuit}")
    print(f"synonyms resolved in Pass 1: {expander.stats.synonyms}")
    print()

    result = TimingVerifier(circuit).verify()
    print(result.summary_listing(case=0))
    print()
    print(result.error_listing())
    print()
    for case in result.cases:
        print(f"case {case.index}: {case.assignments} — {case.events} events")
    print()
    print(expander.stats.table())
    print()
    print(phase_table(result))
    assert result.ok, [str(v) for v in result.violations]


if __name__ == "__main__":
    main()
