#!/usr/bin/env python3
"""Quickstart: verify the timing of a small synchronous circuit.

Builds a two-stage pipeline — register, combinational cloud, register —
with designer assertions on the interface signals, runs the Timing
Verifier, and prints the thesis-style listings.  One of the paths is too
slow, so the run finds a setup violation; the fix is then applied and the
design re-verified clean, the day-by-day workflow of section 3.3.1.
"""

from repro import Circuit, TimingVerifier


def build(alu_max_delay_ns: float) -> Circuit:
    """A 50 ns pipeline stage.

    Data arrives stable by clock unit 0 and may change after unit 6
    (37.5 ns); the stage captures on the rising edge of the main clock at
    unit 2 (12.5 ns).
    """
    c = Circuit("quickstart", period_ns=50.0, clock_unit_ns=6.25)

    # The precision clock's distribution is trimmed; its ±1 ns assertion
    # skew already covers the variation (the S-1 convention, section 2.5.1).
    clk = c.net("MAIN CLK .P2-3")
    clk.wire_delay_ps = (0, 0)

    # Stage input register: clocked at unit 2, data asserted stable 0-6.
    c.reg("STAGE IN", clock=clk, data="BUS IN .S0-6",
          delay=(1.5, 4.5), width=16)
    c.setup_hold("BUS IN .S0-6", clk, setup=2.5, hold=1.5)

    # A function unit whose output timing is all that matters: CHG models
    # it without knowing the logic function (section 2.4.2).  The second
    # operand is a configuration value, stable all cycle.
    c.chg("ALU OUT", ["STAGE IN", "OPERAND B .S0-8"],
          delay=(3.0, alu_max_delay_ns), width=16)

    # Capture register at the *next* cycle's edge: the data must settle
    # setup-time before unit 2 + one period.
    c.reg("STAGE OUT", clock=clk, data="ALU OUT",
          delay=(1.5, 4.5), width=16)
    c.setup_hold("ALU OUT", clk, setup=2.5, hold=1.5)
    return c


def main() -> None:
    print("=" * 72)
    print("First attempt: a 55 ns worst-case function unit in a 50 ns cycle")
    print("=" * 72)
    result = TimingVerifier(build(alu_max_delay_ns=55.0)).verify()
    print(result.summary_listing())
    print()
    print(result.error_listing())
    assert not result.ok, "expected a setup violation"

    print()
    print("=" * 72)
    print("After the fix: the unit is pipelined down to 20 ns worst case")
    print("=" * 72)
    result = TimingVerifier(build(alu_max_delay_ns=20.0)).verify()
    print(result.summary_listing())
    print()
    print(result.error_listing())
    assert result.ok, "expected a clean design"
    print()
    print(f"events processed: {result.stats.events}, "
          f"primitive evaluations: {result.stats.evaluations}")


if __name__ == "__main__":
    main()
