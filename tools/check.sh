#!/bin/sh
# Offline quality gate: tier-1 tests, self-lint of every shipped .scald
# source, and the engine-vs-static crosscheck smoke.  No network, no
# arguments; run from anywhere inside the repository.
#
#   tools/check.sh
#
# Exit status: 0 when every stage passes, 1 on the first failure.
# REPRO_S1_SCALE is honoured by the test suite exactly as with pytest.

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

# Run the package from src/ so the gate works without an editable install.
PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== tier-1 tests =="
python -m pytest tests/ -q

echo
echo "== scald-lint --strict over shipped .scald sources =="
# Design sources self-lint clean; the library ships macro definitions that
# lint as sources too.  find keeps the gate honest when designs are added.
designs=$(find examples src/repro/library -name '*.scald' | sort)
if [ -z "$designs" ]; then
    echo "no .scald sources found" >&2
    exit 1
fi
# shellcheck disable=SC2086
python -m repro.lint.cli --strict $designs

echo
echo "== crosscheck smoke: static windows enclose engine transitions =="
# A sibling .sdc rides along: multicycle.scald only verifies clean under
# its constraints, and constrained runs also exercise the per-check
# verdict pass of the crosscheck.
for design in examples/designs/*.scald; do
    sdc="${design%.scald}.sdc"
    if [ -f "$sdc" ]; then
        python -m repro.cli "$design" --sdc "$sdc" --crosscheck >/dev/null
        echo "ok: $design (with $sdc)"
    else
        python -m repro.cli "$design" --crosscheck >/dev/null
        echo "ok: $design"
    fi
done
python - <<'EOF'
from repro.core.verifier import TimingVerifier
from repro.sta import check_encloses, compute_windows
from repro.workloads.synth import SynthConfig, generate

for chips, seed in ((60, 1), (200, 7), (500, 1980)):
    circuit, _ = generate(SynthConfig(chips=chips, seed=seed)).circuit()
    result = TimingVerifier(circuit).verify()
    cc = check_encloses(result, compute_windows(circuit))
    assert result.ok and cc.ok, (chips, seed, cc.failures[:3])
    print(f"ok: synth chips={chips} seed={seed} "
          f"({cc.nets_checked} nets x {cc.cases_checked} cases)")
EOF

echo
echo "== SDC gate: shipped constraint files parse, lint and agree =="
# Every shipped .sdc must resolve against its design with zero findings
# under --strict, and the text and JSON reporters must agree on the
# verdict (same exit code, parseable stdout).
for sdc in examples/designs/*.sdc; do
    design="${sdc%.sdc}.scald"
    python -m repro.lint.cli --strict "$design" --sdc "$sdc" >/dev/null
    echo "ok: $sdc (lints clean against $design)"
done
for design in examples/designs/shifter.scald examples/designs/multicycle.scald; do
    sdc="${design%.scald}.sdc"
    text_rc=0; json_rc=0
    python -m repro.sta.cli "$design" --sdc "$sdc" >/dev/null 2>&1 || text_rc=$?
    python -m repro.sta.cli "$design" --sdc "$sdc" --json 2>/dev/null \
        | python -c 'import json,sys; json.load(sys.stdin)' || json_rc=$?
    if [ "$text_rc" -ne 0 ] || [ "$json_rc" -ne 0 ]; then
        echo "scald-sta text/JSON disagree on $design (text=$text_rc json=$json_rc)" >&2
        exit 1
    fi
    echo "ok: $design text and JSON reporters agree"
done

echo
echo "== word-level vs bit-blast differential =="
# The word-level engine must be undetectable: byte-identical violations,
# cross-reference and verdict against the per-bit scalar oracle, on the
# shipped designs (with their constraints) and a synthetic sample.
python - <<'EOF'
from pathlib import Path

from repro.constraints import load_constraints
from repro.core.verifier import TimingVerifier
from repro.hdl.expander import MacroExpander
from repro.netlist import bit_blast
from repro.wordcheck import assert_word_equivalent
from repro.workloads.synth import SynthConfig, generate

for path in sorted(Path("examples/designs").glob("*.scald")):
    sdc = path.with_suffix(".sdc")
    for use_sdc in (False, True):
        if use_sdc and not sdc.exists():
            continue

        def run(blasted):
            circuit = MacroExpander.from_file(str(path)).expand()
            cons = load_constraints(str(sdc), circuit) if use_sdc else None
            if blasted:
                circuit = bit_blast(circuit)
            return TimingVerifier(circuit, constraints=cons).verify()

        word_circuit = MacroExpander.from_file(str(path)).expand()
        assert_word_equivalent(run(False), run(True), word_circuit)
    print(f"ok: {path} word == bit-blast")

for chips, seed in ((60, 1), (200, 7), (500, 1980)):
    circuit, _ = generate(SynthConfig(chips=chips, seed=seed)).circuit()
    word = TimingVerifier(circuit).verify()
    circuit2, _ = generate(SynthConfig(chips=chips, seed=seed)).circuit()
    blast = TimingVerifier(bit_blast(circuit2)).verify()
    assert_word_equivalent(word, blast, circuit)
    ratio = blast.stats.events / word.stats.events
    assert ratio >= 3.0, (chips, seed, ratio)
    print(f"ok: synth chips={chips} seed={seed} "
          f"word == bit-blast ({ratio:.1f}x fewer events)")
EOF

echo
echo "== Fmax gate: engine clean at Fmax, violating one picosecond below =="
# The parametric solver's answer must be the *engine's* boundary: on every
# shipped design and a synthetic sample, the verifier passes at the solved
# minimum period and fails at period - 1.  Designs that are not
# period-limited (no check tightens as the clock speeds up, or a
# period-independent violation) are reported and skipped.
python - <<'EOF'
from pathlib import Path

from repro.core.verifier import TimingVerifier
from repro.hdl.expander import MacroExpander
from repro.constraints import load_constraints
from repro.sta.parametric import _at_period, solve_fmax
from repro.workloads.synth import SynthConfig, generate


def engine_ok(circuit, constraints, period_ps):
    with _at_period(circuit, period_ps):
        return TimingVerifier(circuit, constraints=constraints).verify().ok


def gate(name, circuit, constraints=None):
    res = solve_fmax(circuit, constraints=constraints)
    if not res.period_limited or res.period_ps is None:
        why = "not period-limited" if not res.period_limited else "no clean period"
        print(f"ok: {name} ({why}; {res.engine_runs} engine runs)")
        return
    t = res.period_ps
    assert engine_ok(circuit, constraints, t), (name, t, "violates at Fmax")
    assert not engine_ok(circuit, constraints, t - 1), (name, t, "clean below Fmax")
    print(f"ok: {name} clean at {t} ps, violating at {t - 1} ps "
          f"({res.method}, {res.engine_runs} engine runs)")


for path in sorted(Path("examples/designs").glob("*.scald")):
    circuit = MacroExpander.from_file(str(path)).expand()
    sdc = path.with_suffix(".sdc")
    cons = load_constraints(str(sdc), circuit) if sdc.exists() else None
    gate(str(path), circuit, cons)

for chips, seed in ((60, 1), (200, 7)):
    circuit, _ = generate(SynthConfig(chips=chips, seed=seed)).circuit()
    gate(f"synth chips={chips} seed={seed}", circuit)
EOF

echo
echo "== serial-vs-parallel equivalence gate (warm pool, byte identity) =="
# A pooled Session forks its workers once; two verifies plus an
# edit -> reverify must reuse the same warm pool and stay byte-identical
# to a serial Session driven through the same script.  Single-case
# designs exercise the partitioned path; the SDC case proves the
# constraints actually ride along to the workers.
python - <<'EOF'
from repro import Session
from repro.constraints import load_constraints
from repro.core.verifier import TimingVerifier
from repro.hdl.expander import MacroExpander
from repro.incremental import WireDelayEdit
from repro.parallel import verify_parallel
from repro.workloads.synth import SynthConfig, generate


def synth(chips, seed, cases):
    circuit, _ = generate(SynthConfig(chips=chips, seed=seed)).circuit()
    for k in range(cases):
        circuit.add_case_by_name({"MUX CTL .S0-8": k % 2})
    return circuit


def same_listings(serial, par, where):
    assert serial.error_listing() == par.error_listing(), where
    assert all(
        serial.summary_listing(case=c) == par.summary_listing(case=c)
        for c in range(len(serial.cases))
    ), where


for chips, seed in ((60, 1), (200, 7)):
    pooled = Session(synth(chips, seed, 4), jobs=2)
    serial = Session(synth(chips, seed, 4))
    first, again = pooled.verify(), pooled.verify()
    oracle = serial.verify()
    same_listings(oracle, first, (chips, seed, "cold"))
    same_listings(oracle, again, (chips, seed, "warm"))
    edit = WireDelayEdit("MUX CTL .S0-8", (0.0, 2.0))
    pooled.edit(edit)
    serial.edit(edit)
    par_inc = pooled.reverify(prescreen=False).result
    ser_inc = serial.reverify(prescreen=False).result
    same_listings(ser_inc, par_inc, (chips, seed, "reverify"))
    stats = par_inc.pool
    assert stats.pool_starts == 1, (chips, seed, stats)
    assert stats.runs == 3 and stats.warm_runs >= 1, (chips, seed, stats)
    assert stats.edits_shipped == 1, (chips, seed, stats)
    pooled.close()
    print(f"ok: synth chips={chips} seed={seed} warm pool == serial "
          f"(2 verifies + edit->reverify on {stats.workers} workers, "
          f"{stats.pool_starts} fork)")

# Single case: the circuit is partitioned along its register cuts and
# the workers exchange boundary waveforms to the global fixed point.
single, _ = generate(SynthConfig(chips=200, seed=7)).circuit()
par = verify_parallel(single, jobs=4)
single2, _ = generate(SynthConfig(chips=200, seed=7)).circuit()
serial = TimingVerifier(single2).verify()
same_listings(serial, par, "partitioned")
assert par.pool is not None and par.pool.partitions >= 2, par.pool
print(f"ok: synth chips=200 seed=7 single case partitioned == serial "
      f"({par.pool.partitions} partitions, "
      f"{par.pool.boundary_rounds} boundary rounds)")

# SDC constraints must reach the workers: the constrained parallel run
# matches the constrained serial run, and differs from unconstrained.
def multicycle(n_cases):
    circuit = MacroExpander.from_file(
        "examples/designs/multicycle.scald").expand()
    for k in range(n_cases):
        circuit.add_case_by_name({"DIN .S0-6": k % 2})
    return circuit, load_constraints(
        "examples/designs/multicycle.sdc", circuit)


circuit, cons = multicycle(4)
par = verify_parallel(circuit, jobs=2, constraints=cons)
circuit2, cons2 = multicycle(4)
serial = TimingVerifier(circuit2, constraints=cons2).verify()
same_listings(serial, par, "sdc")
bare = verify_parallel(multicycle(4)[0], jobs=2)
assert serial.ok and par.ok and not bare.ok
print("ok: multicycle.sdc constrained --jobs 2 == serial "
      "(and unconstrained correctly fails)")
EOF

echo
echo "== incremental-equivalence gate: reverify == from-scratch =="
# Every typed edit class on the shipped designs, plus a deterministic
# edit sweep over synthetic circuits: the incremental run's listings must
# be byte-identical to a from-scratch run on the same edited circuit
# (assert_incremental_equivalent raises otherwise).
python - <<'EOF'
from repro import Session
from repro.incremental import (
    AssertionEdit,
    ParamEdit,
    ReconnectEdit,
    WireDelayEdit,
    assert_incremental_equivalent,
)
from repro.workloads.synth import SynthConfig, generate

edits_by_design = {
    "examples/designs/shifter.scald": [
        WireDelayEdit("AFTER 1", (0.0, 25.0)),
        ParamEdit("s2/rot", {"delay": (2.0, 6.0)}),
        ReconnectEdit("outreg/r", "DATA", "AFTER 1"),
        WireDelayEdit("AFTER 1", None),
    ],
    "examples/designs/multicycle.scald": [
        AssertionEdit("DIN .S0-6", ".S1-6"),
        ParamEdit("su", {"setup": 1.0}),
    ],
    "examples/designs/recovery.scald": [
        ParamEdit("hold", {"delay": (1.0, 4.0)}),
    ],
}
for path, edits in edits_by_design.items():
    session = Session.from_file(path)
    session.verify()
    for edit in edits:
        session.edit(edit)
        assert_incremental_equivalent(session)
    print(f"ok: {path} ({len(edits)} edits, reverify == scratch)")

for chips, seed in ((60, 1), (200, 7)):
    circuit, _ = generate(SynthConfig(chips=chips, seed=seed)).circuit()
    session = Session(circuit)
    session.verify()
    nets = sorted(n for n in circuit.nets if n.startswith("S0 R "))
    for i, net in enumerate(nets[:4]):
        session.edit(WireDelayEdit(net, (0.0, 0.25 * (i + 1))))
        inc = assert_incremental_equivalent(session)
    print(f"ok: synth chips={chips} seed={seed} reverify == scratch "
          f"(last edit dirtied {inc.stats.dirty_primitives} primitives)")
EOF

echo
echo "== scald-serve smoke: HTTP answers match the direct API =="
# Start the server on an ephemeral port, drive a load/verify/edit/
# reverify round-trip through the wire protocol, and require the same
# listings the in-process Session produces.
python - <<'EOF'
import json
import subprocess
import sys
import threading

from repro import Session
from repro.incremental import WireDelayEdit, edit_to_doc
from repro.server import SessionClient

proc = subprocess.Popen(
    [sys.executable, "-m", "repro.server", "--port", "0"],
    stdout=subprocess.PIPE,
    text=True,
)
try:
    port = json.loads(proc.stdout.readline())["port"]
    client = SessionClient("127.0.0.1", port)
    assert client.health()["ok"]

    sid = client.create(path="examples/designs/shifter.scald")
    wire_full = client.verify(sid)
    client.edit(sid, edit_to_doc(WireDelayEdit("AFTER 1", (0.0, 25.0))))
    wire_inc = client.reverify(sid, prescreen=False)

    direct = Session.from_file("examples/designs/shifter.scald")
    full = direct.verify()
    direct.edit(WireDelayEdit("AFTER 1", (0.0, 25.0)))
    inc = direct.reverify(prescreen=False)

    assert wire_full["ok"] and wire_full["error_listing"] == full.error_listing()
    assert wire_inc["incremental"] and not wire_inc["ok"]
    assert wire_inc["error_listing"] == inc.result.error_listing()
    assert wire_inc["summary_listing"] == inc.result.summary_listing()
    client.delete(sid)
    print("ok: scald-serve load/verify/edit/reverify == direct Session")

    # A session created with "jobs" verifies on a warm worker pool behind
    # the same wire protocol; listings stay identical and the second run
    # reuses the forked workers.
    psid = client.create(path="examples/designs/shifter.scald", jobs=2)
    wire_par = client.verify(psid)
    wire_par2 = client.verify(psid)
    assert wire_par["error_listing"] == full.error_listing()
    assert wire_par["summary_listing"] == full.summary_listing()
    assert wire_par2["summary_listing"] == full.summary_listing()
    pool = wire_par2["profile"]["pool"]
    assert pool["workers"] == 2 and pool["pool_starts"] == 1
    assert pool["runs"] == 2 and pool["warm_runs"] >= 1
    client.delete(psid)  # drop closes the pool server-side
    print("ok: scald-serve jobs=2 pooled verify == direct Session "
          "(pool reused across runs)")
finally:
    proc.terminate()
    proc.wait(timeout=10)
EOF

echo
echo "all checks passed."
