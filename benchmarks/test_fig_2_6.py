"""Figure 2-6: the circuit requiring case analysis (section 2.7).

Without case analysis the Verifier computes a 40 ns INPUT-to-OUTPUT delay
through the two multiplexers' long legs; with the designer's two cases
(CONTROL = 0; CONTROL = 1) the select lines are complementary and the delay
is 30 ns for both cases.  Incremental re-evaluation keeps the second case
cheap.
"""

from repro import EXACT, TimingVerifier
from repro.workloads import fig_2_6_case_analysis


def _settle(waveform) -> int:
    return max(end for _s, end, v in waveform.iter_segments() if str(v) == "C")


def test_fig_2_6_case_analysis(benchmark, report):
    without = TimingVerifier(
        fig_2_6_case_analysis(with_cases=False), EXACT
    ).verify()
    with_cases = benchmark(
        lambda: TimingVerifier(fig_2_6_case_analysis(with_cases=True), EXACT).verify()
    )

    # INPUT settles at 10 ns; path delay = OUTPUT settle - 10 ns.
    no_cases_delay = (_settle(without.waveform("OUTPUT")) - 10_000) / 1000
    case_delays = [
        (_settle(case.waveforms["OUTPUT"]) - 10_000) / 1000
        for case in with_cases.cases
    ]
    assert no_cases_delay == 40.0  # the impossible path (paper: 40 nsec)
    assert case_delays == [30.0, 30.0]  # paper: 30 nsec for both cases

    rows = [
        f"{'analysis':<28} {'paper':>9} {'measured':>9}",
        f"{'without case analysis':<28} {'40 ns':>9} {no_cases_delay:>6.0f} ns",
        f"{'case CONTROL=0':<28} {'30 ns':>9} {case_delays[0]:>6.0f} ns",
        f"{'case CONTROL=1':<28} {'30 ns':>9} {case_delays[1]:>6.0f} ns",
        "",
        f"events: case 0 = {with_cases.cases[0].events}, "
        f"case 1 = {with_cases.cases[1].events} "
        "(only affected primitives re-evaluated, section 2.7)",
    ]
    report("Figure 2-6 — case analysis", "\n".join(rows))
