"""Table 3-3: storage required by the Timing Verifier.

The thesis breaks the 6 357-chip run's storage into: circuit description
37.8 % (about 260 bytes/primitive), signal values (33 152 value lists of
2.97 records each, about 56 bytes/signal), signal names 11.6 %, string
space 10.6 %, call-list array 6.9 %, miscellaneous 0.7 %.  We measure the
same categories of our engine's working set and compare the proportions.
"""

from __future__ import annotations

from repro.core.engine import Engine
from repro.reporting.stats import measure_storage

PAPER_PERCENT = {
    "circuit description": 37.8,
    "signal values": None,  # dominant runner-up; exact % not stated cleanly
    "signal names": 11.6,
    "string space": 10.6,
    "call list array": 6.9,
    "miscellaneous": 0.7,
}
PAPER_BYTES_PER_PRIMITIVE = 260
PAPER_BYTES_PER_SIGNAL = 56
PAPER_VALUE_RECORDS_PER_SIGNAL = 2.97


def test_table_3_3_storage(benchmark, synth_design, report):
    circuit, _ = synth_design.circuit()

    def run_and_measure():
        engine = Engine(circuit)
        engine.initialize()
        engine.run()
        return measure_storage(engine)

    storage = benchmark.pedantic(run_and_measure, rounds=1, iterations=1)

    rows = [
        f"{'category':<26} {'paper %':>9} {'measured %':>11} {'bytes':>14}",
    ]
    for cat in storage.categories:
        paper = PAPER_PERCENT.get(cat.name)
        paper_text = f"{paper:.1f}" if paper is not None else "—"
        rows.append(
            f"{cat.name:<26} {paper_text:>9} {cat.percent:>10.1f}% "
            f"{cat.bytes:>14,}"
        )
    rows += [
        f"{'TOTAL':<26} {'100.0':>9} {100.0:>10.1f}% {storage.total_bytes:>14,}",
        "",
        f"bytes/primitive (circuit description): paper "
        f"{PAPER_BYTES_PER_PRIMITIVE}, measured "
        f"{storage.bytes_per_primitive:.0f}",
        f"bytes/signal value list: paper {PAPER_BYTES_PER_SIGNAL}, measured "
        f"{storage.bytes_per_signal_value:.0f}",
        f"value records/signal: paper {PAPER_VALUE_RECORDS_PER_SIGNAL}, "
        f"measured {storage.value_records_per_signal:.2f}",
        f"signal value lists: paper 33,152, measured {storage.signals:,}",
    ]
    report("Table 3-3 — storage required", "\n".join(rows))

    # Shape: the circuit description is the largest category, as in the
    # paper; signals average a small handful of value records.
    largest = max(storage.categories, key=lambda c: c.bytes)
    assert largest.name in ("circuit description", "signal values")
    assert 1.5 <= storage.value_records_per_signal <= 8.0
    assert storage.bytes_per_primitive > 0
