"""Table 3-2: primitive definitions generated for the chip-design example.

The thesis's Macro Expander turned 6 357 chips into 8 282 primitives of 22
types — about 1.3 primitives per chip, averaging 6.5 bits of data path per
primitive.  Had the vector symmetry not been exploited, 53 833 primitives
would have been needed.  We regenerate the per-type census for the
synthetic design and check the same shape.
"""

from __future__ import annotations

PAPER = {
    "chips": 6_357,
    "primitives": 8_282,
    "primitive_types": 22,
    "primitives_per_chip": 1.3,
    "mean_width_bits": 6.5,
    "bit_blasted_primitives": 53_833,
}


def test_table_3_2_primitive_census(benchmark, synth_design, report):
    circuit, _stats = benchmark.pedantic(
        synth_design.circuit, rounds=1, iterations=1
    )
    st = circuit.stats()

    per_chip = st["primitive_count"] / synth_design.chips
    blast_ratio = st["bit_blasted_count"] / st["primitive_count"]
    rows = [
        f"{'metric':<34} {'paper':>12} {'measured':>12}",
        f"{'chips':<34} {PAPER['chips']:>12,} {synth_design.chips:>12,}",
        f"{'primitives':<34} {PAPER['primitives']:>12,} "
        f"{st['primitive_count']:>12,}",
        f"{'primitive types':<34} {PAPER['primitive_types']:>12} "
        f"{st['primitive_types']:>12}",
        f"{'primitives per chip':<34} {PAPER['primitives_per_chip']:>12.2f} "
        f"{per_chip:>12.2f}",
        f"{'mean primitive width (bits)':<34} "
        f"{PAPER['mean_width_bits']:>12.1f} {st['mean_width']:>12.1f}",
        f"{'if bit-blasted instead':<34} "
        f"{PAPER['bit_blasted_primitives']:>12,} {st['bit_blasted_count']:>12,}",
        "",
        f"{'gate equivalents':<34} {'97,709':>12} "
        f"{synth_design.gate_equivalents:>12,}",
        f"{'memory bits':<34} {'1,803,136':>12} "
        f"{synth_design.memory_bits:>12,}",
        "",
        "primitive census by type:",
    ]
    for name, count in st["by_type"].items():
        rows.append(f"  {name:<28} {count:>8,}")
    report("Table 3-2 — primitive definitions", "\n".join(rows))

    # Shape: the vector representation must be several times cheaper than
    # bit-blasting, primitives/chip near the published 1.3, the primitive
    # vocabulary comparable to the published 22 types.
    assert 1.1 <= per_chip <= 1.8
    assert blast_ratio >= 3.0
    assert 10 <= st["primitive_types"] <= 25
    assert 3.0 <= st["mean_width"] <= 10.0
