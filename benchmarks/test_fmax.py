"""Analytic Fmax vs. engine bisection: the parametric-timing speed claim.

``solve_static_fmax`` finds the fastest clock period from one parametric
dataflow pass (affine window bounds in the period ``T``) plus a handful of
concrete confirmation passes; ``bisect_fmax`` finds the same boundary by
running the full event-driven verifier at O(log T) trial periods.  Both
must land on the same picosecond — the agreement is asserted here at the
benchmark size, and property-tested across synthetic designs in
``tests/test_fmax.py``.

The acceptance claim is analytic >= 10x faster than bisection at 250
chips.  The engine-anchored combined solver (``solve_fmax``) is timed
alongside for reference — it pays for engine confirmation, so it tracks
the bisection cost, but with fewer engine runs (Newton jumps off the
static slope).  Headline numbers land in ``BENCH_fmax.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.sta.parametric import bisect_fmax, solve_fmax, solve_static_fmax
from repro.workloads.synth import SynthConfig, generate

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_fmax.json"

CHIPS = 250


def _best_of(n: int, fn):
    """Best wall time of ``n`` runs (robust to scheduler noise)."""
    best, result = None, None
    for _ in range(n):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_fmax_speedup(benchmark, report):
    circuit, _ = generate(
        SynthConfig(chips=CHIPS, seed=7, stage_chips=400)
    ).circuit()

    bisect_s, oracle = _best_of(2, lambda: bisect_fmax(circuit))
    anchored_s, anchored = _best_of(1, lambda: solve_fmax(circuit))

    static = benchmark.pedantic(
        lambda: solve_static_fmax(circuit), rounds=5, iterations=1
    )
    analytic_s = min(benchmark.stats.stats.data)

    # Both oracles must be period-limited here and agree exactly.
    assert oracle.period_limited and oracle.period_ps is not None
    assert anchored.period_ps == oracle.period_ps
    # The static root is sound (pessimism only raises it) and the binding
    # check is attributed.
    assert static.period_limited and static.period_ps is not None
    assert static.period_ps >= oracle.period_ps
    assert static.binding is not None

    ratio = bisect_s / analytic_s
    assert ratio >= 10.0, (
        f"analytic Fmax must be >= 10x faster than engine bisection: "
        f"{analytic_s * 1e3:.1f} ms vs {bisect_s * 1e3:.1f} ms "
        f"({ratio:.1f}x)"
    )

    rows = [
        f"design: {CHIPS} chips; engine Fmax boundary {oracle.period_ps} ps, "
        f"static root {static.period_ps} ps",
        f"analytic (parametric pass + confirm): {analytic_s * 1e3:9.1f} ms"
        f"  ({static.passes} parametric, {static.static_evals} static evals)",
        f"engine bisection:                     {bisect_s * 1e3:9.1f} ms"
        f"  ({oracle.engine_runs} engine runs)",
        f"anchored (static + engine confirm):   {anchored_s * 1e3:9.1f} ms"
        f"  ({anchored.engine_runs} engine runs)",
        f"speedup, analytic vs bisection:       {ratio:9.1f}x  (claim: >= 10x)",
    ]
    report("analytic Fmax vs engine bisection", "\n".join(rows))

    BENCH_FILE.write_text(
        json.dumps(
            {
                "chips": CHIPS,
                "analytic_seconds": analytic_s,
                "anchored_seconds": anchored_s,
                "bisect_seconds": bisect_s,
                "speedup_vs_bisect": ratio,
                "engine_period_ps": oracle.period_ps,
                "static_period_ps": static.period_ps,
                "bisect_engine_runs": oracle.engine_runs,
                "anchored_engine_runs": anchored.engine_runs,
                "agreement": anchored.period_ps == oracle.period_ps,
            },
            indent=2,
        )
        + "\n"
    )
