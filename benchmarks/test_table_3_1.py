"""Table 3-1: execution statistics for the chip-design example.

The thesis timed the Macro Expander (read 1.92 min, Pass 1 8.42 min,
Pass 2 6.18 min) and the Timing Verifier (read/build 4.45 min, cross
reference 0.72 min, verify 6.75 min, summary 0.22 min) on a 6 357-chip
portion of the S-1 Mark IIA, on an IBM 370/168-class machine; the verify
phase processed 20 052 events at about 20 ms each, about 49 ms per
primitive.  We regenerate the same two tables on the synthetic S-1-scale
design and report our per-event and per-primitive costs beside the paper's.
"""

from __future__ import annotations

from repro.core.verifier import TimingVerifier
from repro.hdl.expander import MacroExpander

PAPER = {
    "expander_read_min": 1.92,
    "expander_pass1_min": 8.42,
    "expander_pass2_min": 6.18,
    "verifier_read_min": 4.45,
    "verifier_xref_min": 0.72,
    "verifier_verify_min": 6.75,
    "verifier_summary_min": 0.22,
    "events": 20_052,
    "ms_per_event": 20.0,
    "ms_per_primitive": 49.0,
}


def test_table_3_1_execution_statistics(benchmark, synth_design, report):
    source = synth_design.source

    def pipeline():
        expander = MacroExpander.from_source(source, filename="<synth>")
        circuit = expander.expand()
        result = TimingVerifier(circuit).verify()
        return expander, circuit, result

    expander, circuit, result = benchmark.pedantic(
        pipeline, rounds=1, iterations=1
    )

    assert result.ok, [str(v) for v in result.violations[:3]]
    n_prims = len(circuit.components)
    es, ps = expander.stats, result.phases
    ms_per_event = ps.verify * 1000 / max(1, result.stats.events)
    ms_per_prim = ps.verify * 1000 / n_prims

    rows = [
        f"design: {synth_design.chips} chips, {n_prims} primitives "
        f"(paper: 6357 chips, 8282 primitives)",
        "",
        f"{'phase':<42} {'paper':>12} {'measured':>12}",
        f"{'MACRO EXPANDER':<42}",
        f"{'  reading input / building structures':<42} "
        f"{PAPER['expander_read_min']:>9.2f} min {es.read_seconds:>10.2f} s",
        f"{'  Pass 1 of macro expansion':<42} "
        f"{PAPER['expander_pass1_min']:>9.2f} min {es.pass1_seconds:>10.2f} s",
        f"{'  Pass 2 of macro expansion':<42} "
        f"{PAPER['expander_pass2_min']:>9.2f} min {es.pass2_seconds:>10.2f} s",
        f"{'TIMING VERIFIER':<42}",
        f"{'  reading input / building structures':<42} "
        f"{PAPER['verifier_read_min']:>9.2f} min {ps.build:>10.2f} s",
        f"{'  generating cross reference listings':<42} "
        f"{PAPER['verifier_xref_min']:>9.2f} min {ps.cross_reference:>10.2f} s",
        f"{'  verifying circuit':<42} "
        f"{PAPER['verifier_verify_min']:>9.2f} min {ps.verify:>10.2f} s",
        f"{'  generating timing summary listing':<42} "
        f"{PAPER['verifier_summary_min']:>9.2f} min {ps.summary:>10.2f} s",
        "",
        f"events processed: {result.stats.events} "
        f"(paper: {PAPER['events']})",
        f"per-event cost:   {ms_per_event:.3f} ms "
        f"(paper: {PAPER['ms_per_event']:.0f} ms on a 370/168-class host)",
        f"per-primitive:    {ms_per_prim:.3f} ms "
        f"(paper: {PAPER['ms_per_primitive']:.0f} ms)",
    ]
    report("Table 3-1 — execution statistics", "\n".join(rows))

    # Shape assertions: verification dominated by the verify phase being
    # linear-ish in events, with nonzero work in every phase.
    assert result.stats.events > 0
    assert ps.verify > 0
    assert es.pass1_seconds > 0 and es.pass2_seconds > 0
