"""The exponential-savings claim (sections 2.1 and 4.1).

"This symbolic timing simulation has the advantage that it tests the
circuit for most of the possible state transitions in a single pass.  The
resulting savings in computational effort are clearly of factorial (i.e.,
exponential) order."

Workload: an N-input XOR function cone feeding a register, with one slow
leg.  The Timing Verifier covers every input combination with ONE symbolic
evaluation.  The min/max logic simulator must be driven with vectors; to
cover all value states it needs 2^N of them, and a vector set that never
sensitises the slow leg reports the circuit clean — the missed-violation
failure mode of section 1.4.1.
"""

from __future__ import annotations

import time

from repro import Circuit, EXACT, TimingVerifier
from repro.baselines import LogicSimulator, exhaustive_vectors


def cone(n_inputs: int) -> Circuit:
    """An N-input XOR tree with one slow input leg, feeding a register."""
    c = Circuit(f"cone-{n_inputs}", period_ns=50.0, clock_unit_ns=6.25)
    clk = c.net("CK .P2-3")
    clk.wire_delay_ps = (0, 0)
    leaves = []
    for i in range(n_inputs):
        name = f"IN{i} .S0-6"
        if i == 0:
            # The slow leg: lands inside the setup window of the 12.5 ns
            # edge (data settles ~11.8 ns into the cycle).
            slow = c.net(f"SLOW{i}")
            slow.wire_delay_ps = (0, 0)
            c.gate("BUF", slow, [c._as_connection(f"{name} &W")],
                   delay=(60.0, 61.0), name=f"slowbuf{i}")
            leaves.append(slow)
        else:
            leaves.append(c.net(name))
    level = 0
    while len(leaves) > 1:
        nxt = []
        for j in range(0, len(leaves) - 1, 2):
            out = c.net(f"X{level}_{j}")
            out.wire_delay_ps = (0, 0)
            c.gate("XOR", out, [leaves[j], leaves[j + 1]],
                   delay=(0.2, 0.4), name=f"x{level}_{j}")
            nxt.append(out)
        if len(leaves) % 2:
            nxt.append(leaves[-1])
        leaves = nxt
        level += 1
    c.reg("Q", clock=clk, data=leaves[0], delay=(1.5, 4.5))
    c.setup_hold(leaves[0], clk, setup=2.5, hold=0.0)
    return c


def test_exponential_savings(benchmark, report):
    sizes = (4, 6, 8, 10)
    rows = [
        f"{'N inputs':>9} {'verifier passes':>16} {'verifier ms':>12} "
        f"{'sim vectors':>12} {'sim events':>11} {'sim ms':>9}"
    ]
    series = []
    for n in sizes:
        circuit = cone(n)

        t0 = time.perf_counter()
        result = TimingVerifier(circuit, EXACT).verify()
        verifier_ms = (time.perf_counter() - t0) * 1000
        assert any(v.kind.value == "setup" for v in result.violations), n

        vectors = exhaustive_vectors(n)
        sim = LogicSimulator(circuit)
        for i in range(n):
            sim.drive(f"IN{i} .S0-6", [vec[i] for vec in vectors])
        t0 = time.perf_counter()
        sim_result = sim.run(cycles=len(vectors))
        sim_ms = (time.perf_counter() - t0) * 1000

        rows.append(
            f"{n:>9} {1:>16} {verifier_ms:>12.2f} {len(vectors):>12} "
            f"{sim_result.events:>11} {sim_ms:>9.2f}"
        )
        series.append((n, verifier_ms, len(vectors), sim_result.events, sim_ms))

    # One pass at the largest size, for the benchmark table.
    big = cone(sizes[-1])
    benchmark(lambda: TimingVerifier(big, EXACT).verify())

    # Blind stimulus misses the error entirely (section 1.4.1's problem).
    # The first two cycles are initialisation transient (the X values
    # clearing out through the slow leg) and are not stimulus findings.
    blind_circuit = cone(6)
    blind = LogicSimulator(blind_circuit)
    for i in range(6):
        blind.drive(f"IN{i} .S0-6", [0, 0, 0, 0])  # nothing ever toggles
    blind_result = blind.run(cycles=4)
    settled = [
        v for v in blind_result.violations
        if v.time_ps >= 2 * blind_circuit.period_ps
    ]

    rows += [
        "",
        "simulation cost doubles per added input; the verifier stays at "
        "one symbolic pass (paper: savings 'of exponential order')",
        f"blind constant-vector simulation of the N=6 cone: "
        f"{len(settled)} violations found after initialisation "
        "(the slow path is simply never exercised)",
    ]
    report("Claim — exponential savings vs logic simulation", "\n".join(rows))

    # Shape: simulator events grow exponentially; verifier's single pass
    # time grows at most polynomially in N.
    assert series[-1][3] > 8 * series[0][3]
    assert series[-1][1] < series[0][1] * 50
    assert settled == []
