"""Figures 2-8 and 2-9: how skew is handled (section 2.8).

A 10 ns clock pulse passes through a gate with 5.0/10.0 ns delay.  The
value list is shifted by the minimum delay and the 5 ns difference goes in
the separate skew field, so the nominal pulse width stays 10 ns and no
false minimum-pulse-width error arises (Figure 2-8).  Folding the skew into
the values — as must happen when two changing signals combine — produces
Figure 2-9's representation: RISE 25-30, high to 35, FALL 35-40, with only
5 ns of guaranteed-high pulse.
"""

from repro import Circuit, EXACT, TimingVerifier
from repro.core.checks import check_min_pulse_width
from repro.core.timeline import ns_to_ps


def _circuit():
    c = Circuit("fig-2-8", period_ns=50.0, clock_unit_ns=10.0)
    clk = c.net("X .P2-3")  # high 20..30 ns
    clk.wire_delay_ps = (0, 0)
    c.gate("OR", "Z", [clk, "GND"], delay=(5.0, 10.0), name="gate")
    c.min_pulse_width("Z", min_high=8.0, name="mpw")
    return c


def test_fig_2_8_skew_field(benchmark, report):
    result = benchmark(lambda: TimingVerifier(_circuit(), EXACT).verify())
    z = result.waveform("Z")

    # Figure 2-8: separate skew preserves the 10 ns pulse exactly.
    assert z.skew == (0, 5_000)
    assert z.duration_of(z.value_at(26_000)) == 10_000
    assert result.ok  # no false pulse-width error against the 8 ns minimum

    # Figure 2-9: the folded representation.
    folded = z.materialized()
    assert folded.describe() == "0 25.0 R 30.0 1 35.0 F 40.0 0"
    false_errors = check_min_pulse_width(
        "mpw", "Z", folded, ns_to_ps(8.0), None
    )
    assert any(v.kind.value == "min-pulse-width-high" for v in false_errors)

    rows = [
        "gate: 5.0/10.0 ns; input X high 20..30 ns (Figure 2-8)",
        f"Z with separate skew : {z.describe()}",
        f"Z with skew folded in: {folded.describe()}   (= Figure 2-9)",
        "",
        f"{'8 ns min-pulse check':<28} {'violations':>10}",
        f"{'  separate skew field':<28} {0:>10}",
        f"{'  skew folded into values':<28} {len(false_errors):>10}  "
        "(the false error the field exists to prevent)",
    ]
    report("Figures 2-8 / 2-9 — skew handling", "\n".join(rows))
