"""Figures 4-1 and 4-2: the correlation problem and the CORR fix.

A register reloads either its own output or new data through a multiplexer;
a buffer puts a large skew on its clock.  The true circuit is safe — the
register + multiplexer minimum delay exceeds the hold time for any single
clock-edge time — but the Verifier computes in absolute times, ignores the
correlation, and emits false errors (Figure 4-1).  The designer's ``CORR``
fictitious delay, at least as long as the clock skew, suppresses them
(Figure 4-2) without masking genuine errors.
"""

from repro import TimingVerifier
from repro.core.violations import ViolationKind
from repro.workloads import fig_4_1_correlation


def test_fig_4_1_correlation(benchmark, report):
    without = TimingVerifier(fig_4_1_correlation(with_corr=False)).verify()
    with_corr = benchmark(
        lambda: TimingVerifier(fig_4_1_correlation(with_corr=True)).verify()
    )
    genuine = TimingVerifier(
        fig_4_1_correlation(with_corr=True, hold_ns=12.0)
    ).verify()

    assert any(v.kind is ViolationKind.HOLD for v in without.violations)
    assert with_corr.ok
    assert any(v.kind is ViolationKind.HOLD for v in genuine.violations)

    rows = [
        f"{'configuration':<46} {'violations':>10}",
        f"{'Figure 4-1: feedback, skewed clock, no CORR':<46} "
        f"{len(without.violations):>10}  (all false)",
        f"{'Figure 4-2: CORR delay >= clock skew inserted':<46} "
        f"{len(with_corr.violations):>10}",
        f"{'CORR present but hold genuinely too long':<46} "
        f"{len(genuine.violations):>10}  (real error still caught)",
        "",
        "false findings without CORR:",
        *(f"  {v}" for v in without.violations),
    ]
    report("Figures 4-1 / 4-2 — correlation false errors", "\n".join(rows))
