"""Static pass vs. full verification: the scald-sta speed claim.

The point of a static analysis is whole-design answers at a fraction of
the engine's cost.  This benchmark times the three phases of both flows at
the Table 3-1 design size (1 000 chips by default, 6 357 under
``REPRO_S1_SCALE=1``):

* expansion — reading the design and building the netlist (the thesis
  bills this to every verification run: 107 of Table 3-1's 170 minutes);
* full verification — ``TimingVerifier.verify()``, all cases;
* the static pass — ``repro.sta.analyze`` (windows + domains + slack).

The acceptance claim is static >= 10x faster than a full verification run
(expansion + verify, Table 3-1's accounting).  The verify-only ratio is
reported alongside for reference.  Headline numbers land in
``BENCH_sta.json`` so the trajectory is tracked from PR to PR.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.verifier import TimingVerifier
from repro.sta import analyze
from repro.workloads.synth import SynthConfig, generate

from conftest import synth_chip_count

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_sta.json"


def _best_of(n: int, fn):
    """Best wall time of ``n`` runs (robust to scheduler noise)."""
    best, result = None, None
    for _ in range(n):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_sta_speedup(benchmark, report):
    chips = synth_chip_count()
    design = generate(SynthConfig(chips=chips, stage_chips=400))

    expand_s, (circuit, _) = _best_of(2, design.circuit)
    verify_s, result = _best_of(2, TimingVerifier(circuit).verify)

    analysis = benchmark.pedantic(lambda: analyze(circuit), rounds=5,
                                  iterations=1)
    static_s = min(benchmark.stats.stats.data)

    assert result.ok
    assert not analysis.windows.feedback  # synth designs are loop-free
    assert analysis.slack, "the workload must contain checkers"

    full_run_s = expand_s + verify_s
    ratio_full = full_run_s / static_s
    ratio_verify = verify_s / static_s
    assert ratio_full >= 10.0, (
        f"static pass must be >= 10x faster than a full verification run: "
        f"{static_s * 1e3:.1f} ms vs {full_run_s * 1e3:.1f} ms "
        f"({ratio_full:.1f}x)"
    )

    rows = [
        f"design: {chips} chips, {result.primitive_count} primitives, "
        f"{len(analysis.slack)} checkers",
        f"expansion (read + build netlist):   {expand_s * 1e3:9.1f} ms",
        f"full verification (all cases):      {verify_s * 1e3:9.1f} ms",
        f"static pass (windows+domains+slack):{static_s * 1e3:9.1f} ms",
        f"speedup vs full run (expand+verify): {ratio_full:8.1f}x  (claim: >= 10x)",
        f"speedup vs verify phase alone:       {ratio_verify:8.1f}x",
    ]
    report("scald-sta vs scald-tv (static-pass speedup)", "\n".join(rows))

    BENCH_FILE.write_text(
        json.dumps(
            {
                "chips": chips,
                "expand_seconds": expand_s,
                "verify_seconds": verify_s,
                "static_seconds": static_s,
                "speedup_vs_full_run": ratio_full,
                "speedup_vs_verify": ratio_verify,
            },
            indent=2,
        )
        + "\n"
    )
