"""Ablation: vector primitives versus bit-blasting (Table 3-2's 8 282 vs
53 833).

Each Timing Verifier primitive represents an arbitrarily wide data path; the
thesis credits this symmetry with a 6.5x reduction in primitive count on the
S-1 example.  We bit-blast the synthetic design — one scalar primitive per
bit — and verify both representations, measuring the primitive-count ratio
and the run-time cost of losing the symmetry.
"""

from __future__ import annotations

import time

from repro.core.verifier import TimingVerifier
from repro.workloads.ablation import bit_blast
from repro.workloads.synth import SynthConfig, generate


def test_ablation_bit_blasting(benchmark, report):
    design = generate(SynthConfig(chips=300))
    vectorised, _ = design.circuit()
    blasted = bit_blast(vectorised)

    t0 = time.perf_counter()
    v_result = TimingVerifier(vectorised).verify()
    v_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    b_result = TimingVerifier(blasted).verify()
    b_time = time.perf_counter() - t0

    benchmark.pedantic(
        lambda: TimingVerifier(vectorised).verify(), rounds=3, iterations=1
    )

    nv, nb = len(vectorised.components), len(blasted.components)
    rows = [
        f"{'representation':<22} {'primitives':>11} {'events':>9} "
        f"{'verify s':>9} {'violations':>11}",
        f"{'vectorised':<22} {nv:>11,} {v_result.stats.events:>9,} "
        f"{v_time:>9.3f} {len(v_result.violations):>11}",
        f"{'bit-blasted':<22} {nb:>11,} {b_result.stats.events:>9,} "
        f"{b_time:>9.3f} {len(b_result.violations):>11}",
        "",
        f"primitive ratio: {nb / nv:.1f}x "
        "(paper: 53,833 / 8,282 = 6.5x on the S-1 example)",
        f"verify-time ratio: {b_time / max(v_time, 1e-9):.1f}x",
    ]
    report("Ablation — vector primitives vs bit-blasting", "\n".join(rows))

    # Both representations agree that the design is clean, and the vector
    # form is several times cheaper.
    assert v_result.ok and b_result.ok
    assert nb / nv >= 3.0
    assert b_result.stats.events > 2 * v_result.stats.events
