"""Scaling of the verification cost (section 3.3.2).

The thesis reports the verify phase as event-driven with a roughly constant
cost per event (20 052 events, ~20 ms each, ~49 ms per primitive, ~2.4
events per primitive for a single case).  We sweep the synthetic design
size and check that events grow linearly with primitives and that the cost
per event stays roughly flat — the property that made exhaustive
verification feasible.

The events/primitive ratio depends on the order the FIFO engine meets the
primitives: our generator happens to emit them in topological order, which
hides the cost a real netlist would pay.  The levelized engine schedules by
rank, so its event count sits at the fixed-point floor for *any* input
order; the FIFO baseline is therefore measured under the alphabetical
(cross-reference listing) order a real design database would present.
"""

from __future__ import annotations

import time

from repro.core.config import VerifyConfig
from repro.core.verifier import TimingVerifier
from repro.workloads.synth import SynthConfig, generate

SIZES = (125, 250, 500, 1_000)


def _alphabetical(circuit):
    """Re-list the components in name order, as a design database would."""
    items = sorted(circuit.components.items())
    circuit.components.clear()
    circuit.components.update(items)
    return circuit


def test_scaling_linear_in_events(benchmark, report):
    rows = [
        f"{'chips':>7} {'primitives':>11} {'events':>8} {'events/prim':>12} "
        f"{'verify s':>9} {'ms/event':>9}"
    ]
    series = []
    for chips in SIZES:
        design = generate(SynthConfig(chips=chips, stage_chips=250))
        circuit, _ = design.circuit()
        t0 = time.perf_counter()
        result = TimingVerifier(circuit).verify()
        elapsed = time.perf_counter() - t0
        assert result.ok
        n = len(circuit.components)
        ev = result.stats.events
        rows.append(
            f"{chips:>7} {n:>11} {ev:>8} {ev / n:>12.2f} {elapsed:>9.3f} "
            f"{elapsed * 1000 / ev:>9.3f}"
        )
        series.append((chips, n, ev, elapsed))

    # Time one mid-size verification for the benchmark table.
    mid_circuit, _ = generate(SynthConfig(chips=500, stage_chips=250)).circuit()
    benchmark.pedantic(
        lambda: TimingVerifier(mid_circuit).verify(), rounds=3, iterations=1
    )

    # Levelized scheduling vs the FIFO baseline at the largest size, both
    # over the alphabetical netlist order (the generator's construction
    # order is accidentally topological, which would flatter the FIFO).
    base_circuit, _ = generate(
        SynthConfig(chips=SIZES[-1], stage_chips=250)
    ).circuit()
    _alphabetical(base_circuit)
    fifo = TimingVerifier(base_circuit, VerifyConfig().naive()).verify()
    levelized = TimingVerifier(base_circuit, VerifyConfig()).verify()
    n_base = len(base_circuit.components)
    fifo_ratio = fifo.stats.events / n_base
    lev_ratio = levelized.stats.events / n_base

    rows += [
        "",
        f"chips={SIZES[-1]}, alphabetical netlist order: "
        f"FIFO baseline {fifo.stats.events} events "
        f"({fifo_ratio:.3f} events/prim), "
        f"levelized {levelized.stats.events} events "
        f"({lev_ratio:.3f} events/prim)",
        "paper: 8 282 primitives, 20 052 events (2.4 events/primitive), "
        "~20 ms/event, 6.75 min verify on a 370/168-class host",
        "shape check: events grow linearly with primitives; ms/event stays "
        "roughly constant",
    ]
    report("Scaling — verify cost vs design size", "\n".join(rows))

    # Events per primitive essentially constant across an 8x size range —
    # the levelized engine holds the ratio at the fixed-point floor (the
    # FIFO engine only managed < 1.8x here).
    ratios = [ev / n for _c, n, ev, _t in series]
    assert max(ratios) / min(ratios) < 1.15
    # Levelized scheduling strictly beats the FIFO baseline at chips=1000.
    assert lev_ratio < fifo_ratio
    # Wall time grows sub-quadratically: 8x the design costs < 24x the time.
    t_small = max(series[0][3], 1e-4)
    assert series[-1][3] / t_small < (SIZES[-1] / SIZES[0]) ** 1.5
