"""Scaling of the verification cost (section 3.3.2).

The thesis reports the verify phase as event-driven with a roughly constant
cost per event (20 052 events, ~20 ms each, ~49 ms per primitive, ~2.4
events per primitive for a single case).  We sweep the synthetic design
size and check that events grow linearly with primitives and that the cost
per event stays roughly flat — the property that made exhaustive
verification feasible.
"""

from __future__ import annotations

import time

from repro.core.verifier import TimingVerifier
from repro.workloads.synth import SynthConfig, generate

SIZES = (125, 250, 500, 1_000)


def test_scaling_linear_in_events(benchmark, report):
    rows = [
        f"{'chips':>7} {'primitives':>11} {'events':>8} {'events/prim':>12} "
        f"{'verify s':>9} {'ms/event':>9}"
    ]
    series = []
    for chips in SIZES:
        design = generate(SynthConfig(chips=chips, stage_chips=250))
        circuit, _ = design.circuit()
        t0 = time.perf_counter()
        result = TimingVerifier(circuit).verify()
        elapsed = time.perf_counter() - t0
        assert result.ok
        n = len(circuit.components)
        ev = result.stats.events
        rows.append(
            f"{chips:>7} {n:>11} {ev:>8} {ev / n:>12.2f} {elapsed:>9.3f} "
            f"{elapsed * 1000 / ev:>9.3f}"
        )
        series.append((chips, n, ev, elapsed))

    # Time one mid-size verification for the benchmark table.
    mid_circuit, _ = generate(SynthConfig(chips=500, stage_chips=250)).circuit()
    benchmark.pedantic(
        lambda: TimingVerifier(mid_circuit).verify(), rounds=3, iterations=1
    )

    rows += [
        "",
        "paper: 8 282 primitives, 20 052 events (2.4 events/primitive), "
        "~20 ms/event, 6.75 min verify on a 370/168-class host",
        "shape check: events grow linearly with primitives; ms/event stays "
        "roughly constant",
    ]
    report("Scaling — verify cost vs design size", "\n".join(rows))

    # Events per primitive roughly constant across an 8x size range.
    ratios = [ev / n for _c, n, ev, _t in series]
    assert max(ratios) / min(ratios) < 1.8
    # Wall time grows sub-quadratically: 8x the design costs < 24x the time.
    t_small = max(series[0][3], 1e-4)
    assert series[-1][3] / t_small < (SIZES[-1] / SIZES[0]) ** 1.5
