"""Engine performance trajectory: events/sec and cache effectiveness.

Times the optimized engine (levelized scheduling + waveform interning +
memoized evaluation) against the naive FIFO reference on a 500-chip
synthetic design, and writes the headline numbers to ``BENCH_engine.json``
at the repository root so the perf trajectory is tracked from PR to PR.
The thesis's comparable figures: 20 052 events at ~20 ms each — about
50 events/second on a 370/168-class host (section 3.3.2).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.config import VerifyConfig
from repro.core.verifier import TimingVerifier
from repro.reporting.stats import profile_json
from repro.workloads.synth import SynthConfig, generate

CHIPS = 500
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def test_perf_engine(benchmark, report):
    circuit, _ = generate(SynthConfig(chips=CHIPS, stage_chips=250)).circuit()

    t0 = time.perf_counter()
    naive = TimingVerifier(circuit, VerifyConfig().naive()).verify()
    naive_seconds = time.perf_counter() - t0

    optimized = benchmark.pedantic(
        lambda: TimingVerifier(circuit, VerifyConfig()).verify(),
        rounds=3,
        iterations=1,
    )
    opt_seconds = benchmark.stats.stats.mean

    assert optimized.ok and naive.ok
    s = optimized.stats
    events_per_second = s.events / opt_seconds if opt_seconds else 0.0
    evals_per_event = s.evaluations / s.events if s.events else 0.0

    payload = {
        "chips": CHIPS,
        "primitives": optimized.primitive_count,
        "events": s.events,
        "evaluations": s.evaluations,
        "events_per_primitive": optimized.events_per_primitive,
        "evaluations_per_event": evals_per_event,
        "events_per_second": events_per_second,
        "verify_seconds": opt_seconds,
        "naive_verify_seconds": naive_seconds,
        "memo_hit_rate": s.memo_hit_rate,
        "intern_hit_rate": s.intern_hit_rate,
        "prepared_hit_rate": s.prepared_hit_rate,
        "evaluations_saved": s.evaluations_saved,
        "max_rank": s.max_rank,
        "levelize_seconds": s.levelize_seconds,
        "profile": profile_json(optimized),
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        f"{CHIPS}-chip synthetic design, {optimized.primitive_count} "
        "evaluated primitives",
        "",
        f"{'':<24} {'naive FIFO':>12} {'optimized':>12}",
        f"{'end-to-end seconds':<24} {naive_seconds:>12.3f} "
        f"{opt_seconds:>12.3f}",
        f"{'events':<24} {naive.stats.events:>12} {s.events:>12}",
        f"{'evaluations':<24} {naive.stats.evaluations:>12} "
        f"{s.evaluations:>12}",
        "",
        f"events/second:     {events_per_second:,.0f} "
        "(paper: ~50 on a 370/168-class host)",
        f"evaluations/event: {evals_per_event:.3f}",
        f"cache hit rates:   memo {s.memo_hit_rate:.0%}, "
        f"intern {s.intern_hit_rate:.0%}, "
        f"prepared {s.prepared_hit_rate:.0%}",
        f"written to {BENCH_FILE.name}",
    ]
    report("Engine performance — events/sec and cache hit rates", "\n".join(rows))

    assert BENCH_FILE.exists()
    assert events_per_second > 0
    assert 0.0 <= s.memo_hit_rate <= 1.0
