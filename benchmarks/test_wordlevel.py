"""Word-level evaluation versus bit-blasting: the Table 3-2 event saving.

The thesis credits vector symmetry with representing the S-1 design in
8 282 primitives where bit-blasting needs 53 833 (6.5x).  This benchmark
verifies the same synthetic designs both ways — the word-level engine on
the vector form, the scalar engine on the blasted form — asserts the
reports are byte-identical per bit, and writes the event and wall-time
ratios to ``BENCH_wordlevel.json`` so the saving is tracked from PR to PR.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.verifier import TimingVerifier
from repro.netlist import bit_blast
from repro.wordcheck import assert_word_equivalent
from repro.workloads.synth import SynthConfig, generate

SIZES = (120, 250, 500)
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_wordlevel.json"


def _measure(chips: int) -> dict:
    circuit, _stats = generate(SynthConfig(chips=chips)).circuit()
    blasted = bit_blast(circuit)

    t0 = time.perf_counter()
    word = TimingVerifier(circuit).verify()
    word_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    blast = TimingVerifier(blasted).verify()
    blast_seconds = time.perf_counter() - t0

    assert_word_equivalent(word, blast, circuit)
    return {
        "chips": chips,
        "word_primitives": len(circuit.components),
        "blast_primitives": len(blasted.components),
        "word_events": word.stats.events,
        "blast_events": blast.stats.events,
        "event_ratio": blast.stats.events / word.stats.events,
        "word_seconds": word_seconds,
        "blast_seconds": blast_seconds,
        "time_ratio": blast_seconds / max(word_seconds, 1e-9),
        "vector_events": word.stats.vector_events,
        "lane_splits": word.stats.lane_splits,
    }


def test_wordlevel_event_saving(benchmark, report):
    runs = [_measure(chips) for chips in SIZES]

    largest = SIZES[-1]
    circuit, _stats = generate(SynthConfig(chips=largest)).circuit()
    benchmark.pedantic(
        lambda: TimingVerifier(circuit).verify(), rounds=3, iterations=1
    )

    payload = {
        "sizes": runs,
        "min_event_ratio": min(r["event_ratio"] for r in runs),
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        f"{'chips':>6} {'word ev':>9} {'blast ev':>9} {'ratio':>7} "
        f"{'word s':>8} {'blast s':>8} {'time x':>7}",
    ]
    for r in runs:
        rows.append(
            f"{r['chips']:>6} {r['word_events']:>9,} {r['blast_events']:>9,} "
            f"{r['event_ratio']:>6.1f}x {r['word_seconds']:>8.3f} "
            f"{r['blast_seconds']:>8.3f} {r['time_ratio']:>6.1f}x"
        )
    rows += [
        "",
        "violation reports byte-identical per bit at every size",
        "(paper: 53,833 / 8,282 = 6.5x primitives on the S-1 example)",
        f"written to {BENCH_FILE.name}",
    ]
    report("Word-level evaluation — events vs bit-blasting", "\n".join(rows))

    assert BENCH_FILE.exists()
    # The tentpole target: at least 3x fewer events at every size.
    assert payload["min_event_ratio"] >= 3.0
