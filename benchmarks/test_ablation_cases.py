"""Ablation: incremental case re-evaluation versus full re-evaluation.

Section 2.7: "in going from case-to-case, only the parts of the circuit
that are affected by the case analysis are reevaluated", so "the amount of
time required to analyze an additional case is proportional to the number
of events which have to be processed for that case".  We verify a design
with a case-controlled corner and compare the incremental engine against
re-initialising for every case.
"""

from __future__ import annotations

import time

from repro.core.engine import Engine
from repro.core.verifier import TimingVerifier
from repro.workloads.synth import SynthConfig, generate

N_CASES = 8


def _design():
    design = generate(SynthConfig(chips=400))
    circuit, _ = design.circuit()
    # The cases toggle one control signal read by the multiplexer fabric.
    for k in range(N_CASES):
        circuit.add_case_by_name({"MUX CTL .S0-8": k % 2})
    return circuit


def test_ablation_incremental_cases(benchmark, report):
    circuit = _design()

    # Incremental: the production path.
    t0 = time.perf_counter()
    result = TimingVerifier(circuit).verify()
    incremental_time = time.perf_counter() - t0
    incr_events = [case.events for case in result.cases]

    # Ablation: full re-initialisation per case.
    engine = Engine(circuit)
    t0 = time.perf_counter()
    full_events = []
    for case in circuit.cases:
        engine.initialize(case)
        full_events.append(engine.run())
    full_time = time.perf_counter() - t0

    benchmark.pedantic(
        lambda: TimingVerifier(circuit).verify(), rounds=1, iterations=1
    )

    rows = [
        f"{N_CASES} cases over a {len(circuit.components)}-primitive design",
        "",
        f"{'case':>5} {'incremental events':>19} {'full re-eval events':>20}",
    ]
    for k, (a, b) in enumerate(zip(incr_events, full_events)):
        rows.append(f"{k:>5} {a:>19,} {b:>20,}")
    rows += [
        "",
        f"total events: incremental {sum(incr_events):,}, "
        f"full {sum(full_events):,} "
        f"({sum(full_events) / sum(incr_events):.1f}x)",
        f"wall time: incremental {incremental_time:.3f} s, "
        f"full {full_time:.3f} s",
        "paper: case analysis was 'only rarely required' for the fully "
        "pipelined Mark IIA, but 'for some design styles ... essential'",
    ]
    report("Ablation — incremental case re-evaluation", "\n".join(rows))

    # After the first case, incremental cases are much cheaper.
    assert all(e <= incr_events[0] for e in incr_events[1:])
    assert sum(incr_events) < 0.7 * sum(full_events)
