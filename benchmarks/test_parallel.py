"""Process-parallel verification speedup on 1000-chip workloads.

Times the serial verifier against ``repro.parallel`` on both sharding
axes — a multi-case 1000-chip run (case blocks) and four independent
1000-chip sections (one per worker) — checks that the outputs are
byte-identical, and writes the headline numbers to ``BENCH_parallel.json``
at the repository root.

Two honesty notes baked into the numbers:

* Case sharding competes with §2.7's incremental re-evaluation, which
  makes a follow-on case ~10x cheaper than initialization; each parallel
  block re-pays one initialization, so the case-axis speedup is bounded by
  how much case work the design has.  Section sharding has no such rebate
  (each section is a full independent run) and scales near-linearly.
* The >= 2x wall-clock target needs cores to run on: on a single-CPU host
  the workers time-slice one core and the speedup is honestly recorded as
  <1x (process overhead included), so the assertion is gated on
  ``os.cpu_count() >= 2``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.verifier import TimingVerifier
from repro.modular import verify_sections
from repro.parallel import verify_parallel, verify_sections_parallel
from repro.workloads.synth import SynthConfig, generate

CHIPS = 1_000
N_CASES = 8
N_SECTIONS = 8
JOBS = 4
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _case_workload():
    circuit, _ = generate(SynthConfig(chips=CHIPS, stage_chips=400)).circuit()
    # Each case re-binds the primary inputs, so the affected cone spans
    # the whole pipeline, not just the mux select fabric.
    for k in range(N_CASES):
        circuit.add_case_by_name(
            {f"PRIMARY {i} .S0-6": (k >> (i % 3)) % 2 for i in range(8)}
        )
    return circuit


def _section_workload():
    sections = {}
    for k in range(N_SECTIONS):
        design = generate(SynthConfig(chips=CHIPS, stage_chips=400, seed=k + 1))
        circuit, _ = design.circuit()
        circuit.name = f"SECTION_{k}"
        sections[circuit.name] = circuit
    return sections


def test_parallel_speedup(benchmark, report):
    cpus = os.cpu_count() or 1

    # ---- axis 1: case sharding on one multi-case design ----------------
    circuit = _case_workload()
    t0 = time.perf_counter()
    serial = TimingVerifier(circuit).verify()
    case_serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = verify_parallel(circuit, jobs=JOBS)
    case_parallel_s = time.perf_counter() - t0

    # Determinism first: the speedup is worthless if the answer changed.
    assert serial.error_listing() == parallel.error_listing()
    assert [v.message() for v in serial.violations] == [
        v.message() for v in parallel.violations
    ]
    for case in range(N_CASES):
        assert serial.summary_listing(case=case) == parallel.summary_listing(
            case=case
        )
    case_speedup = case_serial_s / case_parallel_s if case_parallel_s else 0.0

    # ---- axis 2: section sharding over independent circuits ------------
    sections = _section_workload()
    t0 = time.perf_counter()
    serial_mod = verify_sections(sections)
    sect_serial_s = time.perf_counter() - t0

    parallel_mod = benchmark.pedantic(
        lambda: verify_sections_parallel(sections, jobs=JOBS),
        rounds=1,
        iterations=1,
    )
    sect_parallel_s = benchmark.stats.stats.mean

    assert serial_mod.report() == parallel_mod.report()
    for name in sections:
        assert (
            serial_mod.sections[name].error_listing()
            == parallel_mod.sections[name].error_listing()
        )
    sect_speedup = sect_serial_s / sect_parallel_s if sect_parallel_s else 0.0

    cpu_seconds = parallel.phases_cpu.total if parallel.phases_cpu else 0.0
    best_speedup = max(case_speedup, sect_speedup)

    payload = {
        "chips": CHIPS,
        "jobs": JOBS,
        "cpus": cpus,
        "case_axis": {
            "cases": N_CASES,
            "serial_seconds": case_serial_s,
            "parallel_seconds": case_parallel_s,
            "speedup": case_speedup,
            "parallel_cpu_seconds": cpu_seconds,
            "serial_events": serial.stats.events,
            "parallel_events": parallel.stats.events,
        },
        "section_axis": {
            "sections": N_SECTIONS,
            "serial_seconds": sect_serial_s,
            "parallel_seconds": sect_parallel_s,
            "speedup": sect_speedup,
        },
        "best_speedup": best_speedup,
        "outputs_identical": True,
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        f"jobs={JOBS} on {cpus} CPU(s); outputs byte-identical on both axes",
        "",
        f"case axis    ({CHIPS} chips x {N_CASES} cases):   "
        f"serial {case_serial_s:.3f} s, parallel {case_parallel_s:.3f} s "
        f"({case_speedup:.2f}x)",
        f"section axis ({N_SECTIONS} x {CHIPS}-chip sections): "
        f"serial {sect_serial_s:.3f} s, parallel {sect_parallel_s:.3f} s "
        f"({sect_speedup:.2f}x)",
        "",
        "case-axis bound: each block re-pays one initialization that the",
        "serial run's incremental re-evaluation (section 2.7) amortizes;",
        "section sharding carries no such rebate and scales with cores.",
        f"written to {BENCH_FILE.name}",
    ]
    report("Parallel verification — sharding speedup", "\n".join(rows))

    assert BENCH_FILE.exists()
    if cpus >= 2:
        # The acceptance target; unreachable (and not asserted) when the
        # host gives the pool a single core to share.
        assert best_speedup >= 2.0, (
            f"expected >= 2x at jobs={JOBS} on {cpus} CPUs, "
            f"got {best_speedup:.2f}x"
        )
