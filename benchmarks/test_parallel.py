"""Process-parallel verification speedup on 1000-chip workloads.

Times the serial verifier against ``repro.parallel`` on three axes — a
multi-case 1000-chip run (case blocks, pool-cold), the same run again on
the session's now-warm persistent worker pool (workers keep their
converged state; re-verification is incremental inside each worker), and
eight independent 1000-chip sections (one per worker) — checks that the
outputs are byte-identical, and writes the headline numbers to
``BENCH_parallel.json`` at the repository root.

Honesty notes baked into the numbers:

* Case sharding competes with §2.7's incremental re-evaluation, which
  makes a follow-on case ~10x cheaper than initialization; each parallel
  block re-pays one initialization, so the cold case-axis speedup is
  bounded by how much case work the design has.  Section sharding has no
  such rebate (each section is a full independent run) and scales
  near-linearly.
* The warm row reuses the pool a prior verify forked and converged, so it
  pays neither fork nor initialization — that is the row a Session or
  scald-serve user sees on every run but the first, and it must beat the
  serial time even on one CPU.
* The >= 2x wall-clock target needs cores to run on: on a single-CPU host
  the workers time-slice one core and the cold speedup is honestly
  recorded as <1x (process overhead included), so that assertion is gated
  on ``os.cpu_count() >= 2``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.verifier import TimingVerifier
from repro.modular import verify_sections
from repro.parallel import verify_parallel, verify_sections_parallel
from repro.session import Session
from repro.workloads.synth import SynthConfig, generate

CHIPS = 1_000
N_CASES = 8
N_SECTIONS = 8
JOBS = 4
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _case_workload():
    circuit, _ = generate(SynthConfig(chips=CHIPS, stage_chips=400)).circuit()
    # Each case re-binds the primary inputs, so the affected cone spans
    # the whole pipeline, not just the mux select fabric.
    for k in range(N_CASES):
        circuit.add_case_by_name(
            {f"PRIMARY {i} .S0-6": (k >> (i % 3)) % 2 for i in range(8)}
        )
    return circuit


def _section_workload():
    sections = {}
    for k in range(N_SECTIONS):
        design = generate(SynthConfig(chips=CHIPS, stage_chips=400, seed=k + 1))
        circuit, _ = design.circuit()
        circuit.name = f"SECTION_{k}"
        sections[circuit.name] = circuit
    return sections


def test_parallel_speedup(benchmark, report):
    cpus = os.cpu_count() or 1

    # ---- axis 1: case sharding on one multi-case design ----------------
    circuit = _case_workload()
    t0 = time.perf_counter()
    serial = TimingVerifier(circuit).verify()
    case_serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = verify_parallel(circuit, jobs=JOBS)
    case_parallel_s = time.perf_counter() - t0

    # Determinism first: the speedup is worthless if the answer changed.
    assert serial.error_listing() == parallel.error_listing()
    assert [v.message() for v in serial.violations] == [
        v.message() for v in parallel.violations
    ]
    for case in range(N_CASES):
        assert serial.summary_listing(case=case) == parallel.summary_listing(
            case=case
        )
    case_speedup = case_serial_s / case_parallel_s if case_parallel_s else 0.0

    # ---- axis 1b: the same workload on a warm persistent pool ----------
    # A Session forks its workers on the first verify (pool-cold row,
    # fork + ship + initialize) and reuses them on the second (pool-warm:
    # the workers re-verify incrementally from their converged state).
    session = Session(circuit, jobs=JOBS)
    t0 = time.perf_counter()
    pool_cold = session.verify()
    pool_cold_s = time.perf_counter() - t0

    assert serial.error_listing() == pool_cold.error_listing()
    for case in range(N_CASES):
        # Also materializes every lazy snapshot, so the warm row below
        # times re-verification, not the previous run's waveform fetches.
        assert serial.summary_listing(case=case) == pool_cold.summary_listing(
            case=case
        )

    t0 = time.perf_counter()
    pool_warm = session.verify()
    pool_warm_s = time.perf_counter() - t0

    assert serial.error_listing() == pool_warm.error_listing()
    for case in range(N_CASES):
        assert serial.summary_listing(case=case) == pool_warm.summary_listing(
            case=case
        )
    pool_stats = pool_warm.pool
    assert pool_stats is not None
    assert pool_stats.pool_starts == 1 and pool_stats.warm_runs >= 1
    session.close()
    cold_speedup = case_serial_s / pool_cold_s if pool_cold_s else 0.0
    warm_speedup = case_serial_s / pool_warm_s if pool_warm_s else 0.0

    # ---- axis 2: section sharding over independent circuits ------------
    sections = _section_workload()
    t0 = time.perf_counter()
    serial_mod = verify_sections(sections)
    sect_serial_s = time.perf_counter() - t0

    parallel_mod = benchmark.pedantic(
        lambda: verify_sections_parallel(sections, jobs=JOBS),
        rounds=1,
        iterations=1,
    )
    sect_parallel_s = benchmark.stats.stats.mean

    assert serial_mod.report() == parallel_mod.report()
    for name in sections:
        assert (
            serial_mod.sections[name].error_listing()
            == parallel_mod.sections[name].error_listing()
        )
    sect_speedup = sect_serial_s / sect_parallel_s if sect_parallel_s else 0.0

    cpu_seconds = parallel.phases_cpu.total if parallel.phases_cpu else 0.0
    best_speedup = max(case_speedup, sect_speedup)

    payload = {
        "chips": CHIPS,
        "jobs": JOBS,
        "cpus": cpus,
        "case_axis": {
            "cases": N_CASES,
            "serial_seconds": case_serial_s,
            "parallel_seconds": case_parallel_s,
            "speedup": case_speedup,
            "parallel_cpu_seconds": cpu_seconds,
            "serial_events": serial.stats.events,
            "parallel_events": parallel.stats.events,
        },
        "pool_axis": {
            "cases": N_CASES,
            "cold_seconds": pool_cold_s,
            "warm_seconds": pool_warm_s,
            "cold_speedup": cold_speedup,
            "warm_speedup": warm_speedup,
            "pool_starts": pool_stats.pool_starts,
            "warm_runs": pool_stats.warm_runs,
            "waveforms_shipped": pool_stats.waveforms_shipped,
            "waveform_refs": pool_stats.waveform_refs,
        },
        "section_axis": {
            "sections": N_SECTIONS,
            "serial_seconds": sect_serial_s,
            "parallel_seconds": sect_parallel_s,
            "speedup": sect_speedup,
        },
        "best_speedup": best_speedup,
        "outputs_identical": True,
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        f"jobs={JOBS} on {cpus} CPU(s); outputs byte-identical on every axis",
        "",
        f"case axis    ({CHIPS} chips x {N_CASES} cases):   "
        f"serial {case_serial_s:.3f} s, parallel {case_parallel_s:.3f} s "
        f"({case_speedup:.2f}x)",
        f"pool-cold    (fork + ship + initialize):     "
        f"{pool_cold_s:.3f} s ({cold_speedup:.2f}x vs serial)",
        f"pool-warm    (reused workers, incremental):  "
        f"{pool_warm_s:.3f} s ({warm_speedup:.2f}x vs serial, "
        f"{pool_stats.waveforms_shipped} waveforms shipped / "
        f"{pool_stats.waveform_refs} sent by reference)",
        f"section axis ({N_SECTIONS} x {CHIPS}-chip sections): "
        f"serial {sect_serial_s:.3f} s, parallel {sect_parallel_s:.3f} s "
        f"({sect_speedup:.2f}x)",
        "",
        "case-axis bound: each block re-pays one initialization that the",
        "serial run's incremental re-evaluation (section 2.7) amortizes;",
        "section sharding carries no such rebate and scales with cores.",
        "the warm row is what a held-open Session pays per run after the",
        "first: no fork, no initialization, deltas only on the pipes.",
        f"written to {BENCH_FILE.name}",
    ]
    report("Parallel verification — sharding speedup", "\n".join(rows))

    assert BENCH_FILE.exists()
    # The warm pool must beat the serial run even when the workers
    # time-slice a single core: a warm re-verify is incremental inside
    # each worker, so it does a small fraction of the serial work.
    assert warm_speedup >= 1.0, (
        f"warm pool slower than serial on {cpus} CPU(s): "
        f"{warm_speedup:.2f}x"
    )
    if cpus >= 2:
        # The acceptance target; unreachable (and not asserted) when the
        # host gives the pool a single core to share.
        assert best_speedup >= 2.0, (
            f"expected >= 2x at jobs={JOBS} on {cpus} CPUs, "
            f"got {best_speedup:.2f}x"
        )
