"""Extension benchmark: different rising and falling delays (section 4.2.2).

The thesis's future-work proposal for nMOS-style technologies, where "it is
overly pessimistic to just use the longer of the two delays".  An inverter
chain with 1/2 ns rises and 4/6 ns falls is analysed three ways: the
max-only fallback, the directional extension, and — the thesis's key
observation — the directional analysis through *multiple inverting levels*,
where the roles alternate and a naive maximum is most wrong.
"""

from __future__ import annotations

from repro import Circuit, EXACT, TimingVerifier

RISE = (1.0, 2.0)
FALL = (4.0, 6.0)
CHAIN = 4


def _chain(directional: bool) -> Circuit:
    c = Circuit("nmos-chain", period_ns=50.0, clock_unit_ns=10.0)
    prev = c.net("CK .P1-2")  # rising edge at 10 ns
    prev.wire_delay_ps = (0, 0)
    for i in range(CHAIN):
        out = c.net(f"INV{i}")
        out.wire_delay_ps = (0, 0)
        if directional:
            c.gate("NOT", out, [prev], rise_delay=RISE, fall_delay=FALL,
                   name=f"inv{i}")
        else:
            worst = (min(RISE[0], FALL[0]), max(RISE[1], FALL[1]))
            c.gate("NOT", out, [prev], delay=worst, name=f"inv{i}")
        prev = out
    return c


def test_rise_fall_extension(benchmark, report):
    directional = benchmark(
        lambda: TimingVerifier(_chain(True), EXACT).verify()
    )
    maxonly = TimingVerifier(_chain(False), EXACT).verify()

    d_last = directional.waveform(f"INV{CHAIN - 1}").materialized()
    m_last = maxonly.waveform(f"INV{CHAIN - 1}").materialized()

    # The launching edge at 10 ns propagates as alternating fall/rise.
    d_window = (d_last.rising_windows() or d_last.falling_windows())[0]
    m_window = (m_last.rising_windows() or m_last.falling_windows())[0]
    d_width = d_window[1] - d_window[0]
    m_width = m_window[1] - m_window[0]

    rows = [
        f"{CHAIN}-stage inverter chain, rise {RISE} ns / fall {FALL} ns:",
        "",
        f"{'analysis':<28} {'edge window':>22} {'uncertainty':>12}",
        f"{'max-of-both (old fallback)':<28} "
        f"{m_window[0] / 1000:>9.1f}..{m_window[1] / 1000:<9.1f} ns "
        f"{m_width / 1000:>9.1f} ns",
        f"{'directional (section 4.2.2)':<28} "
        f"{d_window[0] / 1000:>9.1f}..{d_window[1] / 1000:<9.1f} ns "
        f"{d_width / 1000:>9.1f} ns",
        "",
        "the directional analysis alternates the rise/fall roles through "
        "each inverting level; the max-only analysis smears every edge by "
        "the slow fall, compounding per level",
        f"pessimism removed: {(m_width - d_width) / 1000:.1f} ns of edge "
        f"uncertainty on a {CHAIN}-level path",
    ]
    report("Extension — different rising/falling delays", "\n".join(rows))

    assert d_width < m_width
    # The directional window is exactly the sum of the per-edge ranges on
    # the alternating path (2 rises + 2 falls for 4 inverting levels).
    expected = 2 * (RISE[1] - RISE[0]) + 2 * (FALL[1] - FALL[0])
    assert abs(d_width / 1000 - expected) < 0.01
