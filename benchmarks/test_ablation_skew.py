"""Ablation: the separate skew field versus always folding (section 2.8).

The skew field exists "to avoid incorrect assertions by the Timing Verifier
that minimum pulse width requirements have not been met".  We push a batch
of clock pulses through buffer chains of increasing delay uncertainty and
count the minimum-pulse-width errors under (a) the thesis's separate skew
field and (b) the ablation that folds skew into RISE/FALL values at every
step.  The real circuits are all correct: every error under (b) is false.
"""

from __future__ import annotations

from repro import Circuit, EXACT, TimingVerifier
from repro.core.checks import check_min_pulse_width
from repro.core.timeline import ns_to_ps

CHAIN_SKEWS_NS = (1.0, 2.0, 3.0, 4.0, 6.0)
PULSE_NS = 10.0
MIN_WIDTH_NS = 8.0


def _chains() -> Circuit:
    c = Circuit("skew-ablation", period_ns=50.0, clock_unit_ns=10.0)
    for k, skew in enumerate(CHAIN_SKEWS_NS):
        clk = c.net(f"CK{k} .P2-3")  # a 10 ns pulse
        clk.wire_delay_ps = (0, 0)
        out = c.net(f"BUFFERED{k}")
        out.wire_delay_ps = (0, 0)
        c.buf(out, clk, delay=(2.0, 2.0 + skew), name=f"buf{k}")
        c.min_pulse_width(out, min_high=MIN_WIDTH_NS, name=f"mpw{k}")
    return c


def test_ablation_skew_field(benchmark, report):
    result = benchmark(lambda: TimingVerifier(_chains(), EXACT).verify())
    assert result.ok  # every pulse is genuinely 10 ns wide

    # The ablation: fold each buffered clock's skew into its values, then
    # run the same pulse-width check.
    false_errors = 0
    per_chain = []
    for k, skew in enumerate(CHAIN_SKEWS_NS):
        folded = result.waveform(f"BUFFERED{k}").materialized()
        errors = check_min_pulse_width(
            f"mpw{k}", f"BUFFERED{k}", folded,
            ns_to_ps(MIN_WIDTH_NS), None,
        )
        mpw = [e for e in errors if e.kind.value == "min-pulse-width-high"]
        false_errors += len(mpw)
        guaranteed = folded.level_runs(folded.value_at(27_000))
        width = (guaranteed[0][1] - guaranteed[0][0]) / 1000 if guaranteed else 0
        per_chain.append((skew, width, len(mpw)))

    rows = [
        f"10 ns pulses, {MIN_WIDTH_NS:.0f} ns minimum width, buffers with "
        "increasing delay uncertainty:",
        "",
        f"{'buffer skew':>12} {'nominal width':>14} {'folded width':>13} "
        f"{'false MPW errors':>17}",
    ]
    for skew, width, errs in per_chain:
        rows.append(
            f"{skew:>10.1f} ns {PULSE_NS:>11.1f} ns {width:>10.1f} ns "
            f"{errs:>17}"
        )
    rows += [
        "",
        f"separate skew field (the thesis design): 0 errors",
        f"always-fold ablation: {false_errors} false errors "
        "(every pulse narrower than skew + minimum is flagged)",
    ]
    report("Ablation — separate skew field vs always folding", "\n".join(rows))

    assert false_errors >= 2  # the larger-skew chains all go false-positive
