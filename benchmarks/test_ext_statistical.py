"""Extension benchmark: probability-based analysis (section 4.2.4).

"The Timing Verifier does minimum/maximum-based analysis ... Probability-
based analysis allows a distribution to be specified for each propagation
delay ... there is a low probability of all of the components along a given
path having either of their extreme values."  We sweep path depth and show
the statistical (3-sigma, uncorrelated) model admitting a faster clock than
min/max — and the thesis's warning that correlated components (one wafer,
one production run) collapse the advantage, which is why the S-1 kept the
min/max analysis.
"""

from __future__ import annotations

from repro import Circuit, EXACT
from repro.baselines.statistical import StatisticalAnalyzer

DEPTHS = (2, 4, 8, 12)


def _chain(n_gates: int) -> Circuit:
    c = Circuit(f"chain-{n_gates}", period_ns=100.0, clock_unit_ns=12.5)
    ck = c.net("CK .P1-2")
    ck.wire_delay_ps = (0, 0)
    c.reg("Q0", clock=ck, data="D .S0-7", delay=(1.5, 4.5))
    prev = "Q0"
    for i in range(n_gates):
        nxt = f"N{i}"
        c.net(nxt).wire_delay_ps = (0, 0)
        c.gate("BUF", nxt, [prev], delay=(2.0, 7.0), name=f"g{i}")
        prev = nxt
    c.setup_hold(prev, ck, setup=2.5, hold=0.0)
    return c


def test_statistical_extension(benchmark, report):
    rows = [
        f"{'path depth':>11} {'min/max period':>15} {'3-sigma period':>15} "
        f"{'speedup':>8} {'rho=1 period':>13}"
    ]
    series = []
    for depth in DEPTHS:
        circuit = _chain(depth)
        indep = StatisticalAnalyzer(circuit, EXACT).analyze()
        corr = StatisticalAnalyzer(circuit, EXACT, correlation=1.0).analyze()
        det_p, stat_p = indep.min_period_ps()
        _, corr_p = corr.min_period_ps()
        speedup = det_p / stat_p
        rows.append(
            f"{depth:>11} {det_p / 1000:>12.1f} ns {stat_p / 1000:>12.1f} ns "
            f"{speedup:>7.2f}x {corr_p / 1000:>10.1f} ns"
        )
        series.append((depth, det_p, stat_p, corr_p))

    benchmark(lambda: StatisticalAnalyzer(_chain(8), EXACT).analyze())

    rows += [
        "",
        "uncorrelated delays: the statistical clock beats min/max and the "
        "advantage grows with path depth (sqrt-of-sum vs sum of ranges)",
        "fully correlated delays (one wafer): the advantage vanishes — the "
        "thesis's stated reason for keeping min/max analysis for the S-1",
    ]
    report("Extension — probability-based analysis", "\n".join(rows))

    for depth, det_p, stat_p, corr_p in series:
        assert stat_p < det_p
        assert abs(corr_p - det_p) < 100  # rho=1 recovers min/max (±0.1 ns)
    speedups = [det / stat for _d, det, stat, _c in series]
    assert speedups[-1] > speedups[0]
