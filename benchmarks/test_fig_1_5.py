"""Figure 1-5: the hazard on a gated register clock.

CLOCK is high 20-30 ns; ENABLE wants to inhibit the register but only
reaches zero at 25 ns, so REG CLOCK carries a possible 5 ns runt pulse that
may falsely clock the register — "a circuit that usually works, but will
occasionally fail".  Both detection paths are regenerated: the pulse-width
checker, and the &A evaluation-directive stability check.
"""

from repro import EXACT, TimingVerifier
from repro.core.violations import ViolationKind
from repro.workloads import fig_1_5_gated_clock


def test_fig_1_5_hazard(benchmark, report):
    result = benchmark(
        lambda: TimingVerifier(fig_1_5_gated_clock(), EXACT).verify()
    )
    directive = TimingVerifier(fig_1_5_gated_clock(use_directive=True), EXACT).verify()

    glitches = result.report.by_kind(ViolationKind.POSSIBLE_GLITCH)
    gating = directive.report.by_kind(ViolationKind.GATING_STABILITY)
    assert len(glitches) == 1
    assert glitches[0].window == (20_000, 25_000)  # the 5 ns runt window
    assert len(gating) == 1

    reg_clock = result.waveform("REG CLOCK")
    rows = [
        "CLOCK high 20-30 ns; ENABLE reaches 0 only at 25 ns (paper text)",
        f"REG CLOCK value trace: {reg_clock.describe()}",
        "",
        "pulse-width checker finding:",
        f"  {glitches[0]}",
        "&A directive finding:",
        f"  {gating[0]}",
        "",
        "paper: 'the signal REG CLOCK is a short, 5 nsec pulse, which may "
        "clock the register' — window matches at 20..25 ns",
    ]
    report("Figure 1-5 — gated-clock hazard", "\n".join(rows))
