"""The spurious-error claim against path searching (sections 1.4.2, 4.1).

"Path-searching systems ... cannot simulate the portions of the circuit
which need to know the value behavior of some of the signals ...  Some of
these systems generate so many irrelevant error messages that they have
been found to be inconvenient to use."

Two workloads:

* the Figure 2-6 circuit with a capture register timed for the real 30 ns
  path: the Verifier (with the designer's two cases) is clean; the path
  searcher includes the impossible 40 ns path and reports a spurious setup
  error; and
* a register clocked through a gated clock: the Verifier's directive
  machinery handles it; the path searcher cannot even find the clock.
"""

from repro import Circuit, EXACT, TimingVerifier
from repro.baselines import PathAnalyzer
from repro.workloads import fig_2_6_case_analysis


def capture_variant() -> Circuit:
    """Figure 2-6 plus a register timed for the true 30 ns path."""
    c = fig_2_6_case_analysis(with_cases=True)
    clk = c.net("CAP CLK .P4.5-5.5")  # rising at 45 ns
    clk.wire_delay_ps = (0, 0)
    out = c.net("OUTPUT")
    out.wire_delay_ps = (0, 0)
    c.reg("CAPTURED", clock=clk, data=out, delay=(1.5, 4.5), name="capreg")
    c.setup_hold(out, clk, setup=2.5, hold=0.0, name="capchk")
    return c


def gated_clock_variant() -> Circuit:
    c = Circuit("gated", period_ns=50.0, clock_unit_ns=6.25)
    c.gate("AND", "GCLK", ["CK .P2-3 &H", "EN .S0-8"], delay=(1.0, 2.9))
    c.reg("Q", clock="GCLK", data="D .S1.5-4", delay=(1.5, 4.5))
    c.setup_hold("D .S1.5-4", "GCLK", setup=2.5, hold=0.0)
    return c


def test_pathsearch_spurious_errors(benchmark, report):
    fig26 = capture_variant()
    verifier_result = benchmark(
        lambda: TimingVerifier(fig26, EXACT).verify()
    )
    path_result = PathAnalyzer(fig26, EXACT).analyze()

    gated = gated_clock_variant()
    verifier_gated = TimingVerifier(gated, EXACT).verify()
    path_gated = PathAnalyzer(gated, EXACT).analyze()

    rows = [
        f"{'workload':<38} {'verifier':>9} {'path search':>12}",
        f"{'fig 2-6 + capture register':<38} "
        f"{len(verifier_result.violations):>9} "
        f"{len(path_result.violations):>12}",
        f"{'register on a gated clock':<38} "
        f"{len(verifier_gated.violations):>9} "
        f"{len(path_gated.violations):>12}",
        "",
        "path-search messages (all irrelevant — the circuits are correct):",
        *(f"  {v}" for v in path_result.violations + path_gated.violations),
        "",
        f"path search sees OUTPUT settle at "
        f"{path_result.arrivals['OUTPUT'][1] / 1000:.0f} ns "
        "(the impossible 40 ns path on a 10 ns input); the verifier's "
        "cases measure 40 ns total (the real 30 ns path).",
    ]
    report("Claim — spurious errors from path searching", "\n".join(rows))

    # The verifier is clean on both circuits; the path searcher is not.
    assert verifier_result.ok, [str(v) for v in verifier_result.violations]
    assert verifier_gated.ok, [str(v) for v in verifier_gated.violations]
    assert any(v.kind == "setup" for v in path_result.violations)
    assert any(v.kind == "unclocked" for v in path_gated.violations)
