"""Incremental re-verify vs. from-scratch: the session speedup claim.

The point of a long-lived session is that a designer's edit-verify loop
pays for the dirty cone, not the design.  This benchmark makes one local
wire-delay edit to a 250-chip synthetic design and times
``Session.reverify()`` against a from-scratch ``TimingVerifier`` run on
the same edited circuit.

Acceptance: byte-identical output (checked first — a fast wrong answer is
worthless) and >= 5x faster re-verification.  Headline numbers land in
``BENCH_incremental.json`` so the trajectory is tracked from PR to PR.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.verifier import TimingVerifier
from repro.incremental import WireDelayEdit, assert_incremental_equivalent
from repro.session import Session
from repro.workloads.synth import SynthConfig, generate

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"

CHIPS = 250
SPEEDUP_FLOOR = 5.0


def test_incremental_speedup(benchmark, report):
    design = generate(SynthConfig(chips=CHIPS))
    circuit, _ = design.circuit()
    session = Session(circuit)
    session.verify()
    net = next(n for n in circuit.nets if n.startswith("S0 R "))

    # Correctness before speed: the edited design must re-verify
    # byte-identical to a from-scratch run.
    session.edit(WireDelayEdit(net, (0.0, 0.5)))
    inc = assert_incremental_equivalent(session)
    dirty, total = inc.stats.dirty_primitives, inc.result.primitive_count

    # From-scratch baseline on the same edited circuit.
    scratch_s = None
    for _ in range(3):
        t0 = time.perf_counter()
        scratch = TimingVerifier(circuit).verify()
        elapsed = time.perf_counter() - t0
        scratch_s = elapsed if scratch_s is None else min(scratch_s, elapsed)
    assert scratch.ok

    # Each round re-applies a (changed) edit so every timed reverify does
    # real cone work rather than a no-op pass.
    delays = [(0.0, 0.25), (0.0, 0.5), (0.0, 0.75)]
    round_index = [0]

    def one_edit_reverify():
        session.edit(WireDelayEdit(net, delays[round_index[0] % len(delays)]))
        round_index[0] += 1
        return session.reverify(prescreen=False)

    inc = benchmark.pedantic(one_edit_reverify, rounds=5, iterations=1)
    reverify_s = min(benchmark.stats.stats.data)
    assert inc.incremental and inc.ok

    speedup = scratch_s / reverify_s
    doc = {
        "chips": CHIPS,
        "primitives": total,
        "dirty_primitives": dirty,
        "reused_waveforms": inc.stats.reused_waveforms,
        "scratch_seconds": scratch_s,
        "reverify_seconds": reverify_s,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
    }
    BENCH_FILE.write_text(json.dumps(doc, indent=2) + "\n")

    report(
        "Incremental re-verify",
        "\n".join(
            [
                f"  design: {CHIPS} chips, {total} primitives",
                f"  one wire-delay edit dirties {dirty} primitives "
                f"({inc.stats.reused_waveforms} waveforms reused)",
                f"  from-scratch: {scratch_s * 1000:8.2f} ms",
                f"  reverify:     {reverify_s * 1000:8.2f} ms",
                f"  speedup:      {speedup:8.1f}x  (floor {SPEEDUP_FLOOR}x)",
            ]
        ),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental reverify only {speedup:.1f}x faster than scratch "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
