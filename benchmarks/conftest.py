"""Shared benchmark infrastructure.

Every benchmark regenerates one of the thesis's tables or figures and
registers the reproduced rows through the ``report`` fixture; the collected
tables are printed in the terminal summary (so they survive pytest's output
capture and land in ``bench_output.txt``).

Set ``REPRO_S1_SCALE=1`` to run the Table 3-1/3-2/3-3 benchmarks at the
full 6 357-chip scale of the thesis; the default is a 1 000-chip design so
the whole suite stays fast.
"""

from __future__ import annotations

import os

import pytest

_REPORTS: dict[str, str] = {}


@pytest.fixture
def report():
    """Register a reproduced table: ``report("Table 3-1", text)``."""

    def add(name: str, text: str) -> None:
        _REPORTS[name] = text

    return add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "REPRODUCED TABLES AND FIGURES")
    for name in sorted(_REPORTS):
        terminalreporter.write_sep("-", name)
        for line in _REPORTS[name].splitlines():
            terminalreporter.write_line(line)


def synth_chip_count() -> int:
    """The benchmark design size (6 357 at full scale)."""
    if os.environ.get("REPRO_S1_SCALE"):
        return 6_357
    return 1_000


@pytest.fixture(scope="session")
def synth_design():
    """The Table 3-x workload, generated once per session."""
    from repro.workloads.synth import SynthConfig, generate

    chips = synth_chip_count()
    return generate(SynthConfig(chips=chips, stage_chips=400))
