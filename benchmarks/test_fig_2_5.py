"""Figures 2-5, 3-10 and 3-11: the register-file circuit and its listings.

The thesis's central worked example: verified under the S-1 rules, the
Timing Verifier prints the signal-value summary (Figure 3-10) and exactly
two setup errors (Figure 3-11):

* the RAM address checker's 3.5 ns setup missed by the full 3.5 ns, the
  data not stable until 11.5 ns when the write-enable starts rising; and
* the output register's 2.5 ns setup missed by ~1 ns, the clock starting
  to rise at 49.0 ns.
"""

from repro import TimingVerifier
from repro.core.violations import ViolationKind
from repro.workloads import fig_2_5_register_file


def test_fig_2_5_register_file(benchmark, report):
    result = benchmark(
        lambda: TimingVerifier(fig_2_5_register_file()).verify()
    )

    setups = result.report.by_kind(ViolationKind.SETUP)
    assert len(result.violations) == 2
    assert len(setups) == 2

    addr = next(v for v in setups if v.signal == "ADR")
    outreg = next(v for v in setups if "RAM OUT" in v.signal)
    assert addr.missed_by_ps == 3_500  # "missed by the full 3.5 nsec"
    assert 500 <= outreg.missed_by_ps <= 1_500  # paper: 1.0 ns
    assert outreg.window[0] == 46_500  # clock rising at 49.0, setup 2.5

    adr_wave = result.waveform("ADR").materialized()
    assert adr_wave.describe() == "S 0.5 C 5.5 S 25.5 C 30.5 S"  # Fig 3-10 row

    rows = [
        "Figure 3-10 (summary listing):",
        *("  " + line for line in result.summary_listing().splitlines()[2:]),
        "",
        "Figure 3-11 (error listing):",
        *("  " + line for line in result.error_listing().splitlines()),
        "",
        "paper vs measured:",
        "  error 1: setup 3.5 missed by full 3.5; data stable at 11.5  "
        "-> reproduced exactly",
        f"  error 2: setup 2.5 missed by ~1.0; clock rising at 49.0     "
        f"-> measured missed-by "
        f"{(outreg.missed_by_ps or 0) / 1000:.3f} ns",
    ]
    report("Figures 2-5 / 3-10 / 3-11 — register file", "\n".join(rows))
