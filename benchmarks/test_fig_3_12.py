"""Figure 3-12: a typical arithmetic circuit in the S-1 Mark IIA design.

A 36-bit ALU with output latch, a debugging/status register with gated
load-enable, and a function decoder.  All interface signals carry
assertions, "allowing the timing of this circuit to be checked, either by
itself or with the rest of the design" — it verifies clean on its own, and
its interface assertions hold against the computed hardware behaviour.
"""

from repro import TimingVerifier
from repro.modular import verify_sections
from repro.workloads import fig_3_12_alu_datapath


def test_fig_3_12_alu_slice(benchmark, report):
    result = benchmark(lambda: TimingVerifier(fig_3_12_alu_datapath()).verify())

    assert result.ok, [str(v) for v in result.violations]
    alu_out = result.waveform("ALU OUT .S7-12")
    assert alu_out.is_stable_in(43_750, 43_750 + 31_250)  # honours .S7-12

    modular = verify_sections({"fig 3-12": fig_3_12_alu_datapath()})
    assert modular.ok

    rows = [
        "checked constraints: ALU latch setup/hold, status register "
        "setup/hold, gated load-enable stability (&H), status clock "
        "minimum pulse width",
        "",
        *("  " + line for line in result.summary_listing().splitlines()[2:]),
        "",
        f"violations: {len(result.violations)} (paper: the slice is a "
        "working S-1 circuit — clean)",
        f"events: {result.stats.events}, evaluations: "
        f"{result.stats.evaluations}",
    ]
    report("Figure 3-12 — S-1 arithmetic slice", "\n".join(rows))
