"""Self-lint smoke test: every ``.scald`` file shipped in the repository
must come through ``scald-lint`` with zero errors.

This keeps the example designs and the primitive library honest against
the analyzer (and the analyzer honest against real inputs): a new rule
that misfires on known-good sources, or a library edit that introduces a
real hazard, both fail here.
"""

import glob

import pytest

from repro.lint import lint_path

SHIPPED = sorted(
    glob.glob("examples/designs/*.scald")
    + glob.glob("src/repro/library/scald/*.scald")
)


def test_corpus_is_nonempty():
    assert SHIPPED, "expected shipped .scald sources to self-lint"


@pytest.mark.parametrize("path", SHIPPED)
def test_shipped_scald_lints_clean(path):
    result = lint_path(path)
    errors = result.errors
    assert not errors, "\n".join(str(d) for d in errors)
    # Shipped sources should not carry latent hazards either.
    warnings = result.warnings
    assert not warnings, "\n".join(str(d) for d in warnings)
