"""Tests for the section 4.2 future-work extensions.

* different rising and falling delays (section 4.2.2);
* probability-based mean/variance analysis (section 4.2.4).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Circuit, EXACT, TimingVerifier
from repro.baselines.statistical import DelayDist, StatisticalAnalyzer
from repro.core.risefall import combined_range, invert_roles, rise_fall_delayed
from repro.core.values import CHANGE, FALL, ONE, RISE, STABLE, ZERO
from repro.core.waveform import Waveform

P = 50_000


def clock(high=(20_000, 30_000)):
    return Waveform.from_intervals(P, ZERO, [(*high, ONE)])


class TestRiseFallWaveform:
    def test_directional_edges(self):
        out = rise_fall_delayed(clock(), rise=(1_000, 2_000), fall=(4_000, 6_000))
        assert out.describe() == "0 21.0 R 22.0 1 34.0 F 36.0 0"

    def test_equal_ranges_is_plain_delay(self):
        out = rise_fall_delayed(clock(), rise=(2_000, 3_000), fall=(2_000, 3_000))
        assert out == clock().delayed(2_000, 3_000)

    def test_constant_unchanged(self):
        wf = Waveform.constant(P, ONE)
        assert rise_fall_delayed(wf, (1_000, 2_000), (3_000, 4_000)) == wf

    def test_unknown_level_falls_back_to_combined_range(self):
        """Section 4.2.2: without value knowledge 'merely using the maximum
        of the rising and falling delays is the correct choice'."""
        wf = Waveform.from_intervals(P, STABLE, [(10_000, 20_000, CHANGE)])
        out = rise_fall_delayed(wf, (1_000, 2_000), (4_000, 6_000))
        assert out == wf.delayed(*combined_range((1_000, 2_000), (4_000, 6_000)))

    def test_pulse_width_changes_asymmetrically(self):
        """Slow fall, fast rise: a high pulse gets wider at minimum."""
        out = rise_fall_delayed(clock(), rise=(1_000, 1_000), fall=(5_000, 5_000))
        (start, end), = out.level_runs(ONE)
        # ~14 ns guaranteed high (modulo the 1 ps edge-observability marker).
        assert abs(start - 21_000) <= 1 and end == 35_000

    def test_crossing_edges_collapse_to_change(self):
        """A 3 ns pulse whose rise may land after its fall: the pulse may
        vanish, so the overlap must be CHANGE."""
        narrow = Waveform.from_intervals(P, ZERO, [(20_000, 23_000, ONE)])
        out = rise_fall_delayed(narrow, rise=(1_000, 8_000), fall=(1_000, 2_000))
        # Fall window [24, 25] opens before the rise window [21, 28] closes.
        assert out.value_at(24_500) is CHANGE

    def test_invert_roles(self):
        assert invert_roles((1, 2), (3, 4)) == ((3, 4), (1, 2))

    @given(
        st.integers(min_value=1_000, max_value=8_000),
        st.integers(min_value=0, max_value=3_000),
        st.integers(min_value=1_000, max_value=8_000),
        st.integers(min_value=0, max_value=3_000),
    )
    @settings(max_examples=60)
    def test_covers_period(self, rmin, rextra, fmin, fextra):
        out = rise_fall_delayed(
            clock(), (rmin, rmin + rextra), (fmin, fmin + fextra)
        )
        assert sum(w for _v, w in out.segments) == P


class TestRiseFallEngine:
    def _run(self, prim, rise, fall):
        c = Circuit("nmos", period_ns=50.0, clock_unit_ns=10.0)
        ck = c.net("CK .P2-3")
        ck.wire_delay_ps = (0, 0)
        out = c.net("OUT")
        out.wire_delay_ps = (0, 0)
        c.gate(prim, out, [ck], rise_delay=rise, fall_delay=fall, name="g")
        return TimingVerifier(c, EXACT).verify().waveform("OUT")

    def test_buffer(self):
        out = self._run("BUF", (1.0, 2.0), (4.0, 6.0))
        assert out.describe() == "0 21.0 R 22.0 1 34.0 F 36.0 0"

    def test_inverter_edges_take_output_direction_delays(self):
        """rise_delay/fall_delay are *output-edge* (tPLH/tPHL) ranges: the
        inverter's falling output edge — caused by the input's rise —
        takes the fall delay.  Role alternation through multiple inverting
        levels (the section 4.2.2 adjustment) therefore falls out of the
        output-edge classification automatically."""
        out = self._run("NOT", (1.0, 2.0), (4.0, 6.0))
        assert out.describe() == "1 24.0 F 26.0 0 31.0 R 32.0 1"

    def test_less_pessimistic_than_max_only(self):
        """The whole point: the fast rising edge is not smeared out to the
        slow fall's maximum."""
        directional = self._run("BUF", (1.0, 2.0), (4.0, 6.0))
        c = Circuit("sym", period_ns=50.0, clock_unit_ns=10.0)
        ck = c.net("CK .P2-3")
        ck.wire_delay_ps = (0, 0)
        out_net = c.net("OUT")
        out_net.wire_delay_ps = (0, 0)
        c.gate("BUF", out_net, [ck], delay=(1.0, 6.0), name="g")
        symmetric = TimingVerifier(c, EXACT).verify().waveform("OUT")
        d_rise = directional.rising_windows()[0]
        s_rise = symmetric.materialized().rising_windows()[0]
        assert d_rise[1] - d_rise[0] < s_rise[1] - s_rise[0]


class TestDelayDist:
    def test_from_range_three_sigma(self):
        d = DelayDist.from_range(2_000, 8_000)
        assert d.mean == 5_000
        assert math.isclose(math.sqrt(d.variance), 1_000)

    def test_independent_sum(self):
        a = DelayDist(1_000, 900)
        b = DelayDist(2_000, 1_600)
        s = a.plus(b)
        assert s.mean == 3_000
        assert s.variance == 2_500

    def test_fully_correlated_sum_adds_sigmas(self):
        a = DelayDist(0, 900)  # sigma 30
        b = DelayDist(0, 1_600)  # sigma 40
        s = a.plus(b, correlation=1.0)
        assert math.isclose(math.sqrt(s.variance), 70)

    def test_quantile(self):
        d = DelayDist(10_000, 1_000_000)  # sigma 1000
        assert d.quantile(3.0) == 13_000


class TestStatisticalAnalyzer:
    def _chain(self, n_gates: int) -> Circuit:
        c = Circuit("stat", period_ns=50.0, clock_unit_ns=6.25)
        ck = c.net("CK .P2-3")
        ck.wire_delay_ps = (0, 0)
        c.reg("Q0", clock=ck, data="D .S0-6", delay=(1.5, 4.5))
        prev = "Q0"
        for i in range(n_gates):
            nxt = f"N{i}"
            c.net(nxt).wire_delay_ps = (0, 0)
            c.gate("BUF", nxt, [prev], delay=(2.0, 7.0), name=f"g{i}")
            prev = nxt
        c.setup_hold(prev, ck, setup=2.5, hold=0.0)
        return c

    def test_statistical_slack_beats_min_max(self):
        """Section 1.4.1.1: a real design usually runs faster than the
        min/max system predicts, when delays are uncorrelated."""
        report = StatisticalAnalyzer(self._chain(6), EXACT).analyze()
        (check,) = report.checks
        assert check.stat_slack_ps > check.det_slack_ps

    def test_advantage_grows_with_depth(self):
        shallow = StatisticalAnalyzer(self._chain(2), EXACT).analyze().checks[0]
        deep = StatisticalAnalyzer(self._chain(8), EXACT).analyze().checks[0]
        assert (deep.stat_slack_ps - deep.det_slack_ps) > (
            shallow.stat_slack_ps - shallow.det_slack_ps
        )

    def test_full_correlation_recovers_min_max(self):
        """The thesis's warning: chips from one production run are
        correlated, and then the probability model's advantage vanishes —
        with rho = 1 and ±3-sigma ranges, the 3-sigma arrival IS the max."""
        circuit = self._chain(6)
        independent = StatisticalAnalyzer(circuit, EXACT).analyze().checks[0]
        correlated = StatisticalAnalyzer(
            circuit, EXACT, correlation=1.0
        ).analyze().checks[0]
        assert math.isclose(
            correlated.stat_slack_ps, correlated.det_slack_ps, abs_tol=1.0
        )
        assert correlated.stat_slack_ps < independent.stat_slack_ps

    def test_min_period_estimates(self):
        report = StatisticalAnalyzer(self._chain(6), EXACT).analyze()
        det, stat = report.min_period_ps()
        assert stat < det

    def test_confidence_level_matters(self):
        loose = StatisticalAnalyzer(self._chain(6), EXACT, k_sigma=1.0)
        tight = StatisticalAnalyzer(self._chain(6), EXACT, k_sigma=5.0)
        assert (
            loose.analyze().checks[0].stat_slack_ps
            > tight.analyze().checks[0].stat_slack_ps
        )
