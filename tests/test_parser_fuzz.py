"""Robustness fuzzing for the SCALD parser and assertion grammar.

Malformed input must always fail with the domain error types (with line
context), never with an internal exception — the property a tool meant for
day-by-day designer use needs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.assertions import AssertionSyntaxError, parse_signal_name
from repro.hdl.expander import ExpansionError, expand_source
from repro.hdl.parser import ScaldSyntaxError, parse

# Characters that appear in real sources, plus noise.
_SOUP = st.text(
    alphabet='abcXYZ0129 .,;:()<>&"-=+*/\n\t_', min_size=0, max_size=200
)

_TOKENS = st.lists(
    st.sampled_from([
        "design", "period", "clock_unit", "macro", "endmacro", "prim", "use",
        "param", "wire", "case", "REG", "AND", '"SIG .S0-6"', '"M"', "x1",
        "50", "6.25", "ns", ";", ",", "(", ")", "<", ">", ":", "=", "&",
        "-", "/P", "/M", "SIZE",
    ]),
    min_size=0,
    max_size=40,
)


class TestParserFuzz:
    @given(_SOUP)
    @settings(max_examples=200, deadline=None)
    def test_random_text_never_crashes(self, text):
        try:
            parse(text)
        except ScaldSyntaxError:
            pass  # the only acceptable failure

    @given(_TOKENS)
    @settings(max_examples=200, deadline=None)
    def test_token_soup_never_crashes(self, tokens):
        try:
            parse(" ".join(tokens))
        except ScaldSyntaxError:
            pass

    @given(_SOUP)
    @settings(max_examples=150, deadline=None)
    def test_expansion_never_crashes(self, text):
        source = f"design F; period 50 ns;\n{text}"
        try:
            expand_source(source)
        except (ScaldSyntaxError, ExpansionError, AssertionSyntaxError):
            pass
        except ValueError as exc:
            # Netlist-level structural rejections are also domain errors.
            assert type(exc).__module__.startswith("repro")


class TestAssertionFuzz:
    @given(st.text(min_size=0, max_size=60))
    @settings(max_examples=300, deadline=None)
    def test_signal_names_never_crash(self, name):
        try:
            parse_signal_name(name)
        except AssertionSyntaxError:
            pass

    @given(
        st.sampled_from(["P", "C", "S"]),
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=64),
        st.booleans(),
    )
    @settings(max_examples=150)
    def test_wellformed_assertions_always_parse(self, kind, qa, qb, low):
        a, b = qa / 4, qb / 4  # quarter-unit design times, e.g. 2.75
        suffix = " L" if low else ""
        name = f"SIG .{kind}{a:g}-{b:g}{suffix}"
        base, assertion = parse_signal_name(name)
        assert base == "SIG"
        assert assertion is not None
        assert assertion.low is low
