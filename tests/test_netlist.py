"""Tests for the circuit substrate (nets, components, validation)."""

import pytest

from repro.netlist import (
    Circuit,
    Connection,
    InvalidCircuitError,
    NetlistError,
    check,
    lookup,
    validate,
)


def circuit():
    return Circuit("t", period_ns=50.0, clock_unit_ns=6.25)


class TestPrimitiveRegistry:
    def test_lookup_canonical(self):
        assert lookup("REG").name == "REG"

    def test_lookup_display_names(self):
        """The thesis spells primitives with spaces: 'REG RS', 'SETUP HOLD
        CHK', '2 MUX' (Table 3-2)."""
        assert lookup("REG RS").name == "REG_RS"
        assert lookup("SETUP HOLD CHK").name == "SETUP_HOLD_CHK"
        assert lookup("2 MUX").name == "MUX2"
        assert lookup("8 MUX").name == "MUX8"

    def test_lookup_case_insensitive(self):
        assert lookup("reg_rs").name == "REG_RS"

    def test_unknown_rejected_with_vocabulary(self):
        with pytest.raises(KeyError, match="known primitives"):
            lookup("FLUX_CAPACITOR")

    def test_checkers_marked(self):
        assert lookup("MIN PULSE WIDTH").is_checker
        assert not lookup("REG").is_checker

    def test_gate_families(self):
        assert lookup("NAND").family == "and"
        assert lookup("NOR").family == "or"


class TestNets:
    def test_net_created_on_reference(self):
        c = circuit()
        n = c.net("FOO .S0-6", width=8)
        assert n.base_name == "FOO"
        assert n.assertion is not None
        assert n.width == 8

    def test_net_reference_idempotent(self):
        c = circuit()
        assert c.net("X") is c.net("X")

    def test_width_widens(self):
        c = circuit()
        c.net("X", width=4)
        assert c.net("X", width=16).width == 16
        assert c.net("X", width=2).width == 16

    def test_zero_width_rejected(self):
        with pytest.raises(NetlistError):
            circuit().net("X", width=0)

    def test_connection_string_sugar(self):
        """'-NAME &HZ' means the complement with directives HZ."""
        c = circuit()
        conn = c._as_connection("-WE &HZ")
        assert conn.invert
        assert conn.directives == "HZ"
        assert conn.net.name == "WE"

    def test_bad_directive_letters_rejected(self):
        c = circuit()
        with pytest.raises(NetlistError, match="directive"):
            c._as_connection("X &Q")


class TestAliases:
    def test_alias_unifies(self):
        c = circuit()
        a, b = c.net("A"), c.net("B")
        c.alias(a, b)
        assert c.find(a) is c.find(b)

    def test_alias_keeps_asserted_representative(self):
        c = circuit()
        plain = c.net("PLAIN")
        asserted = c.net("CLK .P2-3")
        c.alias(plain, asserted)
        assert c.find(plain) is asserted

    def test_alias_widens(self):
        c = circuit()
        a = c.net("A", width=4)
        b = c.net("B", width=16)
        c.alias(a, b)
        assert c.find(a).width == 16

    def test_representatives_deduplicate(self):
        c = circuit()
        c.net("A"), c.net("B"), c.net("C")
        c.alias("A", "B")
        assert len(c.representatives()) == 2

    def test_transitive(self):
        c = circuit()
        c.alias("A", "B")
        c.alias("B", "C")
        assert c.find(c.net("A")) is c.find(c.net("C"))


class TestBuilders:
    def test_gate_builder(self):
        c = circuit()
        comp = c.gate("AND", "OUT", ["A", "B", "C"], delay=(1.0, 2.0))
        assert [p for p, _ in comp.input_pins()] == ["I1", "I2", "I3"]
        assert comp.delay_ps() == (1_000, 2_000)

    def test_gate_requires_inputs(self):
        with pytest.raises(NetlistError):
            circuit().gate("AND", "OUT", [])

    def test_reg_builder_with_set_reset(self):
        c = circuit()
        comp = c.reg("Q", clock="CK", data="D", set_="S")
        assert comp.prim.name == "REG_RS"
        assert comp.pins["RESET"].net.name == "GND"

    def test_mux_select_count_enforced(self):
        c = circuit()
        with pytest.raises(NetlistError):
            c.mux("OUT", selects=["S0"], inputs=["A", "B", "C", "D"])

    def test_mux_input_count_enforced(self):
        with pytest.raises(NetlistError):
            circuit().mux("OUT", selects=["S"], inputs=["A", "B", "C"])

    def test_duplicate_component_name_rejected(self):
        c = circuit()
        c.gate("AND", "O1", ["A"], name="g")
        with pytest.raises(NetlistError):
            c.gate("OR", "O2", ["B"], name="g")

    def test_unknown_pin_rejected(self):
        c = circuit()
        with pytest.raises(NetlistError):
            c.add("r", "REG", {"CLOCK": "CK", "DATA": "D", "OUT": "Q", "BANANA": "X"})

    def test_unknown_param_rejected(self):
        c = circuit()
        with pytest.raises(NetlistError, match="parameter"):
            c.add("r", "REG", {"CLOCK": "CK", "DATA": "D", "OUT": "Q"}, frobnicate=1)

    def test_missing_required_param(self):
        c = circuit()
        with pytest.raises(NetlistError, match="requires"):
            c.add("chk", "SETUP_HOLD_CHK", {"I": "D", "CK": "CK"}, setup=1.0)

    def test_delay_ns_converted_to_ps(self):
        c = circuit()
        comp = c.reg("Q", clock="CK", data="D", delay=(1.5, 4.5))
        assert comp.delay_ps() == (1_500, 4_500)

    def test_negative_delay_rejected(self):
        with pytest.raises(NetlistError):
            circuit().gate("AND", "O", ["A"], delay=(-1.0, 2.0))

    def test_min_pulse_width_needs_a_bound(self):
        with pytest.raises(NetlistError):
            circuit().min_pulse_width("X")

    def test_case_values_validated(self):
        c = circuit()
        with pytest.raises(NetlistError):
            c.add_case_by_name({"X": 2})

    def test_stats_shape(self):
        c = circuit()
        c.reg("Q", clock="CK", data="D", width=32)
        c.gate("AND", "G", ["A", "B"], width=4)
        stats = c.stats()
        assert stats["primitive_count"] == 2
        assert stats["primitive_types"] == 2
        assert stats["mean_width"] == 18.0
        assert stats["bit_blasted_count"] == 36


class TestValidation:
    def test_clean_circuit_passes(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6")
        assert check(c) == []

    def test_missing_input_is_error(self):
        c = circuit()
        c.add("r", "REG", {"CLOCK": "CK", "OUT": "Q"})
        with pytest.raises(InvalidCircuitError, match="DATA"):
            check(c)

    def test_missing_output_is_error(self):
        c = circuit()
        c.add("r", "REG", {"CLOCK": "CK", "DATA": "D"})
        with pytest.raises(InvalidCircuitError, match="OUT"):
            check(c)

    def test_multiple_drivers_is_error(self):
        c = circuit()
        c.gate("AND", "X", ["A"], name="g1")
        c.gate("OR", "X", ["B"], name="g2")
        with pytest.raises(InvalidCircuitError, match="drivers"):
            check(c)

    def test_driven_clock_assertion_warns(self):
        c = circuit()
        c.gate("AND", "CK .P2-3", ["A"], name="g1")
        c.reg("Q", clock="CK .P2-3", data="D .S0-6")
        warnings = check(c)
        assert any("clock-asserted" in str(w) for w in warnings)

    def test_inverted_output_is_error(self):
        c = circuit()
        c.add("g", "BUF", {"I": "A", "OUT": Connection(net=c.net("B"), invert=True)})
        issues = validate(c)
        assert any(i.severity == "error" and "inverted" in i.message for i in issues)

    def test_directive_on_output_is_error(self):
        c = circuit()
        c.add(
            "g", "BUF",
            {"I": "A", "OUT": Connection(net=c.net("B"), directives="H")},
        )
        issues = validate(c)
        assert any("directives belong on inputs" in i.message for i in issues)


class TestValidationEdgeCases:
    """Corner cases of the structural checks (served via the lint registry)."""

    def test_multi_driver_through_transitive_synonym_chain(self):
        """Two drivers that only collide after union-find resolution."""
        c = circuit()
        c.gate("AND", "X", ["A .S0-6"], name="g1")
        c.gate("OR", "Y", ["B .S0-6"], name="g2")
        c.alias("X", "MID")
        c.alias("MID", "Y")
        issues = validate(c)
        conflict = [i for i in issues if "drivers" in i.message]
        assert len(conflict) == 1
        assert "g1.OUT" in conflict[0].message
        assert "g2.OUT" in conflict[0].message

    def test_variadic_gate_with_zero_inputs(self):
        c = circuit()
        c.add("g", "NOR", {"OUT": "X"})
        issues = validate(c)
        assert any(
            i.severity == "error" and i.message == "gate has no inputs connected"
            for i in issues
        )

    def test_inverted_and_directive_outputs_both_reported(self):
        c = circuit()
        c.add("g1", "BUF", {"I": "A .S0-6",
                            "OUT": Connection(net=c.net("B"), invert=True)})
        c.add("g2", "BUF", {"I": "A .S0-6",
                            "OUT": Connection(net=c.net("D"), directives="H")})
        issues = validate(c)
        errors = {i.message for i in issues if i.severity == "error"}
        assert "output pin 'OUT' may not be inverted at the net" in errors
        assert (
            "evaluation directives belong on inputs, not output 'OUT'" in errors
        )

    def test_checker_missing_clock_is_error(self):
        c = circuit()
        c.add("chk", "SETUP_HOLD_CHK", {"I": "D .S0-6"}, setup=2.5, hold=1.5)
        with pytest.raises(InvalidCircuitError, match="CK"):
            check(c)

    def test_unreferenced_case_signal_warns(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6")
        c.add_case_by_name({"GHOST": 1})
        warnings = check(c)
        assert any("not referenced" in w.message for w in warnings)

    def test_clean_circuit_still_passes_through_registry(self):
        """validate() is now served by repro.lint; a clean circuit stays clean."""
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6")
        c.setup_hold("D .S0-6", "CK .P2-3", setup=2.5, hold=1.5)
        assert validate(c) == []
