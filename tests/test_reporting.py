"""Tests for the output listings and storage accounting."""

from repro import Circuit, EXACT, TimingVerifier
from repro.core.engine import Engine
from repro.reporting import phase_table, timing_summary, violation_listing, xref_listing
from repro.reporting.stats import deep_size, measure_storage


def small_circuit():
    c = Circuit("listing-test", period_ns=50.0, clock_unit_ns=6.25)
    c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5), width=8)
    c.setup_hold("D .S0-6", "CK .P2-3", setup=2.5, hold=1.5)
    c.buf("Y", "FLOATING INPUT")
    return c


class TestListings:
    def test_summary_contains_every_signal(self):
        result = TimingVerifier(small_circuit(), EXACT).verify()
        text = timing_summary(result)
        for name in ("Q", "D .S0-6", "CK .P2-3"):
            assert name in text

    def test_summary_shows_case_assignments(self):
        c = small_circuit()
        c.add_case_by_name({"FLOATING INPUT": 1})
        result = TimingVerifier(c, EXACT).verify()
        assert "FLOATING INPUT" in timing_summary(result, case=0)

    def test_violation_listing_clean(self):
        result = TimingVerifier(small_circuit(), EXACT).verify()
        assert "No setup" in violation_listing(result)

    def test_violation_listing_details(self):
        c = Circuit("bad", period_ns=50.0, clock_unit_ns=6.25)
        c.reg("Q", clock="CK .P2-3", data="D .S3-6", delay=(1.5, 4.5))
        c.setup_hold("D .S3-6", "CK .P2-3", setup=2.5, hold=1.5)
        result = TimingVerifier(c, EXACT).verify()
        text = violation_listing(result)
        assert "SETUP" in text
        assert "DATA INPUT" in text
        assert "CLOCK INPUT" in text

    def test_xref_lists_floating_inputs(self):
        """Section 2.5: undefined signals with no assertions go on a
        special cross-reference listing."""
        result = TimingVerifier(small_circuit(), EXACT).verify()
        assert "FLOATING INPUT" in xref_listing(result)

    def test_xref_clean_when_all_asserted(self):
        c = Circuit("ok", period_ns=50.0, clock_unit_ns=6.25)
        c.reg("Q", clock="CK .P2-3", data="D .S0-6", delay=(1.5, 4.5))
        result = TimingVerifier(c, EXACT).verify()
        assert "All undefined signals" in xref_listing(result)

    def test_phase_table_rows(self):
        result = TimingVerifier(small_circuit(), EXACT).verify()
        text = phase_table(result)
        assert "Reading input files" in text
        assert "Verifying circuit" in text
        assert "events processed" in text


class TestStorageAccounting:
    def test_deep_size_counts_once(self):
        shared = [1, 2, 3]
        seen: set[int] = set()
        first = deep_size({"a": shared}, seen)
        second = deep_size({"b": shared}, seen)
        assert first > second  # the list was already counted

    def test_categories_cover_total(self):
        c = small_circuit()
        engine = Engine(c, EXACT)
        engine.initialize()
        engine.run()
        report = measure_storage(engine)
        assert report.total_bytes == sum(cat.bytes for cat in report.categories)
        assert abs(sum(cat.percent for cat in report.categories) - 100.0) < 1e-6

    def test_per_primitive_and_per_signal_metrics(self):
        c = small_circuit()
        engine = Engine(c, EXACT)
        engine.initialize()
        engine.run()
        report = measure_storage(engine)
        assert report.primitives == 3
        assert report.signals >= 5
        assert report.bytes_per_primitive > 0
        # Signals carry a handful of value records, as in the thesis's 2.97.
        assert 1.0 <= report.value_records_per_signal <= 8.0

    def test_table_renders(self):
        c = small_circuit()
        engine = Engine(c, EXACT)
        engine.initialize()
        engine.run()
        text = measure_storage(engine).table()
        assert "circuit description" in text
        assert "signal values" in text
        assert "TOTAL" in text

    def test_storage_grows_with_design(self):
        from repro.workloads.synth import SynthConfig, generate

        small_c, _ = generate(SynthConfig(chips=50)).circuit()
        big_c, _ = generate(SynthConfig(chips=200)).circuit()
        reports = []
        for circuit in (small_c, big_c):
            engine = Engine(circuit)
            engine.initialize()
            engine.run()
            reports.append(measure_storage(engine))
        assert reports[1].total_bytes > reports[0].total_bytes
