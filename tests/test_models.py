"""Tests for the primitive behaviour models (section 2.4, Figures 2-1/2-2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import (
    eval_gate,
    eval_latch,
    eval_mux,
    eval_register,
    mux_value,
)
from repro.core.values import (
    CHANGE,
    FALL,
    ONE,
    RISE,
    STABLE,
    UNKNOWN,
    ZERO,
    Value,
    is_stable,
)
from repro.core.waveform import Waveform

P = 50_000


def wf_const(v):
    return Waveform.constant(P, v)


def pulse(start, end, inside=ONE, base=ZERO, skew=(0, 0)):
    return Waveform.from_intervals(P, base, [(start, end, inside)], skew=skew)


def stable_between(start, end):
    return Waveform.from_intervals(P, CHANGE, [(start, end, STABLE)])


CLK = pulse(20_000, 30_000)  # high 20-30 ns


class TestGates:
    def test_or_gate_with_delay(self):
        out = eval_gate("OR", [pulse(10_000, 20_000), wf_const(ZERO)], (1_000, 2_900), False)
        assert out.value_at(12_000) is ONE
        assert out.skew == (0, 1_900)

    def test_nor_inverts(self):
        out = eval_gate("NOR", [pulse(10_000, 20_000), wf_const(ZERO)], (0, 0), True)
        assert out.value_at(15_000) is ZERO
        assert out.value_at(25_000) is ONE

    def test_not_gate(self):
        out = eval_gate("NOT", [pulse(10_000, 20_000)], (0, 0), True)
        assert out.value_at(15_000) is ZERO

    def test_chg_gate(self):
        out = eval_gate("CHG", [stable_between(10_000, 40_000), wf_const(ONE)], (1_500, 3_000), False)
        # Changing outside [10, 40], shifted by min delay 1.5 with 1.5 skew.
        assert out.value_at(20_000) is STABLE
        assert out.value_at(45_000) is CHANGE
        assert out.skew == (0, 1_500)

    def test_buf_identity(self):
        wf = pulse(5_000, 15_000)
        assert eval_gate("BUF", [wf], (0, 0), False) == wf


class TestMuxValue:
    def test_constant_select_picks_input(self):
        assert mux_value([ZERO], [ONE, FALL]) is ONE
        assert mux_value([ONE], [ONE, FALL]) is FALL

    def test_two_bit_select(self):
        data = [ZERO, ONE, STABLE, CHANGE]
        assert mux_value([ONE, ZERO], data) is ONE  # S0=1, S1=0 -> index 1
        assert mux_value([ZERO, ONE], data) is STABLE  # index 2

    def test_stable_select_is_either_of_inputs(self):
        assert mux_value([STABLE], [ZERO, ONE]) is STABLE
        assert mux_value([STABLE], [STABLE, RISE]) is RISE
        assert mux_value([STABLE], [ZERO, ZERO]) is ZERO

    def test_changing_select_gives_change(self):
        assert mux_value([RISE], [ZERO, ONE]) is CHANGE
        assert mux_value([CHANGE], [STABLE, STABLE]) is CHANGE

    def test_changing_select_same_constant_inputs_ok(self):
        """Switching between two inputs tied to the same constant cannot
        disturb the output."""
        assert mux_value([RISE], [ONE, ONE]) is ONE

    def test_unknown_select_dominates(self):
        assert mux_value([UNKNOWN], [ZERO, ONE]) is UNKNOWN

    def test_selected_unknown_passes_through(self):
        assert mux_value([ZERO], [UNKNOWN, ONE]) is UNKNOWN


class TestMuxWaveform:
    def test_select_routing_over_time(self):
        sel = pulse(25_000, 45_000)  # 0 then 1 then 0
        a = wf_const(ZERO)
        b = wf_const(ONE)
        out = eval_mux([sel], [a, b], (0, 0), (0, 0))
        assert out.value_at(10_000) is ZERO
        assert out.value_at(30_000) is ONE

    def test_select_extra_delay(self):
        """Figure 3-6: the select input has an additional 0.3/1.2 ns delay
        on top of the 1.2/3.3 ns data-path delay."""
        sel = pulse(25_000, 45_000)
        out = eval_mux(
            [sel], [wf_const(ZERO), wf_const(ONE)], (1_200, 3_300), (300, 1_200)
        )
        # The output's rise reflects both delays: min shift 1.2 + 0.3.
        assert out.value_at(26_000) is ZERO
        assert out.value_at(32_000) is ONE

    def test_case_analysis_shape(self):
        """The Figure 2-6 scenario: with a STABLE select both data inputs
        matter; with a constant select only the addressed one does."""
        changing_a = stable_between(30_000, 50_000)
        stable_b = wf_const(STABLE)
        out_stable_sel = eval_mux([wf_const(STABLE)], [changing_a, stable_b], (0, 0), (0, 0))
        assert out_stable_sel.value_at(10_000) is CHANGE
        out_sel_b = eval_mux([wf_const(ONE)], [changing_a, stable_b], (0, 0), (0, 0))
        assert out_sel_b.value_at(10_000) is STABLE


class TestRegister:
    def test_output_changes_after_clock_edge(self):
        """Figure 2-1: output CHANGEs during [edge+dmin, edge+dmax]."""
        out = eval_register(CLK, wf_const(STABLE), (1_000, 3_800))
        assert out.value_at(20_500) is STABLE  # before min delay
        assert out.value_at(22_000) is CHANGE
        assert out.value_at(23_700) is CHANGE
        assert out.value_at(24_000) is STABLE
        assert out.value_at(10_000) is STABLE  # periodic: stable before edge

    def test_constant_data_captured(self):
        out = eval_register(CLK, wf_const(ONE), (1_000, 2_000))
        assert out.value_at(25_000) is ONE
        assert out.value_at(5_000) is ONE  # held around the cycle

    def test_changing_data_still_captures_stable(self):
        """Data changing at the edge is a checker matter; the register
        output is STABLE either way (section 2.4.3)."""
        data = Waveform.from_intervals(P, CHANGE, [(25_000, 45_000, STABLE)])
        out = eval_register(CLK, data, (1_000, 2_000))
        assert out.value_at(25_000) is STABLE

    def test_unknown_clock_gives_unknown(self):
        out = eval_register(wf_const(UNKNOWN), wf_const(ONE), (0, 0))
        assert out.is_fully_unknown

    def test_unknown_data_gives_stable(self):
        """UNKNOWN data must not poison the register output, or the fixed
        point could never recover from the all-U initial state."""
        out = eval_register(CLK, wf_const(UNKNOWN), (1_000, 2_000))
        assert out.value_at(25_000) is STABLE

    def test_no_clock_edge_holds(self):
        out = eval_register(wf_const(ZERO), wf_const(ONE), (1_000, 2_000))
        assert out == wf_const(STABLE)

    def test_clock_skew_widens_change_window(self):
        clk = pulse(20_000, 30_000, skew=(-1_000, 1_000))
        out = eval_register(clk, wf_const(STABLE), (1_000, 3_800))
        assert out.value_at(20_200) is CHANGE  # 19 + 1.0 = 20.0 earliest
        assert out.value_at(24_500) is CHANGE  # 21 + 3.8 = 24.8 latest
        assert out.value_at(25_000) is STABLE

    def test_two_clock_edges_two_windows(self):
        clk = Waveform.from_intervals(
            P, ZERO, [(10_000, 15_000, ONE), (35_000, 40_000, ONE)]
        )
        out = eval_register(clk, wf_const(STABLE), (1_000, 2_000))
        assert out.value_at(11_500) is CHANGE
        assert out.value_at(36_500) is CHANGE
        assert out.value_at(25_000) is STABLE

    def test_set_forces_one(self):
        out = eval_register(CLK, wf_const(STABLE), (0, 0), set_=wf_const(ONE), reset=wf_const(ZERO))
        assert out == wf_const(ONE)

    def test_reset_forces_zero(self):
        out = eval_register(CLK, wf_const(STABLE), (0, 0), set_=wf_const(ZERO), reset=wf_const(ONE))
        assert out == wf_const(ZERO)

    def test_both_asserted_undefined(self):
        out = eval_register(CLK, wf_const(STABLE), (0, 0), set_=wf_const(ONE), reset=wf_const(ONE))
        assert out.is_fully_unknown

    def test_inactive_set_reset_is_clocked_behaviour(self):
        plain = eval_register(CLK, wf_const(STABLE), (1_000, 2_000))
        with_sr = eval_register(
            CLK, wf_const(STABLE), (1_000, 2_000),
            set_=wf_const(ZERO), reset=wf_const(ZERO),
        )
        assert plain == with_sr

    def test_changing_set_gives_change(self):
        set_pulse = pulse(40_000, 45_000)
        out = eval_register(CLK, wf_const(STABLE), (0, 0), set_=set_pulse, reset=wf_const(ZERO))
        assert out.value_at(42_000) is ONE
        # Transitions of the SET input show as changes on the output.
        assert out.value_at(40_000) in (RISE, CHANGE, ONE)

    def test_stable_set_may_override(self):
        out = eval_register(CLK, wf_const(ONE), (0, 0), set_=wf_const(STABLE), reset=wf_const(ZERO))
        # SET is stable-unknown: output is the captured 1 or the forced 1.
        assert out.value_at(40_000) is ONE
        out2 = eval_register(CLK, wf_const(ZERO), (0, 0), set_=wf_const(STABLE), reset=wf_const(ZERO))
        assert out2.value_at(40_000) is STABLE  # could be 0 (captured) or 1


class TestLatch:
    ENABLE = pulse(20_000, 30_000)  # open 20-30 ns

    def test_transparent_when_open(self):
        data = Waveform.from_intervals(P, ZERO, [(22_000, 26_000, ONE)])
        out = eval_latch(self.ENABLE, data, (0, 0))
        assert out.value_at(24_000) is ONE
        assert out.value_at(28_000) is ZERO

    def test_holds_when_closed(self):
        data = Waveform.from_intervals(P, ONE, [(35_000, 40_000, ZERO)])
        out = eval_latch(self.ENABLE, data, (0, 0))
        # Data was 1 at the 30 ns close; the 35-40 ns excursion is masked.
        assert out.value_at(37_000) is ONE
        assert out.value_at(45_000) is ONE
        assert out.value_at(10_000) is ONE  # held across the period wrap

    def test_opening_shows_change(self):
        """Opening the latch may step the output to the new data value."""
        out = eval_latch(self.ENABLE, wf_const(STABLE), (0, 0))
        assert out.value_at(20_000) is CHANGE

    def test_opening_on_equal_constant_is_quiet(self):
        out = eval_latch(self.ENABLE, wf_const(ONE), (0, 0))
        assert out == wf_const(ONE)

    def test_closing_on_stable_data_is_quiet(self):
        data = Waveform.from_intervals(P, STABLE, [(0, 40_000, STABLE)])
        out = eval_latch(self.ENABLE, wf_const(STABLE), (0, 0))
        # At the 30 ns close the data is stable: no output transition.
        assert out.value_at(30_000) is STABLE

    def test_closing_on_changing_data_is_change(self):
        data = Waveform.from_intervals(P, STABLE, [(28_000, 34_000, CHANGE)])
        out = eval_latch(self.ENABLE, data, (0, 0))
        assert out.value_at(29_000) is CHANGE

    def test_delay_applies(self):
        data = Waveform.from_intervals(P, ZERO, [(22_000, 26_000, ONE)])
        out = eval_latch(self.ENABLE, data, (1_000, 1_000))
        assert out.value_at(24_500) is ONE
        assert out.value_at(22_500) is ZERO

    def test_unknown_enable(self):
        out = eval_latch(wf_const(UNKNOWN), wf_const(ONE), (0, 0))
        assert out.is_fully_unknown

    def test_stable_enable_with_stable_data(self):
        out = eval_latch(wf_const(STABLE), wf_const(STABLE), (0, 0))
        assert out == wf_const(STABLE)

    def test_stable_enable_with_changing_data(self):
        out = eval_latch(wf_const(STABLE), wf_const(CHANGE), (0, 0))
        assert out.value_at(0) is CHANGE

    def test_always_open(self):
        data = Waveform.from_intervals(P, ZERO, [(22_000, 26_000, ONE)])
        out = eval_latch(wf_const(ONE), data, (0, 0))
        assert out == data

    def test_always_closed(self):
        out = eval_latch(wf_const(ZERO), wf_const(CHANGE), (0, 0))
        assert out == wf_const(STABLE)

    def test_set_reset_override(self):
        out = eval_latch(self.ENABLE, wf_const(STABLE), (0, 0), set_=wf_const(ONE), reset=wf_const(ZERO))
        assert out == wf_const(ONE)


class TestModelSoundness:
    """Storage-element outputs must be periodic full-cycle waveforms whose
    only changing regions trace back to input activity."""

    @given(
        st.integers(min_value=0, max_value=P - 2_000),
        st.integers(min_value=1_000, max_value=10_000),
        st.integers(min_value=0, max_value=3_000),
    )
    @settings(max_examples=60)
    def test_register_change_window_tracks_delay(self, edge, dwidth, dmax_extra):
        edge = min(edge, P - dwidth - 1)
        clk = pulse(edge, edge + dwidth)
        dmin = 500
        dmax = dmin + dmax_extra
        out = eval_register(clk, wf_const(STABLE), (dmin, dmax))
        assert sum(w for _v, w in out.segments) == P
        # There is exactly one change region and it begins dmin after the edge.
        runs = [
            (s, e) for s, e, v in out.iter_segments() if v is CHANGE
        ]
        if dmax == dmin == 0:
            return
        assert any(s == (edge + dmin) % P for s, _e in runs)

    @given(st.integers(min_value=0, max_value=7))
    def test_register_idempotent_on_reeval(self, seed):
        data = stable_between(seed * 5_000, seed * 5_000 + 20_000)
        out1 = eval_register(CLK, data, (1_000, 2_000))
        out2 = eval_register(CLK, data, (1_000, 2_000))
        assert out1 == out2
