"""Property-style and coverage tests for the engine and remaining models.

These exercise the invariants the thesis's algorithm depends on:
determinism of the fixed point, independence from evaluation order,
periodicity of every computed waveform, and the soundness of the symbolic
result against the value-level (logic simulation) semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Circuit, EXACT, TimingVerifier, VerifyConfig
from repro.core.engine import Engine
from repro.core.values import CHANGE, ONE, STABLE, UNKNOWN, ZERO
from repro.workloads.synth import SynthConfig, generate


def circuit():
    return Circuit("p", period_ns=50.0, clock_unit_ns=6.25)


class TestWideMuxesAndStorage:
    def test_mux4_routing(self):
        c = circuit()
        c.mux("OUT", selects=["S0", "S1"], inputs=["VCC", "GND", "GND", "GND"],
              name="m")
        c.net("S0"), c.net("S1")  # undriven, unasserted -> assumed stable
        r = TimingVerifier(c, EXACT).verify()
        # Selects assumed stable-unknown: output is one of the inputs.
        assert str(r.waveform("OUT").value_at(0)) == "S"

    def test_mux4_constant_selects(self):
        c = circuit()
        c.mux("OUT", selects=["GND", "VCC"], inputs=["A0 .S0-8", "A1 .S0-8",
              "VCC", "A3 .S0-8"], name="m")
        r = TimingVerifier(c, EXACT).verify()
        # S0=0, S1=1 -> index 2 -> the constant one.
        assert r.waveform("OUT").value_at(0) is ONE

    def test_mux8_through_engine(self):
        c = circuit()
        c.mux("OUT", selects=["GND", "GND", "GND"],
              inputs=["D .S0-6", "VCC", "VCC", "VCC", "VCC", "VCC", "VCC", "VCC"],
              name="m", delay=(1.0, 2.0))
        r = TimingVerifier(c, EXACT).verify()
        wf = r.waveform("OUT")
        assert wf.value_at(10_000) is STABLE
        assert wf.value_at(45_000) is CHANGE  # D's changing tail, delayed

    def test_reg_rs_reset_through_engine(self):
        c = circuit()
        c.reg("Q", clock="CK .P2-3", data="D .S0-6",
              set_="GND", reset="MASTER RESET .S0-8", delay=(1.0, 2.0))
        r = TimingVerifier(c, EXACT).verify()
        # Reset is stable-unknown: the output may be held at 0 or clocked.
        assert str(r.waveform("Q").value_at(30_000)) in "S0"

    def test_latch_rs_through_engine(self):
        c = circuit()
        c.latch("Q", enable="EN .P2-5", data="D .S0-8",
                set_="VCC", reset="GND", delay=(1.0, 2.0))
        r = TimingVerifier(c, EXACT).verify()
        assert r.waveform("Q").value_at(30_000) is ONE  # set wins

    def test_latch_pipeline(self):
        """Two-phase latching: data flows through alternating latches."""
        c = circuit()
        phase_a = c.net("PHI A .P0-4")
        phase_b = c.net("PHI B .P4-8")
        phase_a.wire_delay_ps = (0, 0)
        phase_b.wire_delay_ps = (0, 0)
        c.latch("L1", enable=phase_a, data="D .S6-9", delay=(1.0, 2.0))
        c.latch("L2", enable=phase_b, data="L1", delay=(1.0, 2.0))
        r = TimingVerifier(c, EXACT).verify()
        assert not r.waveform("L2").is_fully_unknown


class TestAliasesInEngine:
    def test_alias_shares_waveform(self):
        c = circuit()
        c.buf("OUT", "INTERNAL", delay=(1.0, 2.0))
        c.alias("INTERNAL", "D .S0-6")
        r = TimingVerifier(c, EXACT).verify()
        out = r.waveform("OUT")
        assert out.value_at(10_000) is STABLE
        assert out.value_at(45_000) is CHANGE

    def test_alias_of_clock_drives_register(self):
        c = circuit()
        c.reg("Q", clock="LOCAL CK", data="D .S0-6", delay=(1.5, 4.5))
        c.alias("LOCAL CK", "MAIN CLK .P2-3")
        r = TimingVerifier(c, EXACT).verify()
        assert r.waveform("Q").value_at(15_000) is CHANGE


class TestDeterminism:
    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_fixed_point_deterministic(self, seed):
        d = generate(SynthConfig(chips=60, seed=seed))
        c1, _ = d.circuit()
        c2, _ = d.circuit()
        r1 = TimingVerifier(c1).verify()
        r2 = TimingVerifier(c2).verify()
        assert r1.cases[0].waveforms == r2.cases[0].waveforms
        assert r1.stats.events == r2.stats.events

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_every_waveform_covers_the_period(self, seed):
        c, _ = generate(SynthConfig(chips=50, seed=seed)).circuit()
        r = TimingVerifier(c).verify()
        for name, wf in r.cases[0].waveforms.items():
            assert sum(w for _v, w in wf.segments) == c.period_ps, name

    def test_case_order_independence(self):
        """Whatever order the cases run in, each case's converged state is
        the same — incremental re-evaluation has no history dependence."""
        def build(order):
            c = circuit()
            c.mux("OUT", selects=["SEL .S0-8"], inputs=["A .S0-6", "B .S2-8"],
                  delay=(1.0, 2.0), name="m")
            for bit in order:
                c.add_case_by_name({"SEL .S0-8": bit})
            return TimingVerifier(c, EXACT).verify()

        fwd = build([0, 1])
        rev = build([1, 0])
        assert fwd.cases[0].waveforms == rev.cases[1].waveforms
        assert fwd.cases[1].waveforms == rev.cases[0].waveforms


class TestSymbolicSoundness:
    """The symbolic result must cover every concrete logic-simulation
    behaviour: wherever the verifier says a signal is a known constant or
    stable, the simulator (driven with any vector) must agree it does not
    change there."""

    @given(
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                 min_size=2, max_size=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_verifier_covers_simulation(self, vectors):
        from repro.baselines import LogicSimulator

        c = circuit()
        ck = c.net("CK .P2-3")
        ck.wire_delay_ps = (0, 0)
        for n in ("N1", "N2", "Q"):
            c.net(n).wire_delay_ps = (0, 0)
        c.gate("AND", "N1", ["A .S0-6", "B .S0-6"], delay=(1.0, 3.0), name="g1")
        c.gate("XOR", "N2", ["N1", "A .S0-6"], delay=(1.0, 2.0), name="g2")
        c.reg("Q", clock=ck, data="N2", delay=(1.5, 4.5))

        result = TimingVerifier(c, EXACT).verify()
        sim = LogicSimulator(c)
        sim.drive("A .S0-6", [a for a, _b in vectors])
        sim.drive("B .S0-6", [b for _a, b in vectors])
        sim_result = sim.run(cycles=len(vectors), record_trace=True)

        # Wherever the verifier guarantees stability, no simulated vector
        # may ever change the signal (skip the X-initialisation cycle).
        period = c.period_ps
        for name in ("N1", "N2", "Q"):
            wf = result.waveform(name).materialized()
            for net, t, _value in sim_result.trace:
                if net != name or t < period:
                    continue
                # A simulator change at t may sit at either boundary of
                # the verifier's half-open changing window: covered when
                # the instant before t or t itself is marked changing.
                changing = {"C", "R", "F", "U"}
                before = str(wf.value_at((t - 1) % period))
                at = str(wf.value_at(t % period))
                assert before in changing or at in changing, (
                    f"{name} changed at {t} ps where the verifier claims "
                    f"{before}/{at}"
                )


class TestXrefAndUnknowns:
    def test_unknown_propagates_until_resolved(self):
        c = circuit()
        c.gate("AND", "N1", ["N0", "A .S0-6"], name="g1")
        c.gate("BUF", "N0", ["B .S0-6"], name="g0")
        e = Engine(c, EXACT)
        e.initialize()
        assert e.waveform_of("N1").is_fully_unknown
        e.run()
        assert not e.waveform_of("N1").is_fully_unknown

    def test_checker_on_unknown_is_silent(self):
        c = circuit()
        c.gate("NOT", "LOOPY", ["LOOPY2"], name="i1")
        # LOOPY2 never driven and unasserted -> stable; LOOPY resolves.
        c.setup_hold("LOOPY", "CK .P2-3", setup=1.0, hold=1.0)
        r = TimingVerifier(c, EXACT).verify()
        assert r.ok

    def test_xref_records_each_assumed_signal_once(self):
        c = circuit()
        c.gate("AND", "OUT", ["MYSTERY", "MYSTERY", "OTHER"], name="g")
        r = TimingVerifier(c, EXACT).verify()
        assert r.xref_assumed_stable.count("MYSTERY") == 1
